"""BatchEngine tests over a stub session: the batching layer must be
response-invariant — every request gets the exact response it would
get alone, no matter how requests coalesce — plus admission control
(load-shed, quotas) and failure isolation."""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.serve.server import BatchEngine, ServeConfig


class StubSession:
    """Deterministic per-request results; records batch shapes."""

    def __init__(self, fail_texts: frozenset[str] = frozenset()) -> None:
        self.fail_texts = fail_texts
        self.batches: list[list[tuple[str, str]]] = []
        self._lock = threading.Lock()

    def warm(self) -> None:
        pass

    def close(self) -> None:
        pass

    def run_batch(self, requests):
        with self._lock:
            self.batches.append(list(requests))
        results = []
        for op, text in requests:
            if text in self.fail_texts:
                results.append({"_error": f"boom: {text}"})
            else:
                results.append({"op": op, "echo": text,
                                "tokens": len(text.split())})
        return results


def make_engine(session=None, **overrides) -> BatchEngine:
    config = ServeConfig(workers=0, max_batch=8, max_delay_ms=2.0,
                         queue_limit=64)
    for key, value in overrides.items():
        setattr(config, key, value)
    engine = BatchEngine(session or StubSession(), config,
                         metrics=MetricsRegistry())
    engine.start()
    return engine


ops_strategy = st.sampled_from(["extract", "annotate", "classify"])
texts_strategy = st.text(
    alphabet=st.sampled_from("abc xyz"), min_size=1, max_size=20
).filter(str.strip)
requests_strategy = st.lists(st.tuples(ops_strategy, texts_strategy),
                             min_size=1, max_size=40)
threads_strategy = st.integers(min_value=1, max_value=6)


class TestResponseInvariance:
    @given(requests=requests_strategy, n_threads=threads_strategy)
    @settings(max_examples=40, deadline=None)
    def test_batched_responses_match_single_request_responses(
            self, requests, n_threads):
        """Satellite property: at any concurrency, every response is
        byte-identical to what a sequential single-request engine
        produces for the same (id, op, text)."""
        session = StubSession()
        engine = make_engine(session)
        try:
            slices = [requests[index::n_threads]
                      for index in range(n_threads)]
            received: dict[str, dict] = {}
            lock = threading.Lock()

            def client(thread_index: int, jobs) -> None:
                for seq, (op, text) in enumerate(jobs):
                    request_id = f"t{thread_index}.{seq}"
                    pending = engine.submit(op, text,
                                            request_id=request_id)
                    response = pending.wait(timeout=30)
                    with lock:
                        received[request_id] = response

            threads = [threading.Thread(target=client, args=(i, jobs))
                       for i, jobs in enumerate(slices) if jobs]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        finally:
            engine.stop()
        # Expected: exactly the single-request response, per request.
        for thread_index, jobs in enumerate(slices):
            for seq, (op, text) in enumerate(jobs):
                request_id = f"t{thread_index}.{seq}"
                expected = {"id": request_id, "ok": True,
                            "result": {"op": op, "echo": text,
                                       "tokens": len(text.split())}}
                assert received[request_id] == expected

    def test_batches_are_actually_formed(self):
        session = StubSession()
        engine = make_engine(session, max_delay_ms=50.0)
        try:
            pendings = [engine.submit("classify", f"text {i}",
                                      request_id=str(i))
                        for i in range(8)]
            for pending in pendings:
                assert pending.wait(timeout=30)["ok"]
        finally:
            engine.stop()
        # 8 requests with max_batch=8 and a long deadline: the queue
        # closes on size into few batches, at least one multi-request.
        assert any(len(batch) > 1 for batch in session.batches)
        assert engine.metrics.value_of("serve.multi_request_batches")


class TestAdmissionControl:
    def test_shed_beyond_queue_limit(self):
        # Block the dispatcher with an in-flight batch, then overfill.
        gate = threading.Event()

        class SlowSession(StubSession):
            def run_batch(self, requests):
                gate.wait(timeout=30)
                return super().run_batch(requests)

        engine = make_engine(SlowSession(), queue_limit=4,
                             max_delay_ms=0.0)
        try:
            pendings = [engine.submit("classify", "x",
                                      request_id=str(i))
                        for i in range(30)]
            shed = [p for p in pendings
                    if p.response and not p.response["ok"]]
            assert shed, "overfilled queue must shed"
            for pending in shed:
                error = pending.response["error"]
                assert error["code"] == "shed"
                assert error["retryable"] is True
            assert engine.metrics.value_of("serve.shed") == len(shed)
            gate.set()
            for pending in pendings:
                if pending not in shed:
                    assert pending.wait(timeout=30)["ok"]
        finally:
            gate.set()
            engine.stop()

    def test_quota_rejection(self):
        engine = make_engine(default_quota=(0.001, 4.0))
        try:
            first = engine.submit("classify", "a b c d",
                                  request_id="1")
            assert first.wait(timeout=30)["ok"]
            second = engine.submit("classify", "a b c d",
                                   request_id="2")
            assert second.response is not None
            assert second.response["error"]["code"] == "quota"
            assert engine.metrics.value_of(
                "serve.quota_rejected") == 1
        finally:
            engine.stop()

    def test_submit_after_stop_is_unavailable(self):
        engine = make_engine()
        engine.stop()
        pending = engine.submit("classify", "x", request_id="1")
        assert pending.response["error"]["code"] == "unavailable"
        assert pending.response["error"]["retryable"] is True


class TestFailureIsolation:
    def test_failed_request_does_not_poison_batch(self):
        session = StubSession(fail_texts=frozenset({"bad"}))
        engine = make_engine(session, max_delay_ms=50.0)
        try:
            good = engine.submit("classify", "good", request_id="g")
            bad = engine.submit("classify", "bad", request_id="b")
            good_response = good.wait(timeout=30)
            bad_response = bad.wait(timeout=30)
        finally:
            engine.stop()
        assert good_response["ok"]
        assert not bad_response["ok"]
        assert bad_response["error"]["code"] == "failed"
        assert "boom" in bad_response["error"]["message"]

    def test_session_crash_fails_batch_retryably(self):
        class CrashingSession(StubSession):
            def run_batch(self, requests):
                raise RuntimeError("kernel exploded")

        engine = make_engine(CrashingSession())
        try:
            pending = engine.submit("classify", "x", request_id="1")
            response = pending.wait(timeout=30)
        finally:
            engine.stop()
        assert response["error"]["code"] == "worker_failed"
        assert response["error"]["retryable"] is True
        assert engine.metrics.value_of("serve.worker_failures") == 1


class TestStats:
    def test_stats_shape(self):
        engine = make_engine()
        try:
            engine.submit("extract", "x", request_id="1").wait(30)
            stats = engine.stats()
        finally:
            engine.stop()
        assert stats["requests"] == {"extract": 1}
        assert stats["workers"] == 0
        assert stats["shed"] == 0
