"""Property tests for the serve-layer batching policy and coalescer.

The coalescer is the serve layer's ChunkPlanner: batch boundaries must
be a pure function of the request stream (never of timing, except the
explicit latency deadline), so the same invariants are asserted —
contiguous, order-preserving, exact-cover partitions, and identical
boundaries whether the policy runs streaming or offline.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.coalescer import (
    BatchPolicy, PendingRequest, RequestCoalescer,
)

tokens_strategy = st.lists(st.integers(min_value=0, max_value=5_000),
                           max_size=300)
max_requests_strategy = st.integers(min_value=1, max_value=80)
token_target_strategy = st.integers(min_value=1, max_value=20_000)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def _pending(tokens: int, index: int = 0) -> PendingRequest:
    return PendingRequest(request_id=f"r{index}", op="classify",
                          text="x", tokens=tokens)


class TestBatchPolicyPartition:
    @given(tokens=tokens_strategy, max_requests=max_requests_strategy,
           token_target=token_target_strategy)
    @settings(max_examples=200, deadline=None)
    def test_contiguous_order_preserving_exact_cover(
            self, tokens, max_requests, token_target):
        policy = BatchPolicy(max_requests=max_requests,
                             token_target=token_target)
        bounds = policy.plan(tokens)
        if not tokens:
            assert bounds == []
            return
        assert bounds[0][0] == 0
        assert bounds[-1][1] == len(tokens)
        for start, end in bounds:
            assert start < end
        for (_, prev_end), (start, _) in zip(bounds, bounds[1:]):
            assert start == prev_end

    @given(tokens=tokens_strategy, max_requests=max_requests_strategy,
           token_target=token_target_strategy)
    @settings(max_examples=200, deadline=None)
    def test_batches_respect_request_and_token_caps(
            self, tokens, max_requests, token_target):
        policy = BatchPolicy(max_requests=max_requests,
                             token_target=token_target)
        for start, end in policy.plan(tokens):
            assert end - start <= max_requests
            # A batch may only exceed the token target by its final
            # (closing) request; every proper prefix stays under it.
            assert sum(tokens[start:end - 1]) < token_target

    @given(tokens=tokens_strategy, max_requests=max_requests_strategy,
           token_target=token_target_strategy)
    @settings(max_examples=200, deadline=None)
    def test_streaming_add_matches_offline_plan(
            self, tokens, max_requests, token_target):
        policy = BatchPolicy(max_requests=max_requests,
                             token_target=token_target)
        bounds = policy.plan(tokens)
        streaming: list[tuple[int, int]] = []
        start = 0
        for index, count in enumerate(tokens):
            if policy.add(count):
                streaming.append((start, index + 1))
                start = index + 1
        if start < len(tokens):
            streaming.append((start, len(tokens)))
        policy.reset()
        assert streaming == bounds

    @given(tokens=tokens_strategy, max_requests=max_requests_strategy,
           token_target=token_target_strategy)
    @settings(max_examples=100, deadline=None)
    def test_plan_is_deterministic(self, tokens, max_requests,
                                   token_target):
        policy = BatchPolicy(max_requests=max_requests,
                             token_target=token_target)
        assert policy.plan(tokens) == policy.plan(tokens)


class TestBatchPolicyConfig:
    def test_for_config_mirrors_chunk_planner_rule(self):
        policy = BatchPolicy.for_config(workers=2, queue_limit=256)
        # ceil(256 / (2 * PIPELINE_DEPTH)) = 64, clamped to MAX.
        assert policy.max_requests == BatchPolicy.MAX_REQUESTS

    def test_for_config_clamps_to_bounds(self):
        tiny = BatchPolicy.for_config(workers=8, queue_limit=1)
        assert tiny.max_requests == BatchPolicy.MIN_REQUESTS
        huge = BatchPolicy.for_config(workers=1, queue_limit=10_000)
        assert huge.max_requests == BatchPolicy.MAX_REQUESTS

    def test_for_config_workers_zero_counts_one_dispatcher(self):
        inline = BatchPolicy.for_config(workers=0, queue_limit=64)
        assert inline.max_requests == \
            BatchPolicy.for_config(workers=1, queue_limit=64).max_requests

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_requests=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_delay=-1.0)


class TestRequestCoalescer:
    def test_take_closes_on_size(self):
        clock = FakeClock()
        coalescer = RequestCoalescer(
            BatchPolicy(max_requests=3, max_delay=100.0), clock=clock)
        for index in range(7):
            coalescer.submit(_pending(1, index))
        first = coalescer.take()
        second = coalescer.take()
        assert [p.request_id for p in first] == ["r0", "r1", "r2"]
        assert [p.request_id for p in second] == ["r3", "r4", "r5"]
        assert coalescer.depth == 1

    def test_take_closes_on_deadline_with_fake_clock(self):
        clock = FakeClock()
        coalescer = RequestCoalescer(
            BatchPolicy(max_requests=100, max_delay=0.5), clock=clock)
        coalescer.submit(_pending(1, 0))
        coalescer.submit(_pending(1, 1))
        result: list = []
        thread = threading.Thread(
            target=lambda: result.append(coalescer.take()))
        thread.start()
        thread.join(timeout=0.1)
        assert thread.is_alive(), "batch must not close before deadline"
        clock.now = 0.6  # past the oldest request's deadline
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert [p.request_id for p in result[0]] == ["r0", "r1"]

    def test_zero_delay_closes_immediately(self):
        coalescer = RequestCoalescer(
            BatchPolicy(max_requests=100, max_delay=0.0),
            clock=FakeClock())
        coalescer.submit(_pending(1, 0))
        assert [p.request_id for p in coalescer.take()] == ["r0"]

    def test_token_target_closes_batch(self):
        coalescer = RequestCoalescer(
            BatchPolicy(max_requests=100, token_target=10,
                        max_delay=100.0), clock=FakeClock())
        coalescer.submit(_pending(6, 0))
        coalescer.submit(_pending(6, 1))
        coalescer.submit(_pending(1, 2))
        batch = coalescer.take()
        assert [p.request_id for p in batch] == ["r0", "r1"]

    def test_close_drains_then_returns_none(self):
        coalescer = RequestCoalescer(
            BatchPolicy(max_requests=100, max_delay=100.0),
            clock=FakeClock())
        coalescer.submit(_pending(1, 0))
        coalescer.close()
        assert [p.request_id for p in coalescer.take()] == ["r0"]
        assert coalescer.take() is None
        with pytest.raises(RuntimeError):
            coalescer.submit(_pending(1, 1))

    def test_concurrent_takers_partition_the_stream(self):
        coalescer = RequestCoalescer(
            BatchPolicy(max_requests=5, max_delay=0.005))
        taken: list[list[str]] = []
        lock = threading.Lock()

        def taker() -> None:
            while True:
                batch = coalescer.take()
                if batch is None:
                    return
                with lock:
                    taken.append([p.request_id for p in batch])

        threads = [threading.Thread(target=taker) for _ in range(3)]
        for thread in threads:
            thread.start()
        for index in range(200):
            coalescer.submit(_pending(1, index))
        coalescer.close()
        for thread in threads:
            thread.join(timeout=30)
        flat = [rid for batch in taken for rid in batch]
        # Every request taken exactly once; every batch contiguous in
        # arrival order.
        assert sorted(flat, key=lambda r: int(r[1:])) == \
            [f"r{i}" for i in range(200)]
        for batch in taken:
            ids = [int(rid[1:]) for rid in batch]
            assert ids == list(range(ids[0], ids[0] + len(ids)))
