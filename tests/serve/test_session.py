"""ExtractionSession tests over the real trained pipeline: batch
results must equal single-request results, op dispatch must isolate
failures, and cache wiring must restore on close."""

from __future__ import annotations

import pytest

from repro.nlp.anno_cache import AnnotationCache
from repro.serve.session import ExtractionSession

TEXTS = [
    "Aspirin reduced migraine symptoms in treated patients.",
    "The trial compared metformin with placebo over twelve weeks.",
    "No improvement was seen in the control group.",
    "Insulin therapy improved outcomes for diabetes patients.",
]


@pytest.fixture(scope="module")
def session(pipeline) -> ExtractionSession:
    wrapped = ExtractionSession(pipeline)
    wrapped.warm()
    return wrapped


class TestRunBatch:
    def test_mixed_batch_equals_singles(self, session):
        requests = [(op, text) for text in TEXTS
                    for op in ("extract", "annotate", "classify")]
        batched = session.run_batch(requests)
        singles = [session.run_batch([request])[0]
                   for request in requests]
        assert batched == singles

    def test_results_independent_of_batch_composition(self, session):
        target = ("extract", TEXTS[0])
        alone = session.run_batch([target])[0]
        crowded = session.run_batch(
            [("classify", TEXTS[1]), target, ("annotate", TEXTS[2]),
             ("extract", TEXTS[3])])[1]
        assert alone == crowded

    def test_unknown_op_marks_only_its_requests(self, session):
        results = session.run_batch(
            [("classify", TEXTS[0]), ("frobnicate", TEXTS[1])])
        assert "relevant" in results[0]
        assert results[1] == {"_error": "unknown op 'frobnicate'"}

    def test_extract_result_shape(self, session):
        result = session.run_batch([("extract", TEXTS[0])])[0]
        assert set(result) == {"entities", "sentences", "tokens"}
        for entity in result["entities"]:
            assert set(entity) == {"text", "start", "end", "type",
                                   "method"}
            assert entity["text"] == TEXTS[0][entity["start"]:
                                              entity["end"]]

    def test_annotate_result_shape(self, session):
        result = session.run_batch([("annotate", TEXTS[0])])[0]
        tokens = result["sentences"][0]["tokens"]
        assert tokens and all(
            isinstance(text, str) and isinstance(pos, str)
            for text, pos in tokens)

    def test_classify_matches_classifier(self, session, pipeline):
        result = session.run_batch([("classify", TEXTS[0])])[0]
        assert result["relevant"] == pipeline.classifier.predict(
            TEXTS[0])
        assert result["probability"] == pytest.approx(
            pipeline.classifier.probability(TEXTS[0]), abs=1e-12)

    def test_batch_kernel_crash_falls_back_per_request(
            self, session, monkeypatch):
        real = session.classify_batch

        def explode_on_many(texts):
            if len(texts) > 1:
                raise RuntimeError("batch kernel down")
            return real(texts)

        monkeypatch.setattr(session, "classify_batch", explode_on_many)
        results = session.run_batch(
            [("classify", TEXTS[0]), ("classify", TEXTS[1])])
        assert results == [real([TEXTS[0]])[0], real([TEXTS[1]])[0]]

    def test_single_request_failure_is_marked(self, session,
                                              monkeypatch):
        def always_explode(texts):
            raise ValueError("no service")

        monkeypatch.setattr(session, "annotate_batch", always_explode)
        results = session.run_batch([("annotate", TEXTS[0]),
                                     ("classify", TEXTS[1])])
        assert results[0] == {"_error": "ValueError: no service"}
        assert "relevant" in results[1]


class TestCacheWiring:
    def test_install_and_restore(self, pipeline, tmp_path):
        priors = {id(tagger): tagger.annotation_cache
                  for tagger in [pipeline.pos_tagger,
                                 *pipeline.ml_taggers.values()]}
        wrapped = ExtractionSession(pipeline,
                                    annotation_cache=str(tmp_path))
        assert isinstance(wrapped.annotation_cache, AnnotationCache)
        for tagger in [pipeline.pos_tagger,
                       *pipeline.ml_taggers.values()]:
            assert tagger.annotation_cache is wrapped.annotation_cache
        wrapped.run_batch([("extract", TEXTS[0])])
        wrapped.close()
        for tagger in [pipeline.pos_tagger,
                       *pipeline.ml_taggers.values()]:
            assert tagger.annotation_cache is priors[id(tagger)]

    def test_close_flushes_cache(self, pipeline, tmp_path):
        wrapped = ExtractionSession(pipeline,
                                    annotation_cache=str(tmp_path))
        wrapped.run_batch([("annotate", TEXTS[0])])
        wrapped.close()
        assert list(tmp_path.glob("anno-*.bin")), \
            "flush must persist shards"
