"""Wire-protocol tests: canonical encoding, request validation."""

from __future__ import annotations

import pytest

from repro.serve import protocol


class TestEncoding:
    def test_canonical_one_line(self):
        data = protocol.encode_message({"b": 1, "a": [2, 3]})
        assert data == b'{"a":[2,3],"b":1}\n'

    def test_roundtrip(self):
        payload = {"id": "x", "op": "extract", "text": "héllo"}
        assert protocol.decode_message(
            protocol.encode_message(payload).rstrip(b"\n")) == payload

    def test_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_message(b"[1,2]")

    def test_rejects_garbage(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_message(b"\xff{not json")


class TestRequestValidation:
    def test_valid_batch_op(self):
        request = protocol.Request.from_payload(
            {"id": 7, "op": "classify", "text": "hi"})
        assert request.request_id == "7"
        assert request.tenant == "default"

    def test_control_op_needs_no_text(self):
        request = protocol.Request.from_payload(
            {"id": "a", "op": "ping"})
        assert request.op == "ping"

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {"id": "a", "op": "nope", "text": "x"},
        {"op": "extract", "text": "x"},
        {"id": None, "op": "extract", "text": "x"},
        {"id": "a", "op": "extract", "text": "   "},
        {"id": "a", "op": "extract"},
        {"id": "a", "op": "extract", "text": 5},
        {"id": "a", "op": "extract", "text": "x", "tenant": ""},
    ])
    def test_invalid_payloads(self, payload):
        with pytest.raises(protocol.ProtocolError):
            protocol.Request.from_payload(payload)


def test_response_shapes():
    assert protocol.ok_response("i", {"x": 1}) == {
        "id": "i", "ok": True, "result": {"x": 1}}
    error = protocol.error_response("i", "shed", "busy", retryable=True)
    assert error["ok"] is False
    assert error["error"] == {"code": "shed", "message": "busy",
                              "retryable": True}
