"""Socket-level integration tests: a real ExtractionServer over the
trained pipeline, driven by the load generator.

The load generator's digest (sha256 over every (request id, response
body) pair, order-independent) is the wire-level byte-identity check:
batched, unbatched, inline, and forked-worker servers must all
produce the same digest for the same workload.
"""

from __future__ import annotations

import pytest

from repro.serve.loadgen import (
    LoadGenerator, ServeClient, generate_workload,
)
from repro.serve.server import ExtractionServer, ServeConfig
from repro.serve.session import ExtractionSession

WORKLOAD = generate_workload(48, seed=23)


def start_server(pipeline, **overrides) -> ExtractionServer:
    config = ServeConfig(workers=0, max_batch=8, max_delay_ms=3.0,
                         queue_limit=64)
    for key, value in overrides.items():
        setattr(config, key, value)
    session = ExtractionSession(pipeline)
    return ExtractionServer(session, config).start()


def drive(server: ExtractionServer, workload=WORKLOAD,
          concurrency: int = 2, window: int = 8,
          tenant: str = "default") -> LoadGenerator:
    host, port = server.address
    return LoadGenerator(host, port, concurrency=concurrency,
                         window=window).run(workload, tenant=tenant)


class TestBatchedVsUnbatched:
    def test_digests_identical_and_batches_formed(self, pipeline):
        batched_server = start_server(pipeline)
        try:
            batched = drive(batched_server)
            stats = batched_server.engine.stats()
        finally:
            batched_server.shutdown()
        unbatched_server = start_server(pipeline, max_batch=1)
        try:
            unbatched = drive(unbatched_server)
            unbatched_stats = unbatched_server.engine.stats()
        finally:
            unbatched_server.shutdown()
        assert batched.ok == len(WORKLOAD)
        assert unbatched.ok == len(WORKLOAD)
        assert batched.digest == unbatched.digest
        assert stats["multi_request_batches"] > 0
        assert unbatched_stats["multi_request_batches"] == 0

    def test_forked_worker_matches_inline(self, pipeline):
        inline_server = start_server(pipeline)
        try:
            inline = drive(inline_server)
        finally:
            inline_server.shutdown()
        forked_server = start_server(pipeline, workers=1)
        try:
            assert forked_server.engine.stats()["workers"] == 1
            forked = drive(forked_server)
        finally:
            forked_server.shutdown()
        assert forked.ok == len(WORKLOAD)
        assert forked.digest == inline.digest


class TestControlOps:
    @pytest.fixture()
    def server(self, pipeline):
        server = start_server(pipeline)
        yield server
        server.shutdown()

    def test_ping_and_stats(self, server):
        host, port = server.address
        with ServeClient(host, port) as client:
            assert client.call("ping")["result"]["pong"] is True
            client.call("classify", "aspirin helps migraine.")
            stats = client.call("stats")["result"]
        assert stats["requests"] == {"classify": 1}

    def test_metrics_endpoint_respects_volatile_split(self, server):
        host, port = server.address
        with ServeClient(host, port) as client:
            client.call("extract", "aspirin helps migraine.")
            full = client.call("metrics")["result"]
            deterministic = client.call(
                "metrics", include_volatile=False)["result"]
        full_names = {entry["name"] for entry in full["metrics"]}
        det_names = {entry["name"] for entry in
                     deterministic["metrics"]}
        assert "serve.latency_seconds" in full_names
        assert "serve.requests" in det_names
        assert not any(entry.get("volatile")
                       for entry in deterministic["metrics"])

    def test_bad_requests_get_error_responses(self, server):
        host, port = server.address
        with ServeClient(host, port) as client:
            response = client.call("extract")  # empty text
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"
            # The connection survives a bad request.
            assert client.call("ping")["result"]["pong"] is True

    def test_shutdown_op_stops_serve_forever(self, pipeline):
        server = start_server(pipeline)
        host, port = server.address
        with ServeClient(host, port) as client:
            assert client.call("shutdown")["result"]["stopping"]
        server.serve_forever()  # returns because shutdown was requested
        assert server._done


class TestQuotasOverTheWire:
    def test_tenant_quota_rejects_with_retryable_error(self, pipeline):
        server = start_server(
            pipeline, quotas={"limited": (0.001, 6.0)})
        try:
            host, port = server.address
            with ServeClient(host, port) as client:
                first = client.call("classify", "a b c d e f",
                                    tenant="limited")
                second = client.call("classify", "a b c d e f",
                                     tenant="limited")
                third = client.call("classify", "a b c d e f")
        finally:
            server.shutdown()
        assert first["ok"] is True
        assert second["ok"] is False
        assert second["error"]["code"] == "quota"
        assert second["error"]["retryable"] is True
        assert third["ok"] is True, "default tenant is unlimited"
