"""Token-bucket quota tests (deterministic via an injected clock)."""

from __future__ import annotations

import pytest

from repro.serve.quotas import (
    QuotaManager, TokenBucket, count_tokens, parse_quota_spec,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=20.0)
        assert bucket.admit(20, now=0.0)
        assert not bucket.admit(1, now=0.0)
        # One second refills 10 tokens.
        assert bucket.admit(10, now=1.0)
        assert not bucket.admit(1, now=1.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=5.0)
        assert bucket.admit(5, now=0.0)
        assert bucket.admit(5, now=1000.0)
        assert not bucket.admit(6, now=1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestParseQuotaSpec:
    def test_default_spec(self):
        assert parse_quota_spec("10:50") == (None, 10.0, 50.0)

    def test_tenant_spec(self):
        assert parse_quota_spec("acme=2.5:100") == ("acme", 2.5, 100.0)

    @pytest.mark.parametrize("bad", ["", "10", "a=b:c", "=1:2"])
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_quota_spec(bad)


class TestQuotaManager:
    def test_no_spec_admits_everything(self):
        manager = QuotaManager(clock=FakeClock())
        assert manager.admit("anyone", 10 ** 9)
        assert manager.rejections == 0

    def test_per_tenant_buckets_are_independent(self):
        clock = FakeClock()
        manager = QuotaManager(default=(1.0, 5.0), clock=clock)
        assert manager.admit("a", 5)
        assert not manager.admit("a", 1)
        assert manager.admit("b", 5)
        assert manager.rejections == 1

    def test_configured_overrides_default(self):
        clock = FakeClock()
        manager = QuotaManager(quotas={"vip": (100.0, 1000.0)},
                               default=(1.0, 2.0), clock=clock)
        assert manager.admit("vip", 500)
        assert not manager.admit("pleb", 500)

    def test_refill_via_clock(self):
        clock = FakeClock()
        manager = QuotaManager(default=(10.0, 10.0), clock=clock)
        assert manager.admit("t", 10)
        assert not manager.admit("t", 10)
        clock.now = 1.0
        assert manager.admit("t", 10)

    def test_snapshot_reports_levels(self):
        clock = FakeClock()
        manager = QuotaManager(default=(1.0, 8.0), clock=clock)
        manager.admit("t", 3)
        snapshot = manager.snapshot()
        assert snapshot == {"t": {"rate": 1.0, "burst": 8.0,
                                  "tokens": 5.0}}

    def test_configure_resets_bucket(self):
        clock = FakeClock()
        manager = QuotaManager(default=(1.0, 5.0), clock=clock)
        assert manager.admit("t", 5)
        manager.configure("t", 1.0, 100.0)
        assert manager.admit("t", 100)


def test_count_tokens_is_whitespace_split():
    assert count_tokens("one two  three\nfour") == 4
    assert count_tokens("") == 0
