"""Unit tests for the shared utility helpers."""

import os
import random
import subprocess
import sys
from pathlib import Path

import repro.util
from repro.util import seeded_rng


class TestSeededRng:
    def test_returns_random_instance(self):
        assert isinstance(seeded_rng("x"), random.Random)

    def test_same_parts_same_stream(self):
        first = [seeded_rng("a", 1).random() for _ in range(3)]
        second = [seeded_rng("a", 1).random() for _ in range(3)]
        assert first == second

    def test_different_parts_different_stream(self):
        assert seeded_rng("a", 1).random() != seeded_rng("a", 2).random()
        assert seeded_rng("a").random() != seeded_rng("b").random()

    def test_part_boundaries_matter(self):
        """("ab", "c") and ("a", "bc") must not collide — the joiner
        separates parts unambiguously."""
        assert seeded_rng("ab", "c").random() != \
            seeded_rng("a", "bc").random()

    def test_non_string_parts(self):
        assert seeded_rng(1, 2.5, None).random() == \
            seeded_rng("1", "2.5", "None").random()

    def test_stable_across_processes(self):
        """The whole point: unlike hash(), the stream survives
        interpreter restarts (PYTHONHASHSEED changes)."""
        src = str(Path(repro.util.__file__).resolve().parents[2])
        code = (f"import sys; sys.path.insert(0, {src!r}); "
                "from repro.util import seeded_rng; "
                "print(repr(seeded_rng('stable', 7).random()))")
        runs = {
            subprocess.run(
                [sys.executable, "-c", code], capture_output=True,
                text=True, check=True,
                env={**os.environ, "PYTHONHASHSEED": hash_seed},
            ).stdout.strip()
            for hash_seed in ("0", "12345")
        }
        assert len(runs) == 1
        assert runs == {repr(seeded_rng("stable", 7).random())}
