"""Unit tests for span-based tracing with an injectable clock."""

import json

from repro.obs.trace import NULL_SPAN, Span, TickClock, Tracer, maybe_span


class TestTracer:
    def test_spans_nest_and_finish_in_completion_order(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        assert [span.name for span in tracer.finished] == \
            ["inner", "outer"]
        inner = tracer.finished[0]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_sequential_ids_assigned_at_open(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            with tracer.span("c") as c:
                pass
        assert (a.span_id, b.span_id, c.span_id) == (0, 1, 2)

    def test_tick_clock_gives_byte_stable_exports(self):
        def run():
            tracer = Tracer(clock=TickClock())
            with tracer.span("batch", entries=3):
                with tracer.span("fetch"):
                    pass
            return tracer.export_lines()

        assert run() == run()

    def test_attrs_and_duration(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("s", static=1) as span:
            span.set(dynamic=2)
        assert span.attrs == {"static": 1, "dynamic": 2}
        assert span.duration == 1.0
        payload = json.loads(tracer.export_lines()[0])
        assert payload["attrs"] == {"static": 1, "dynamic": 2}

    def test_span_round_trips_through_dict(self):
        span = Span(span_id=3, parent_id=1, name="x", start=1.0,
                    end=2.0, attrs={"k": "v"})
        assert Span.from_dict(span.to_dict()) == span

    def test_state_dict_resumes_id_counter(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("a"):
            pass
        resumed = Tracer(clock=TickClock(start=10))
        resumed.load_state(tracer.state_dict())
        with resumed.span("b") as b:
            pass
        assert b.span_id == 1
        assert [span.name for span in resumed.finished] == ["a", "b"]

    def test_write_jsonl(self, tmp_path):
        tracer = Tracer(clock=TickClock())
        with tracer.span("only"):
            pass
        path = tracer.write_jsonl(tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "only"


class TestMaybeSpan:
    def test_none_tracer_yields_null_span(self):
        with maybe_span(None, "anything", k=1) as span:
            span.set(extra=2)  # must be a no-op, not an error
        assert span is NULL_SPAN

    def test_real_tracer_records(self):
        tracer = Tracer(clock=TickClock())
        with maybe_span(tracer, "real", k=1) as span:
            span.set(extra=2)
        assert len(tracer.finished) == 1
        assert tracer.finished[0].attrs == {"k": 1, "extra": 2}
