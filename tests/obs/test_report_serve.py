"""The ``repro report`` serve section: percentile estimation from
histogram buckets and the rendered summary lines."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    _histogram_percentile, render_report, render_serve_summary,
)
from repro.serve.server import BATCH_SIZE_BUCKETS, LATENCY_BUCKETS


def make_serve_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("serve.requests", op="extract").inc(60)
    registry.counter("serve.requests", op="classify").inc(40)
    registry.counter("serve.batches", volatile=True).inc(20)
    registry.counter("serve.multi_request_batches", volatile=True).inc(15)
    latency = registry.histogram("serve.latency_seconds",
                                 buckets=LATENCY_BUCKETS, volatile=True)
    for _ in range(99):
        latency.observe(0.004)
    latency.observe(0.2)
    batch_size = registry.histogram("serve.batch_size",
                                    buckets=BATCH_SIZE_BUCKETS,
                                    volatile=True)
    for _ in range(20):
        batch_size.observe(5)
    return registry


class TestHistogramPercentile:
    def test_bucket_upper_bound(self):
        registry = make_serve_registry()
        latency = registry.histogram_of("serve.latency_seconds")
        # 99 of 100 observations sit in the <=0.005 bucket; the 100th
        # in <=0.25.
        assert _histogram_percentile(latency, 50) == 0.005
        assert _histogram_percentile(latency, 99) == 0.005
        assert _histogram_percentile(latency, 100) == 0.25

    def test_empty_histogram_is_zero(self):
        registry = MetricsRegistry()
        empty = registry.histogram("h", buckets=(1.0,), volatile=True)
        assert _histogram_percentile(empty, 99) == 0.0


class TestRenderServeSummary:
    def test_absent_without_serve_metrics(self):
        assert render_serve_summary(MetricsRegistry()) == []

    def test_summary_lines(self):
        lines = render_serve_summary(make_serve_registry())
        assert lines[0] == "serve: 100 requests (classify 40 | " \
                           "extract 60)"
        assert lines[1] == "batches 20 (15 multi-request, " \
                           "5.0 requests/batch mean)"
        text = "\n".join(lines)
        assert "latency: p50 <= 5 ms, p99 <= 5 ms" in text
        assert "batch size:" in text
        # No shed/quota/failure line when those counters are zero.
        assert "shed" not in text

    def test_shed_line_appears_when_nonzero(self):
        registry = make_serve_registry()
        registry.counter("serve.shed", volatile=True).inc(3)
        text = "\n".join(render_serve_summary(registry))
        assert "shed 3 | quota-rejected 0 | worker failures 0" in text

    def test_deterministic_export_still_renders_counts(self):
        """A deterministic-only export (no volatile histograms) keeps
        the request-count line and drops the histogram sections."""
        registry = make_serve_registry()
        roundtrip = MetricsRegistry()
        roundtrip.load_dict(registry.to_dict(include_volatile=False))
        lines = render_serve_summary(roundtrip)
        assert lines[0].startswith("serve: 100 requests")
        assert not any("latency" in line for line in lines)


class TestRenderReport:
    @pytest.fixture()
    def metrics_path(self, tmp_path):
        path = tmp_path / "serve-metrics.jsonl"
        make_serve_registry().write_jsonl(path, include_volatile=True)
        return path

    def test_report_includes_serve_section(self, metrics_path):
        text = "\n".join(render_report(metrics_path))
        assert "serve: 100 requests" in text
        assert "serve.requests" in text  # generic dump still follows
