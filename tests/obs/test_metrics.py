"""Unit tests for the metrics model (counters, gauges, histograms,
registry snapshot/merge/export semantics)."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry,
)


class TestPrimitives:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2)
        counter.inc(0.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.set(3)
        assert gauge.value == 3

    def test_histogram_bucketing(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 2.0, 10.0, 11.0):
            histogram.observe(value)
        # <=1.0 | (1.0, 10.0] | overflow
        assert histogram.counts == [2, 2, 1]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(24.5)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))

    def test_histogram_merge_requires_same_layout(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))

    def test_histogram_merge_adds_counts_and_sum(self):
        left, right = Histogram(bounds=(1.0,)), Histogram(bounds=(1.0,))
        left.observe(0.5)
        right.observe(2.0)
        right.observe(3.0)
        left.merge(right)
        assert left.counts == [1, 2]
        assert left.sum == pytest.approx(5.5)


class TestRegistry:
    def test_same_address_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("a", stage="x") is \
            registry.counter("a", stage="x")
        assert registry.counter("a", stage="x") is not \
            registry.counter("a", stage="y")

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        assert registry.counter("a", x=1, y=2) is \
            registry.counter("a", y=2, x=1)

    def test_kind_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")
        with pytest.raises(ValueError):
            registry.histogram("a")

    def test_volatility_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a", volatile=True)
        with pytest.raises(ValueError):
            registry.counter("a")

    def test_histogram_layout_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_value_of_and_labels_of(self):
        registry = MetricsRegistry()
        registry.counter("pages", stage="fetch").inc(3)
        registry.counter("pages", stage="parse").inc(1)
        assert registry.value_of("pages", stage="fetch") == 3
        assert registry.value_of("pages", stage="nope") is None
        assert registry.labels_of("pages") == [
            {"stage": "fetch"}, {"stage": "parse"}]

    def test_default_export_excludes_volatile(self):
        registry = MetricsRegistry()
        registry.counter("det").inc()
        registry.counter("vol", volatile=True).inc()
        names = [json.loads(line)["name"]
                 for line in registry.export_lines()]
        assert names == ["det"]
        names = [json.loads(line)["name"]
                 for line in registry.export_lines(include_volatile=True)]
        assert names == ["det", "vol"]

    def test_export_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c", stage="x").inc(7)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        path = registry.write_jsonl(tmp_path / "m.jsonl")
        restored = MetricsRegistry.read_jsonl(path)
        assert restored.export_lines() == registry.export_lines()
        assert restored.value_of("c", stage="x") == 7
        histogram = restored.histogram("h", buckets=(1.0, 2.0))
        assert histogram.counts == [0, 1, 0]

    def test_snapshot_load_round_trips_volatile_flag(self):
        registry = MetricsRegistry()
        registry.counter("vol", volatile=True).inc(2)
        restored = MetricsRegistry()
        restored.load_dict(registry.to_dict(include_volatile=True))
        assert restored.export_lines() == []
        assert restored.export_lines(include_volatile=True) == \
            registry.export_lines(include_volatile=True)

    def test_merge_semantics(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("c").inc(1)
        right.counter("c").inc(2)
        left.gauge("g").set(1)
        right.gauge("g").set(9)
        left.histogram("h").observe(0.5)
        right.histogram("h").observe(0.5)
        left.merge(right)
        assert left.value_of("c") == 3
        assert left.value_of("g") == 9  # last write wins
        assert left.histogram("h").count == 2

    def test_merge_empty_is_identity(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(4)
        before = registry.export_lines()
        registry.merge(MetricsRegistry())
        assert registry.export_lines() == before

    def test_default_buckets_strictly_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))
