"""Property tests: histogram merge algebra and export stability.

The multi-worker aggregation rule (accumulate in workers, merge at the
coordinator) is only sound because merging is associative and
commutative on bucket counts — these properties are checked directly
against hypothesis-generated observation streams.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.obs.metrics import Histogram, MetricsRegistry

#: A fixed layout shared by all generated histograms (fixed layouts are
#: the merge-exactness precondition the registry enforces).
BOUNDS = (0.01, 0.1, 1.0, 10.0)

observations = st.lists(
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    max_size=40)


def _histogram(values):
    histogram = Histogram(bounds=BOUNDS)
    for value in values:
        histogram.observe(value)
    return histogram


@given(observations)
def test_count_is_sum_of_buckets(values):
    histogram = _histogram(values)
    assert histogram.count == sum(histogram.counts) == len(values)


@given(observations, observations)
def test_merge_is_commutative_on_counts(left_values, right_values):
    ab = _histogram(left_values)
    ab.merge(_histogram(right_values))
    ba = _histogram(right_values)
    ba.merge(_histogram(left_values))
    assert ab.counts == ba.counts
    assert math.isclose(ab.sum, ba.sum, rel_tol=1e-9, abs_tol=1e-9)


@given(observations, observations, observations)
@settings(max_examples=50)
def test_merge_is_associative_on_counts(values_a, values_b, values_c):
    left = _histogram(values_a)
    bc = _histogram(values_b)
    bc.merge(_histogram(values_c))
    left.merge(bc)

    right = _histogram(values_a)
    right.merge(_histogram(values_b))
    right.merge(_histogram(values_c))

    assert left.counts == right.counts
    assert math.isclose(left.sum, right.sum, rel_tol=1e-9, abs_tol=1e-9)


@given(observations)
def test_merge_equals_single_stream(values):
    """Splitting a stream across workers and merging the parts yields
    the same buckets as observing the whole stream in one place."""
    whole = _histogram(values)
    half = len(values) // 2
    merged = _histogram(values[:half])
    merged.merge(_histogram(values[half:]))
    assert merged.counts == whole.counts
    assert math.isclose(merged.sum, whole.sum, rel_tol=1e-9, abs_tol=1e-9)


@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                          st.integers(min_value=0, max_value=5)),
                max_size=30))
def test_registry_export_is_order_insensitive(increments):
    """Two registries fed the same increments in different orders
    export byte-identical files."""
    forward, backward = MetricsRegistry(), MetricsRegistry()
    for name, amount in increments:
        forward.counter(name, stage=name).inc(amount)
    for name, amount in reversed(increments):
        backward.counter(name, stage=name).inc(amount)
    assert forward.export_lines() == backward.export_lines()
