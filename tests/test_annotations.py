"""Tests for the shared annotation data model and utilities."""

import pytest

from repro.annotations import (
    Document, EntityMention, LinguisticMention, Sentence, Span, Token,
)
from repro.util import seeded_rng


class TestSpan:
    def test_length(self):
        assert len(Span(2, 7)) == 5

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            Span(5, 2)
        with pytest.raises(ValueError):
            Span(-1, 3)

    def test_overlaps(self):
        assert Span(0, 5).overlaps(Span(4, 9))
        assert not Span(0, 5).overlaps(Span(5, 9))  # half-open
        assert Span(2, 3).overlaps(Span(0, 10))

    def test_contains(self):
        assert Span(0, 10).contains(Span(2, 5))
        assert Span(0, 10).contains(Span(0, 10))
        assert not Span(2, 5).contains(Span(0, 10))


class TestToken:
    def test_with_pos_returns_copy(self):
        token = Token("cat", 0, 3)
        tagged = token.with_pos("NN")
        assert tagged.pos == "NN"
        assert token.pos == ""
        assert tagged.span == Span(0, 3)


class TestDocument:
    def _document(self):
        document = Document("d", "BRCA1 causes cancer. It spreads.")
        sentence = Sentence(0, 20, "BRCA1 causes cancer.")
        sentence.tokens = [Token("BRCA1", 0, 5, "NNP")]
        document.sentences = [sentence]
        document.entities = [
            EntityMention("BRCA1", 0, 5, "gene", method="dictionary"),
            EntityMention("cancer", 13, 19, "disease", method="ml"),
        ]
        document.linguistics = [
            LinguisticMention("It", 21, 23, "pronoun",
                              "personal_subject"),
        ]
        return document

    def test_len_is_text_length(self):
        assert len(self._document()) == 32

    def test_iter_tokens(self):
        assert [t.text for t in self._document().iter_tokens()] == \
            ["BRCA1"]

    def test_entities_of_filters(self):
        document = self._document()
        assert len(document.entities_of("gene")) == 1
        assert len(document.entities_of("gene", method="ml")) == 0
        assert len(document.entities_of("disease", method="ml")) == 1

    def test_copy_shallow_isolates_layers(self):
        document = self._document()
        copy = document.copy_shallow()
        copy.entities.append(
            EntityMention("x", 0, 1, "drug"))
        copy.meta["extra"] = True
        assert len(document.entities) == 2
        assert "extra" not in document.meta
        assert copy.text == document.text


class TestSeededRng:
    def test_deterministic_across_instances(self):
        a = seeded_rng("x", 1, None)
        b = seeded_rng("x", 1, None)
        assert [a.random() for _ in range(5)] == \
            [b.random() for _ in range(5)]

    def test_distinct_keys_distinct_streams(self):
        assert seeded_rng("x", 1).random() != seeded_rng("x", 2).random()
