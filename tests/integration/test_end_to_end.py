"""End-to-end integration: crawl -> dataflow -> content analysis."""

import pytest

from repro.core.analysis import CorpusStats, accumulate_document
from repro.core.flows import build_fig2_flow
from repro.dataflow.executor import LocalExecutor
from repro.dataflow.optimizer import SofaOptimizer


@pytest.fixture(scope="module")
def crawl(context):
    return context.crawl()


@pytest.fixture(scope="module")
def crawl_documents(crawl):
    """Relevant crawl documents re-wrapped with raw HTML for the flow."""
    documents = []
    for document in crawl.relevant[:12]:
        copy = document.copy_shallow()
        copy.meta.setdefault("content_type", "text/html")
        documents.append(copy)
    return documents


@pytest.fixture(scope="module")
def flow_outputs(context, crawl_documents):
    plan = build_fig2_flow(context.pipeline)
    SofaOptimizer().optimize(plan)
    outputs, report = LocalExecutor().execute(plan, crawl_documents)
    return outputs, report


class TestCrawlToFlow:
    def test_flow_processes_crawled_pages(self, flow_outputs):
        outputs, _report = flow_outputs
        assert outputs["sentences"]
        assert outputs["entities"]

    def test_entity_records_reference_crawled_docs(self, flow_outputs,
                                                   crawl_documents):
        outputs, _report = flow_outputs
        doc_ids = {d.doc_id for d in crawl_documents}
        assert {r["doc_id"] for r in outputs["entities"]} <= doc_ids

    def test_edges_extracted_from_crawled_html(self, flow_outputs):
        outputs, _report = flow_outputs
        for record in outputs["edges"][:10]:
            assert record["source"].startswith("http")
            assert record["target"].startswith("http")

    def test_entity_extraction_dominates_runtime(self, flow_outputs):
        """Section 4.2: entity extraction is the top cost (70 % on the
        paper's cluster; dominant here too)."""
        _outputs, report = flow_outputs
        dominant = dict(report.dominant_operators(6))
        ml_cost = sum(seconds for name, seconds in dominant.items()
                      if "_ml" in name or name == "annotate_pos")
        total = sum(s.seconds for s in report.operator_stats)
        assert ml_cost / total > 0.4

    def test_all_execution_modes_equivalent(self, context, crawl_documents):
        """Every physical mode must yield byte-identical sink outputs
        on the real Fig. 2 flow (operators mutate documents in place,
        so each mode gets fresh copies and a fresh plan)."""
        from repro.core.flows import EXECUTION_MODES, run_flow

        reference = None
        for mode in EXECUTION_MODES:
            plan = build_fig2_flow(context.pipeline)
            documents = [d.copy_shallow() for d in crawl_documents]
            outputs, report = run_flow(plan, documents, mode=mode,
                                       dop=2, batch_size=4)
            if reference is None:
                reference = outputs
            else:
                assert outputs == reference, mode
            assert report.to_json()


class TestCrawlToAnalysis:
    def test_crawled_relevant_corpus_statistics(self, context, crawl):
        stats = CorpusStats(name="crawled")
        for document in crawl.relevant[:10]:
            copy = document.copy_shallow()
            context.pipeline.analyze(copy)
            accumulate_document(stats, copy)
        assert stats.n_docs == 10
        assert stats.per_1000_sentences("disease") > 0

    def test_crawled_relevant_denser_than_irrelevant(self, context, crawl):
        pipeline = context.pipeline

        def density(documents):
            mentions = sentences = 0
            for document in documents[:8]:
                copy = document.copy_shallow()
                pipeline.analyze(copy, methods=("dictionary",))
                mentions += len(copy.entities)
                sentences += len(copy.sentences)
            return mentions / max(1, sentences)
        assert density(crawl.relevant) > density(crawl.irrelevant)


class TestFailureInjection:
    def test_flow_survives_binary_garbage(self, context):
        from repro.annotations import Document

        garbage = [
            Document("bin", "", raw="%PDF-1.4" + "\x01\x02" * 500,
                     meta={"url": "http://x/b.pdf",
                           "content_type": "text/html"}),
            Document("empty", "", raw="",
                     meta={"url": "http://x/e.html",
                           "content_type": "text/html"}),
            Document("broken", "", raw="<div <p <a href=" * 50,
                     meta={"url": "http://x/broken.html",
                           "content_type": "text/html"}),
        ]
        plan = build_fig2_flow(context.pipeline)
        outputs, _ = LocalExecutor().execute(plan, garbage)
        # Nothing useful survives, but nothing crashes either.
        assert outputs["entities"] == []

    def test_flow_handles_pathological_runon(self, context):
        from repro.annotations import Document
        from repro.corpora.profiles import RELEVANT
        from repro.corpora.textgen import DocumentGenerator
        from repro.web.htmlgen import PageRenderer

        generator = DocumentGenerator(context.vocabulary, RELEVANT,
                                      seed=123, pathological_fraction=1.0)
        text = generator.document(0).text
        renderer = PageRenderer(seed=3, defect_rate=0.0)
        doc = Document("runon", "", raw=renderer.render(
            "http://x/r.html", "t", text, []),
            meta={"url": "http://x/r.html", "content_type": "text/html"})
        plan = build_fig2_flow(context.pipeline)
        outputs, _ = LocalExecutor().execute(plan, [doc])
        # The POS tagger records crashes instead of killing the flow.
        assert isinstance(outputs["sentences"], list)
