"""Shard-count invariance of the host-sharded crawl executor.

The headline guarantee of :mod:`repro.crawler.shard`: a sharded crawl
produces byte-identical merged artifacts at any shard count — same
corpus, linkdb, counters, attrition, simulated clock, and (when
attached) the same deterministic metrics export — including across
kill+resume of the whole topology or of one forked shard.  The
sharded schedule is its own deterministic schedule (per-host batching
and per-host clocks), so the reference here is ``--shards 1``, not the
single-coordinator crawl.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.crawler.checkpoint import result_to_dict
from repro.crawler.crawl import CrawlConfig
from repro.crawler.shard import (
    ShardCrashed, ShardCrawler, ShardedCrawl, shard_of,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.web.faults import FaultConfig
from repro.web.server import SimulatedClock, SimulatedWeb

MAX_PAGES = 120

SEEDS = [6, 21, 47]
FAULTS = {
    "none": lambda seed: None,
    "default": lambda seed: FaultConfig.preset("default", seed=seed + 1),
    "uniform": lambda seed: FaultConfig.uniform(0.25, seed=seed + 1),
}


def _factory(context, webgraph, n_shards, web_seed, fault_name,
             workers=1, metrics=False, tracer=False,
             **config_overrides):
    def build(shard_id: int) -> ShardCrawler:
        web = SimulatedWeb(webgraph, seed=web_seed,
                           faults=FAULTS[fault_name](web_seed))
        config = CrawlConfig(max_pages=MAX_PAGES, batch_size=25,
                             parallel_workers=workers,
                             **config_overrides)
        clock = SimulatedClock()
        return ShardCrawler(
            shard_id, n_shards, web, context.pipeline.classifier,
            context.build_filter_chain(), config, clock=clock,
            metrics=MetricsRegistry() if metrics else None,
            tracer=Tracer(clock=lambda: clock.now) if tracer else None)
    return build


def _run(context, webgraph, n_shards, web_seed, fault_name, **kwargs):
    driver_kwargs = {
        key: kwargs.pop(key)
        for key in ("processes", "checkpoint_path", "checkpoint_every")
        if key in kwargs}
    driver = ShardedCrawl(
        _factory(context, webgraph, n_shards, web_seed, fault_name,
                 **kwargs),
        n_shards, MAX_PAGES, host_quota=2, **driver_kwargs)
    result = driver.run(list(context.seed_batch("second").urls))
    return driver, result


def _state(result) -> dict:
    return {"result": result_to_dict(result),
            "attrition": result.filter_attrition,
            "clock": result.clock_seconds}


class TestShardCountInvariance:
    @pytest.mark.parametrize("web_seed", SEEDS)
    @pytest.mark.parametrize("fault_name", ["none", "default", "uniform"])
    def test_merged_results_identical_one_vs_three_shards(
            self, context, webgraph, web_seed, fault_name):
        _, one = _run(context, webgraph, 1, web_seed, fault_name)
        driver, three = _run(context, webgraph, 3, web_seed, fault_name)
        assert one.pages_fetched >= MAX_PAGES
        assert driver.supersteps > 1
        assert _state(three) == _state(one)

    def test_forked_mode_matches_inline(self, context, webgraph):
        _, inline = _run(context, webgraph, 2, 21, "default")
        _, forked = _run(context, webgraph, 2, 21, "default",
                         processes=True)
        assert _state(forked) == _state(inline)

    def test_worker_pool_inside_shards_is_invisible(self, context,
                                                    webgraph):
        _, sequential = _run(context, webgraph, 2, 21, "default",
                             workers=1)
        _, pooled = _run(context, webgraph, 2, 21, "default", workers=2)
        assert _state(pooled) == _state(sequential)


class TestShardMetricsInvariance:
    def test_metrics_exports_identical_across_shard_counts(
            self, context, webgraph):
        exports = []
        for n_shards in (1, 3):
            driver, _ = _run(context, webgraph, n_shards, 17, "default",
                             metrics=True)
            assert driver.metrics is not None
            exports.append(driver.metrics.export_lines())
        assert exports[0] == exports[1]
        assert any('"crawl.pages_fetched"' in line
                   for line in exports[0])
        assert any('"crawl.supersteps"' in line for line in exports[0])

    def test_results_identical_with_metrics_on_vs_off(self, context,
                                                      webgraph):
        _, bare = _run(context, webgraph, 3, 17, "default")
        _, observed = _run(context, webgraph, 3, 17, "default",
                           metrics=True)
        assert _state(observed) == _state(bare)


class TestShardKillResume:
    def test_inline_kill_resume_byte_identical(self, context, webgraph,
                                               tmp_path):
        reference_path = tmp_path / "ref.json"
        _, reference = _run(context, webgraph, 2, 21, "uniform",
                            checkpoint_path=reference_path)

        class Killed(RuntimeError):
            pass

        def kill_switch(total_pages):
            if total_pages >= 60:
                raise Killed

        path = tmp_path / "cp.json"
        killed = ShardedCrawl(
            _factory(context, webgraph, 2, 21, "uniform"), 2, MAX_PAGES,
            host_quota=2, checkpoint_path=path)
        with pytest.raises(Killed):
            killed.run(list(context.seed_batch("second").urls),
                       barrier_callback=kill_switch)
        assert path.exists()

        resumed_driver = ShardedCrawl(
            _factory(context, webgraph, 2, 21, "uniform"), 2, MAX_PAGES,
            host_quota=2, checkpoint_path=path)
        resumed = resumed_driver.run(
            list(context.seed_batch("second").urls), resume=True)
        assert _state(resumed) == _state(reference)
        # The final collective checkpoints must match byte for byte.
        assert path.read_bytes() == reference_path.read_bytes()

    def test_forked_kill_one_shard_resumes_identical(
            self, context, webgraph, tmp_path):
        _, reference = _run(context, webgraph, 2, 21, "default")

        path = tmp_path / "cp.json"
        killed = ShardedCrawl(
            _factory(context, webgraph, 2, 21, "default"), 2, MAX_PAGES,
            host_quota=2, checkpoint_path=path, processes=True)

        def kill_one_child(total_pages):
            os.kill(killed.child_pids[0], signal.SIGKILL)
            time.sleep(0.05)

        with pytest.raises(ShardCrashed):
            killed.run(list(context.seed_batch("second").urls),
                       barrier_callback=kill_one_child)
        assert path.exists()

        resumed = ShardedCrawl(
            _factory(context, webgraph, 2, 21, "default"), 2, MAX_PAGES,
            host_quota=2, checkpoint_path=path, processes=True,
        ).run(list(context.seed_batch("second").urls), resume=True)
        assert _state(resumed) == _state(reference)


class TestShardGuards:
    def test_tracer_rejected_in_sharded_mode(self, context, webgraph):
        driver = ShardedCrawl(
            _factory(context, webgraph, 2, 6, "none", tracer=True),
            2, MAX_PAGES, host_quota=2)
        with pytest.raises(ValueError, match="tracing"):
            driver.run(list(context.seed_batch("second").urls))

    def test_online_learning_rejected_in_sharded_mode(self, context,
                                                      webgraph):
        driver = ShardedCrawl(
            _factory(context, webgraph, 2, 6, "none",
                     online_learning=True),
            2, MAX_PAGES, host_quota=2)
        with pytest.raises(ValueError, match="online_learning"):
            driver.run(list(context.seed_batch("second").urls))

    def test_resume_rejects_shard_count_mismatch(self, context,
                                                 webgraph, tmp_path):
        path = tmp_path / "cp.json"
        _run(context, webgraph, 2, 6, "none", checkpoint_path=path)
        assert path.exists()
        driver = ShardedCrawl(
            _factory(context, webgraph, 3, 6, "none"), 3, MAX_PAGES,
            host_quota=2, checkpoint_path=path)
        with pytest.raises(ValueError, match="shard"):
            driver.run(list(context.seed_batch("second").urls),
                       resume=True)

    def test_seed_routing_is_total(self, context, webgraph):
        """Every seed lands on exactly one shard at any N, so no page
        is lost or fetched twice when the topology changes."""
        urls = context.seed_batch("second").urls
        for n_shards in (1, 2, 5):
            from repro.web.urls import host_of, normalize
            owners = [shard_of(host_of(normalize(url)), n_shards)
                      for url in urls]
            assert all(0 <= owner < n_shards for owner in owners)
