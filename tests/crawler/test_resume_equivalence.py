"""Kill/resume equivalence: the headline robustness property.

A crawl killed at an arbitrary point and resumed from its last
checkpoint must reach the *same final state* as an uninterrupted run —
same corpus, same counters, same simulated clock — across seeds and
fault rates.  The crawl loop earns this by checkpointing only at batch
boundaries (no in-flight fetches) and by making every fetch outcome a
pure function of state the checkpoint captures.
"""

import pytest

from repro.crawler.checkpoint import ResumableCrawl
from repro.crawler.crawl import CrawlConfig, CrawlResult, FocusedCrawler
from repro.web.faults import FaultConfig
from repro.web.server import SimulatedWeb

MAX_PAGES = 120


class Killed(RuntimeError):
    """Stands in for SIGKILL: aborts the crawl mid-run."""


def _fingerprint(result: CrawlResult) -> dict:
    return {
        "pages_fetched": result.pages_fetched,
        "relevant": sorted(d.doc_id for d in result.relevant),
        "irrelevant": sorted(d.doc_id for d in result.irrelevant),
        "fetch_failures": result.fetch_failures,
        "failure_reasons": dict(result.failure_reasons),
        "retries": result.retries,
        "robots_denied": result.robots_denied,
        "filtered_out": result.filtered_out,
        "clock_seconds": result.clock_seconds,
        "stop_reason": result.stop_reason,
    }


def _make_crawler(context, webgraph, web_seed, fault_total):
    """Fresh web + crawler; every call builds independent objects so
    the killed and resumed runs share nothing in memory."""
    faults = (None if fault_total is None
              else FaultConfig.uniform(fault_total, seed=web_seed + 1))
    web = SimulatedWeb(webgraph, seed=web_seed, faults=faults)
    # Small batches so checkpoints (batch-boundary-only) actually
    # happen before the kill points below.
    return FocusedCrawler(web, context.pipeline.classifier,
                          context.build_filter_chain(),
                          CrawlConfig(max_pages=MAX_PAGES,
                                      batch_size=20))


# (web_seed, fault_total, kill_after_pages, checkpoint_every)
CASES = [
    (6, None, 60, 25),
    (21, 0.2, 55, 20),
    (33, 0.2, 50, 35),
    (47, 0.35, 70, 15),
]


class TestKillResumeEquivalence:
    @pytest.mark.parametrize("web_seed,fault_total,kill_after,every",
                             CASES)
    def test_resumed_run_matches_uninterrupted(
            self, context, webgraph, tmp_path,
            web_seed, fault_total, kill_after, every):
        seeds = context.seed_batch("second").urls

        # Reference: one uninterrupted run.
        reference = _make_crawler(context, webgraph, web_seed,
                                  fault_total).crawl(seeds)
        assert reference.pages_fetched > kill_after

        # Killed run: dies mid-crawl, after at least one checkpoint.
        path = tmp_path / "cp.json"
        killed = ResumableCrawl(
            _make_crawler(context, webgraph, web_seed, fault_total), path)

        def kill_switch(result):
            if result.pages_fetched >= kill_after:
                raise Killed

        with pytest.raises(Killed):
            killed.run(seeds, checkpoint_every=every,
                       page_callback=kill_switch)
        assert path.exists()

        # Resume with entirely fresh objects (a new process, in effect).
        resumed = ResumableCrawl(
            _make_crawler(context, webgraph, web_seed, fault_total),
            path).run(resume=True, checkpoint_every=every)

        assert _fingerprint(resumed) == _fingerprint(reference)

    def test_double_kill_still_converges(self, context, webgraph,
                                         tmp_path):
        """Two successive kills at different points change nothing."""
        seeds = context.seed_batch("second").urls
        reference = _make_crawler(context, webgraph, 21, 0.2).crawl(seeds)
        path = tmp_path / "cp.json"

        def killer_at(threshold):
            def kill_switch(result):
                if result.pages_fetched >= threshold:
                    raise Killed
            return kill_switch

        with pytest.raises(Killed):
            ResumableCrawl(_make_crawler(context, webgraph, 21, 0.2),
                           path).run(seeds, checkpoint_every=20,
                                     page_callback=killer_at(45))
        with pytest.raises(Killed):
            ResumableCrawl(_make_crawler(context, webgraph, 21, 0.2),
                           path).run(resume=True, checkpoint_every=20,
                                     page_callback=killer_at(85))
        resumed = ResumableCrawl(
            _make_crawler(context, webgraph, 21, 0.2), path).run(
                resume=True, checkpoint_every=20)
        assert _fingerprint(resumed) == _fingerprint(reference)
