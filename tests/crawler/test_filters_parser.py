"""Tests for the filter chain and page parsing."""

import pytest

from repro.crawler.filters import (
    FilterChain, FilterStats, LanguageFilter, LengthFilter, MimeFilter,
)
from repro.crawler.parser import extract_links, extract_title
from repro.nlp.language import default_identifier


@pytest.fixture(scope="module")
def chain():
    return FilterChain(MimeFilter(), LanguageFilter(default_identifier()),
                       LengthFilter(min_chars=50, max_chars=5000))


class TestFilters:
    def test_mime_accepts_html(self, chain):
        assert chain.mime.accept("<html><body>x</body></html>",
                                 "http://h/a.html", "text/html")

    def test_mime_rejects_mislabeled_pdf(self, chain):
        # Server says text/html, magic bytes say PDF.
        assert not chain.mime.accept("%PDF-1.4 ...", "http://h/a.html",
                                     "text/html")

    def test_language_filter(self, chain, medline_generator):
        assert chain.language.accept(medline_generator.document(0).text)
        assert not chain.language.accept(
            "Der Patient wurde nicht durch die Behandlung geheilt und "
            "die Ärzte waren jedoch zwischen den Untersuchungen müde.")

    def test_length_filter(self, chain):
        assert not chain.length.accept("too short")
        assert chain.length.accept("x" * 100)
        assert not chain.length.accept("x" * 10_000)

    def test_chain_accept_text_order(self, chain):
        ok, which = chain.accept_text("short english text but too short?")
        # Accepted by language, rejected by length.
        assert not ok and which == "length"

    def test_stats_accumulate(self):
        stats = FilterStats("mime")
        stats.record(True)
        stats.record(False)
        stats.record(False)
        assert stats.seen == 3
        assert stats.rejection_rate == pytest.approx(2 / 3)

    def test_attrition_report_keys(self, chain):
        report = chain.attrition_report()
        assert set(report) == {"mime", "language", "length"}


class TestParser:
    def test_extract_links_resolves_relative(self):
        html = '<html><body><a href="/x.html">x</a></body></html>'
        assert extract_links(html, "http://h.com/dir/page.html") == \
            ["http://h.com/x.html"]

    def test_extract_links_skips_schemes(self):
        html = ('<a href="javascript:void(0)">j</a>'
                '<a href="mailto:a@b.c">m</a>'
                '<a href="#top">t</a>'
                '<a href="http://ok.com/x">ok</a>')
        assert extract_links(html, "http://h.com/") == ["http://ok.com/x"]

    def test_extract_links_dedup(self):
        html = '<a href="http://x.com/a">1</a><a href="http://x.com/a">2</a>'
        assert len(extract_links(html, "http://h.com/")) == 1

    def test_extract_links_skips_self(self):
        html = '<a href="http://h.com/">self</a>'
        assert extract_links(html, "http://h.com/") == []

    def test_extract_title(self):
        assert extract_title(
            "<html><head><title> My Page </title></head></html>") == \
            "My Page"

    def test_extract_title_missing(self):
        assert extract_title("<html><body>x</body></html>") == ""

    def test_extract_links_from_malformed(self):
        html = "<html><body><a href=http://x.com/a>unquoted"
        assert extract_links(html, "http://h.com/") == ["http://x.com/a"]
