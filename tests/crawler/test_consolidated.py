"""Tests for consolidated crawling+IE and two-phase classification."""

import pytest

from repro.crawler.consolidated import (
    EntityAwareClassifier, TwoPhaseClassifier,
)


@pytest.fixture(scope="module")
def entity_aware(pipeline):
    return EntityAwareClassifier(pipeline.classifier,
                                 pipeline.dictionary_taggers,
                                 entity_weight=2.0)


class TestEntityAwareClassifier:
    def test_evidence_measures_density(self, entity_aware, pipeline):
        drug = pipeline.vocabulary.drugs[0].canonical
        disease = pipeline.vocabulary.diseases[0].canonical
        text = f"Patients took {drug} against {disease} yesterday."
        evidence = entity_aware.evidence(text)
        assert evidence.total > 0
        assert evidence.mentions_per_100_words["drug"] > 0

    def test_entity_evidence_raises_relevance(self, entity_aware,
                                              pipeline):
        fringe = ("The new big market improves each cheap game with "
                  "some local team in the sunny city.")
        drug = pipeline.vocabulary.drugs[1].canonical
        disease = pipeline.vocabulary.diseases[1].canonical
        enriched = fringe + f" {drug} treats {disease}."
        assert entity_aware.log_odds(enriched) > \
            entity_aware.log_odds(fringe)
        # The boost exceeds the base classifier's own shift.
        base_gain = (pipeline.classifier.log_odds(enriched)
                     - pipeline.classifier.log_odds(fringe))
        aware_gain = (entity_aware.log_odds(enriched)
                      - entity_aware.log_odds(fringe))
        assert aware_gain > base_gain

    def test_predict_interface(self, entity_aware, context):
        document = context.corpus_documents("medline")[0]
        assert entity_aware.predict(document.text) in (True, False)
        assert 0.0 <= entity_aware.probability(document.text) <= 1.0

    def test_pluggable_into_crawler(self, context, entity_aware):
        """A consolidated crawl is just a focused crawl with the
        entity-aware relevance function (the paper's single-framework
        vision)."""
        from repro.crawler.crawl import CrawlConfig, FocusedCrawler

        crawler = FocusedCrawler(context.web, entity_aware,
                                 context.build_filter_chain(),
                                 CrawlConfig(max_pages=120))
        result = crawler.crawl(context.seed_batch("second").urls)
        assert result.pages_fetched > 0
        assert result.relevant or result.irrelevant


class TestTwoPhaseClassifier:
    def test_crawl_phase_accepts_more(self, pipeline, context):
        two_phase = TwoPhaseClassifier(pipeline.classifier,
                                       crawl_threshold=0.1,
                                       corpus_threshold=0.95)
        texts = [d.text for d in context.corpus_documents("relevant")]
        texts += [d.text for d in context.corpus_documents("irrelevant")]
        accepted_phase1 = sum(two_phase.predict(t) for t in texts)
        accepted_strict = sum(
            pipeline.classifier.probability(t) >= 0.95 for t in texts)
        assert accepted_phase1 >= accepted_strict

    def test_reclassify_partitions(self, pipeline, context):
        two_phase = TwoPhaseClassifier(pipeline.classifier)
        documents = (context.corpus_documents("medline")[:5]
                     + context.corpus_documents("irrelevant")[:5])
        kept, demoted = two_phase.reclassify(documents)
        assert len(kept) + len(demoted) == len(documents)
        # Strict phase keeps mostly the biomedical documents.
        kept_biomedical = sum(d.meta.get("biomedical", False)
                              for d in kept)
        assert kept_biomedical >= len(kept) - 1
