"""Tests for the focused crawl loop."""

import pytest

from repro.crawler.crawl import CrawlConfig, FocusedCrawler


@pytest.fixture(scope="module")
def crawl_result(context):
    return context.crawl()


class TestCrawlOutcome:
    def test_fetches_pages(self, crawl_result):
        assert crawl_result.pages_fetched > 50

    def test_harvest_rate_in_paper_band(self, crawl_result):
        """The paper reports 38 %; typical focused crawlers 25-45 %."""
        assert 0.2 < crawl_result.harvest_rate < 0.7

    def test_download_rate_matches_paper(self, crawl_result):
        """3-4 documents/s due to filtering and classification."""
        assert 2.0 < crawl_result.download_rate < 7.0

    def test_filter_attrition_bands(self, crawl_result):
        attrition = crawl_result.filter_attrition
        assert 0.01 < attrition["mime"] < 0.25
        assert 0.05 < attrition["language"] < 0.30
        assert 0.05 < attrition["length"] < 0.35

    def test_relevant_docs_have_net_text(self, crawl_result):
        for document in crawl_result.relevant[:10]:
            assert document.text
            assert document.meta["relevant"] is True
            assert "<div" not in document.text

    def test_linkdb_populated(self, crawl_result):
        assert crawl_result.linkdb.n_edges > 100

    def test_biomedical_link_structure_navigational(self, crawl_result,
                                                    context):
        """Section 4.1: most outgoing links of biomedical pages are
        navigational (same host)."""
        graph = context.webgraph

        def is_bio(url):
            page = graph.page(url.split("?ref=r")[0])
            return bool(page and page.biomedical)
        fraction = crawl_result.linkdb.navigational_fraction(is_bio)
        assert fraction > 0.5


class TestCrawlMechanics:
    def test_robots_respected(self, context):
        crawler = FocusedCrawler(
            context.web, context.pipeline.classifier,
            context.build_filter_chain(),
            CrawlConfig(max_pages=150))
        restricted = [u for u, p in context.webgraph.pages.items()
                      if "/private/" in u]
        result = crawler.crawl(restricted[:20] or
                               list(context.webgraph.pages)[:20])
        if restricted:
            assert result.robots_denied >= 0  # counted, never crashes
            fetched_private = [d for d in
                               result.relevant + result.irrelevant
                               if "/private/" in d.doc_id]
            # Hosts with robots disallow must not appear.
            for document in fetched_private:
                host = document.doc_id.split("/")[2]
                robots = context.webgraph.host_robots(host)
                assert robots.allows(document.doc_id)

    def test_spider_trap_bounded(self, context):
        """A crawl seeded inside a trap must terminate."""
        trap_host = next((h for h, s in context.webgraph.hosts.items()
                          if s.kind == "trap"), None)
        if trap_host is None:
            pytest.skip("no trap host in graph")
        crawler = FocusedCrawler(
            context.web, context.pipeline.classifier,
            context.build_filter_chain(),
            CrawlConfig(max_pages=300, max_urls_per_host=50))
        result = crawler.crawl([f"http://{trap_host}/calendar?page=1"])
        assert result.pages_fetched <= 60

    def test_follow_irrelevant_steps_increases_coverage(self, context):
        seeds = context.seed_batch("first").urls
        stop = context.run_crawl(max_pages=400, seeds=seeds,
                                 follow_irrelevant_steps=0)
        follow = context.run_crawl(max_pages=400, seeds=seeds,
                                   follow_irrelevant_steps=1)
        assert follow.pages_fetched >= stop.pages_fetched

    def test_empty_seed_list(self, context):
        result = context.run_crawl(max_pages=10, seeds=[])
        assert result.pages_fetched == 0
        assert result.stop_reason == "frontier_empty"

    def test_page_budget_stops_crawl(self, context):
        result = context.run_crawl(max_pages=30)
        assert result.pages_fetched == 30
        assert result.stop_reason == "page_budget"
