"""Pool-attribution counters under asynchronous chunk completion.

The pipelined pool dispatches chunks with ``apply_async`` and drains
them later, so chunk *completions* can land in any order.  The
attribution counters are therefore incremented on the coordinator at
dispatch/drain time — points that the crawl schedule fully determines
— and must come out exact (pages submitted, chunks planned) no matter
how the worker processes interleave.  They stay volatile: pool shape
is physical execution detail and must never leak into the
deterministic export (docs/observability.md).
"""

from __future__ import annotations

import pytest

from repro.crawler.crawl import fork_start_available
from repro.crawler.parallel import (
    CrawlWorkerPool, ProcessingContext, adaptive_chunks,
)
from repro.html.boilerplate import BoilerplateDetector
from repro.obs.metrics import MetricsRegistry

pytestmark = pytest.mark.skipif(not fork_start_available(),
                                reason="needs fork start method")

BODY = ("<html><head><title>t</title></head><body>"
        + "<p>alpha beta gamma delta epsilon</p>" * 40
        + "</body></html>")


def _tasks(count: int):
    return [(index, f"http://host-{index % 5}.example/p{index}",
             BODY, "text/html") for index in range(count)]


def _pool(context, workers: int, metrics: MetricsRegistry,
          batch_hint: int = 25) -> CrawlWorkerPool:
    processing = ProcessingContext(boilerplate=BoilerplateDetector(),
                                   filters=context.build_filter_chain(),
                                   classifier=context.pipeline.classifier)
    return CrawlWorkerPool(workers, processing, metrics=metrics,
                           batch_hint=batch_hint)


class TestPoolAttributionCounters:
    def test_counters_exact_under_async_completion(self, context):
        metrics = MetricsRegistry()
        pool = _pool(context, workers=2, metrics=metrics)
        tasks = _tasks(53)
        try:
            for task in tasks:
                pool.submit(task)
            outcomes = pool.drain()
        finally:
            pool.close()
        assert len(outcomes) == len(tasks)
        expected_chunks = len(adaptive_chunks(
            [len(task[2]) for task in tasks], 2, 25))
        assert metrics.value_of("crawl.pool_pages") == len(tasks)
        assert metrics.value_of("crawl.pool_chunks") == expected_chunks
        assert metrics.value_of("crawl.pool_dispatches") == \
            expected_chunks
        assert metrics.value_of("crawl.pool_workers") == 2
        assert metrics.value_of("crawl.pool_wall_seconds") > 0

    def test_counters_accumulate_across_batches(self, context):
        metrics = MetricsRegistry()
        pool = _pool(context, workers=2, metrics=metrics)
        try:
            for _round in range(3):
                for task in _tasks(17):
                    pool.submit(task)
                assert len(pool.drain()) == 17
        finally:
            pool.close()
        assert metrics.value_of("crawl.pool_pages") == 3 * 17

    def test_pool_counters_stay_out_of_deterministic_export(
            self, context):
        metrics = MetricsRegistry()
        pool = _pool(context, workers=2, metrics=metrics)
        try:
            for task in _tasks(20):
                pool.submit(task)
            pool.drain()
        finally:
            pool.close()
        deterministic = "\n".join(metrics.export_lines())
        assert "pool_" not in deterministic
        volatile = metrics.to_dict(include_volatile=True)
        assert any(entry["name"] == "crawl.pool_pages"
                   for entry in volatile["metrics"])
