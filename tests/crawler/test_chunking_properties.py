"""Property tests for the adaptive chunk planner and shard hashing.

Hypothesis drives arbitrary body-size sequences and worker counts
through :func:`repro.crawler.parallel.adaptive_chunks` and checks the
invariants the crawl executor depends on: the partition is contiguous,
order-preserving, and covers every task exactly once; the streaming
:class:`ChunkPlanner` (what the pipelined pool actually runs) produces
the same boundaries as the batch function; chunk sizes respect the
planner's caps.  :func:`repro.crawler.shard.shard_of` must be a
stable, total assignment — the property that pins every host's state
to one shard at any topology.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crawler.parallel import ChunkPlanner, adaptive_chunks
from repro.crawler.shard import shard_of

sizes_strategy = st.lists(st.integers(min_value=0, max_value=400_000),
                          max_size=300)
workers_strategy = st.integers(min_value=1, max_value=12)
hint_strategy = st.one_of(st.none(),
                          st.integers(min_value=1, max_value=2_000))


class TestAdaptiveChunkPartition:
    @given(sizes=sizes_strategy, workers=workers_strategy,
           hint=hint_strategy)
    @settings(max_examples=200, deadline=None)
    def test_contiguous_order_preserving_exact_cover(
            self, sizes, workers, hint):
        bounds = adaptive_chunks(sizes, workers, hint)
        if not sizes:
            assert bounds == []
            return
        # Exact cover, in order, no gaps, no overlaps, no empty chunks.
        assert bounds[0][0] == 0
        assert bounds[-1][1] == len(sizes)
        for start, end in bounds:
            assert start < end
        for (_, prev_end), (start, _) in zip(bounds, bounds[1:]):
            assert start == prev_end

    @given(sizes=sizes_strategy, workers=workers_strategy,
           hint=hint_strategy)
    @settings(max_examples=200, deadline=None)
    def test_chunks_respect_page_and_byte_caps(self, sizes, workers,
                                               hint):
        planner = ChunkPlanner(workers, hint)
        for start, end in adaptive_chunks(sizes, workers, hint):
            pages = end - start
            assert pages <= planner.page_target
            # A chunk may only exceed the byte target by its final
            # (closing) task; every proper prefix stays under it.
            assert sum(sizes[start:end - 1]) < planner.byte_target

    @given(sizes=sizes_strategy, workers=workers_strategy,
           hint=hint_strategy)
    @settings(max_examples=200, deadline=None)
    def test_streaming_planner_matches_batch_function(
            self, sizes, workers, hint):
        planner = ChunkPlanner(workers, hint)
        bounds, start = [], 0
        for index, size in enumerate(sizes):
            if planner.add(size):
                bounds.append((start, index + 1))
                start = index + 1
        if start < len(sizes):
            bounds.append((start, len(sizes)))
        assert bounds == adaptive_chunks(sizes, workers, hint)

    @given(sizes=sizes_strategy, workers=workers_strategy,
           hint=hint_strategy)
    @settings(max_examples=100, deadline=None)
    def test_planner_is_deterministic(self, sizes, workers, hint):
        assert adaptive_chunks(sizes, workers, hint) == \
            adaptive_chunks(list(sizes), workers, hint)

    def test_page_target_bounds(self):
        assert ChunkPlanner(2, 40).page_target == 10
        assert ChunkPlanner(1, 4).page_target == ChunkPlanner.MIN_PAGES
        assert ChunkPlanner(1, 10_000).page_target == \
            ChunkPlanner.MAX_PAGES

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ChunkPlanner(0)


class TestShardAssignment:
    @given(host=st.text(max_size=60),
           n_shards=st.integers(min_value=1, max_value=64))
    @settings(max_examples=300, deadline=None)
    def test_stable_and_total(self, host, n_shards):
        owner = shard_of(host, n_shards)
        assert 0 <= owner < n_shards
        assert owner == shard_of(host, n_shards)

    @given(hosts=st.lists(st.text(min_size=1, max_size=30),
                          min_size=1, unique=True))
    @settings(max_examples=100, deadline=None)
    def test_single_shard_owns_everything(self, hosts):
        assert all(shard_of(host, 1) == 0 for host in hosts)

    def test_independent_of_hash_randomization(self):
        # Values pinned: a new interpreter (different PYTHONHASHSEED)
        # must route the same hosts to the same shards, or resume
        # would shatter.
        assert shard_of("medline-host-3.example", 5) == \
            shard_of("medline-host-3.example", 5)
        import pathlib
        import subprocess
        import sys

        import repro
        src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        code = (f"import sys; sys.path.insert(0, {src!r}); "
                "from repro.crawler.shard import shard_of; "
                "print(shard_of('medline-host-3.example', 5), "
                "shard_of('a', 7), shard_of('b', 7))")
        expected = (f"{shard_of('medline-host-3.example', 5)} "
                    f"{shard_of('a', 7)} {shard_of('b', 7)}")
        output = subprocess.run(
            [sys.executable, "-c", code], capture_output=True,
            text=True, env={"PYTHONHASHSEED": "123",
                            "PATH": "/usr/bin:/bin"}).stdout.strip()
        assert output == expected

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ValueError):
            shard_of("host", 0)
