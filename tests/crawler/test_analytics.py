"""Tests for post-crawl analytics and online learning."""

import pytest

from repro.annotations import Document
from repro.crawler.analytics import CrawlAnalytics, analyze_crawl
from repro.crawler.crawl import CrawlConfig, CrawlResult, FocusedCrawler


def _result():
    result = CrawlResult()
    for i in range(6):
        result.relevant.append(Document(
            f"http://bio.example.org/a{i}", "text",
            meta={"url": f"http://bio.example.org/a{i}", "depth": i % 3}))
    for i in range(4):
        result.irrelevant.append(Document(
            f"http://gen.example.com/b{i}", "text",
            meta={"url": f"http://gen.example.com/b{i}", "depth": 1}))
    result.relevant.append(Document(
        "http://gen.example.com/fringe", "text",
        meta={"url": "http://gen.example.com/fringe", "depth": 2}))
    return result


class TestAnalytics:
    def test_host_yields(self):
        analytics = analyze_crawl(_result())
        assert analytics.n_hosts == 2
        bio = analytics.host_yields["bio.example.org"]
        assert bio.relevant == 6 and bio.irrelevant == 0
        assert bio.harvest_rate == 1.0
        gen = analytics.host_yields["gen.example.com"]
        assert gen.harvest_rate == pytest.approx(1 / 5)

    def test_top_hosts_ranked(self):
        analytics = analyze_crawl(_result())
        top = analytics.top_hosts(k=2, min_fetched=1)
        assert top[0].host == "bio.example.org"

    def test_concentration(self):
        analytics = analyze_crawl(_result())
        assert analytics.single_host_concentration() == pytest.approx(6 / 7)

    def test_depth_histograms(self):
        analytics = analyze_crawl(_result())
        assert sum(analytics.depth_histogram.values()) == 11
        assert analytics.mean_relevant_depth() > 0

    def test_yield_by_depth(self):
        analytics = analyze_crawl(_result())
        rates = analytics.yield_by_depth()
        assert set(rates) == {0, 1, 2}
        assert all(0 <= v <= 1 for v in rates.values())

    def test_empty_result(self):
        analytics = analyze_crawl(CrawlResult())
        assert analytics.n_hosts == 0
        assert analytics.single_host_concentration() == 0.0
        assert analytics.mean_relevant_depth() == 0.0

    def test_on_real_crawl(self, context):
        analytics = analyze_crawl(context.crawl())
        assert analytics.n_hosts > 5
        # No single host dominates a healthy focused crawl.
        assert analytics.single_host_concentration() < 0.6


class TestOnlineLearning:
    def test_online_learning_updates_model(self, context):
        import copy

        classifier = copy.deepcopy(context.pipeline.classifier)
        vocab_before = len(classifier._vocabulary)
        crawler = FocusedCrawler(
            context.web, classifier, context.build_filter_chain(),
            CrawlConfig(max_pages=120, online_learning=True,
                        online_confidence=0.9))
        crawler.crawl(context.seed_batch("second").urls)
        assert len(classifier._vocabulary) > vocab_before

    def test_disabled_by_default(self, context):
        import copy

        classifier = copy.deepcopy(context.pipeline.classifier)
        counts_before = dict(classifier._class_docs)
        crawler = FocusedCrawler(
            context.web, classifier, context.build_filter_chain(),
            CrawlConfig(max_pages=60))
        crawler.crawl(context.seed_batch("second").urls)
        assert dict(classifier._class_docs) == counts_before
