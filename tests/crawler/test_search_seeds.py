"""Tests for simulated search engines and seed generation."""

import pytest

from repro.crawler.search import (
    QueryQuotaExceeded, SimulatedSearchEngine, build_search_engines,
)
from repro.crawler.seeds import PAPER_TERM_COUNTS, SeedGenerator


@pytest.fixture(scope="module")
def engines(webgraph):
    return build_search_engines(webgraph, result_limit=15)


@pytest.fixture(scope="module")
def generator(engines, webgraph):
    return SeedGenerator(engines, webgraph.vocabulary)


class TestSearchEngine:
    def test_specific_term_returns_articles(self, engines, webgraph):
        term = webgraph.vocabulary.diseases[0].canonical
        results = engines[0].query(term)
        if results:  # term must occur somewhere in the graph
            kinds = {webgraph.pages[u].kind for u in results}
            assert "article" in kinds

    def test_general_term_prefers_portals(self, engines, webgraph):
        results = engines[0].query("cancer")
        assert results
        top = webgraph.pages[results[0]]
        host = webgraph.hosts[top.host]
        assert top.kind == "front"
        assert host.kind in ("authority", "portal")

    def test_result_limit_respected(self, engines):
        for term in ("cancer", "therapy", "treatment"):
            assert len(engines[0].query(term)) <= engines[0].result_limit

    def test_multiword_query_requires_all_words(self, engines):
        results = engines[0].query("zzzz cancer")
        assert results == []

    def test_publisher_engine_restricted_to_its_hosts(self, engines,
                                                      webgraph):
        arxiv = next(e for e in engines if e.name == "arxiv")
        for term in ("cancer", "treatment"):
            for url in arxiv.query(term):
                assert "arxiv" in url

    def test_quota_enforced(self, webgraph):
        engine = SimulatedSearchEngine("tiny", webgraph, query_quota=2)
        engine.query("a")
        engine.query("b")
        with pytest.raises(QueryQuotaExceeded):
            engine.query("c")

    def test_five_engines(self, engines):
        assert len(engines) == 5
        assert {e.name for e in engines} == {
            "bing", "google", "arxiv", "nature", "nature-blogs"}


class TestSeedGeneration:
    def test_four_categories(self, generator):
        batch = generator.generate({"general": 3, "disease": 4,
                                    "drug": 4, "gene": 4})
        assert set(batch.terms_by_category) == {"general", "disease",
                                                "drug", "gene"}

    def test_urls_deduplicated(self, generator):
        batch = generator.generate({"disease": 10})
        assert len(batch.urls) == len(set(batch.urls))

    def test_second_round_larger_than_first(self, generator):
        first = generator.first_round(scale=20)
        second = generator.second_round(scale=20)
        total_first = sum(len(t) for t in first.terms_by_category.values())
        total_second = sum(len(t) for t in second.terms_by_category.values())
        assert total_second > total_first
        assert second.n_seeds >= first.n_seeds

    def test_table1_rows(self, generator):
        batch = generator.generate({"general": 3, "disease": 4,
                                    "drug": 2, "gene": 2})
        rows = batch.table1_rows()
        assert len(rows) == 4
        for _category, count, examples in rows:
            assert count >= 2
            assert examples

    def test_paper_term_counts_recorded(self):
        assert PAPER_TERM_COUNTS["gene"] == (6500, 246)
        assert PAPER_TERM_COUNTS["general"] == (500, 166)
