"""Sequential-vs-parallel crawl equivalence.

The parallel document stage must be invisible in every crawl output:
for any seed, fault preset, and kill/resume point, a crawl with
``parallel_workers=N`` produces byte-identical results to the
sequential loop — same corpus (documents, text, meta), same linkdb
edges, same counters and failure reasons, same filter attrition, same
frontier and crawler state, same simulated clock.  Only real
wall-clock time (and the ``stage_seconds`` observability) may differ.
"""

from __future__ import annotations

import warnings

import pytest

import repro.crawler.crawl as crawl_module
from repro.crawler.checkpoint import (
    ResumableCrawl, crawler_state_to_dict, frontier_to_dict,
    result_to_dict,
)
from repro.crawler.crawl import CrawlConfig, FocusedCrawler
from repro.crawler.frontier import CrawlDb
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.web.faults import FaultConfig
from repro.web.server import SimulatedClock, SimulatedWeb

MAX_PAGES = 90

#: (web_seed, fault preset builder) — ≥ 5 seeds × ≥ 2 fault presets.
SEEDS = [6, 17, 21, 33, 47]
FAULTS = {
    "none": lambda seed: None,
    "default": lambda seed: FaultConfig.preset("default", seed=seed + 1),
    "uniform": lambda seed: FaultConfig.uniform(0.25, seed=seed + 1),
}


def _make_crawler(context, webgraph, web_seed, faults, workers,
                  observed=False, **config_overrides):
    web = SimulatedWeb(webgraph, seed=web_seed, faults=faults)
    config = CrawlConfig(max_pages=MAX_PAGES, batch_size=25,
                         parallel_workers=workers, **config_overrides)
    clock = SimulatedClock()
    metrics = tracer = None
    if observed:
        metrics = MetricsRegistry()
        tracer = Tracer(clock=lambda: clock.now)
    return FocusedCrawler(web, context.pipeline.classifier,
                          context.build_filter_chain(), config,
                          clock=clock, metrics=metrics, tracer=tracer)


def _run(context, webgraph, web_seed, fault_name, workers):
    crawler = _make_crawler(context, webgraph, web_seed,
                            FAULTS[fault_name](web_seed), workers)
    frontier = CrawlDb(
        host_fetch_list_cap=crawler.config.host_fetch_list_cap,
        max_urls_per_host=crawler.config.max_urls_per_host)
    frontier.add_seeds(context.seed_batch("second").urls)
    result = crawler.crawl(frontier=frontier)
    return _state(crawler, frontier, result)


def _state(crawler, frontier, result) -> dict:
    """Everything deterministic a crawl run leaves behind.

    ``result_to_dict`` covers the corpus (doc ids, text, raw bodies,
    meta), linkdb edges, counters, failure reasons, and the
    deterministic stage_pages; ``stage_seconds`` is wall-clock
    observability and deliberately not part of it.
    """
    return {
        "result": result_to_dict(result),
        "attrition": result.filter_attrition,
        "frontier": frontier_to_dict(frontier),
        "crawler": crawler_state_to_dict(crawler),
        "clock": crawler.clock.now,
    }


class TestSequentialParallelEquivalence:
    @pytest.mark.parametrize("web_seed", SEEDS)
    @pytest.mark.parametrize("fault_name", ["none", "default", "uniform"])
    def test_byte_identical_across_seeds_and_faults(
            self, context, webgraph, web_seed, fault_name):
        sequential = _run(context, webgraph, web_seed, fault_name,
                          workers=1)
        parallel = _run(context, webgraph, web_seed, fault_name,
                        workers=3)
        assert parallel == sequential

    def test_documents_carry_title_and_text(self, context, webgraph):
        crawler = _make_crawler(context, webgraph, 6, None, workers=2)
        result = crawler.crawl(context.seed_batch("second").urls)
        assert result.relevant
        titled = [d for d in result.relevant if d.meta.get("title")]
        assert titled, "shared-parse title extraction produced no titles"
        assert all(d.text for d in result.relevant)

    def test_stage_pages_deterministic_and_consistent(
            self, context, webgraph):
        sequential = _make_crawler(context, webgraph, 17, None, 1).crawl(
            context.seed_batch("second").urls)
        parallel = _make_crawler(context, webgraph, 17, None, 3).crawl(
            context.seed_batch("second").urls)
        assert parallel.stage_pages == sequential.stage_pages
        pages = sequential.stage_pages
        assert pages["fetch"] == sequential.pages_fetched
        # Every transcodable page is parsed exactly once and segmented
        # exactly once.
        assert pages["parse"] == pages["boilerplate"]
        assert pages["classify"] == (len(sequential.relevant)
                                     + len(sequential.irrelevant))
        # Both modes measured time for every stage they counted.
        assert set(sequential.stage_seconds) == set(pages)
        assert set(parallel.stage_seconds) == set(pages)


class TestKillResumeWithWorkers:
    def test_killed_parallel_crawl_resumes_byte_identical(
            self, context, webgraph, tmp_path):
        """Kill a 2-worker crawl mid-run; resume with 2 workers; the
        final state must match an uninterrupted *sequential* run."""
        seeds = context.seed_batch("second").urls
        faults = FaultConfig.uniform(0.2, seed=22)
        reference = _make_crawler(
            context, webgraph, 21, faults, workers=1).crawl(seeds)
        assert reference.pages_fetched > 45

        class Killed(RuntimeError):
            pass

        def kill_switch(partial):
            if partial.pages_fetched >= 45:
                raise Killed

        path = tmp_path / "cp.json"
        killed = ResumableCrawl(
            _make_crawler(context, webgraph, 21,
                          FaultConfig.uniform(0.2, seed=22), workers=2),
            path)
        with pytest.raises(Killed):
            killed.run(seeds, checkpoint_every=20,
                       page_callback=kill_switch)
        assert path.exists()

        resumed = ResumableCrawl(
            _make_crawler(context, webgraph, 21,
                          FaultConfig.uniform(0.2, seed=22), workers=2),
            path).run(resume=True, checkpoint_every=20)
        assert result_to_dict(resumed) == result_to_dict(reference)


class TestObservabilityDeterminism:
    """Attaching the observability subsystem must be invisible in the
    crawl results, and its own exports must be byte-identical at any
    worker count and across kill+resume (docs/observability.md)."""

    def _observed_run(self, context, webgraph, workers):
        faults = FaultConfig.preset("default", seed=18)
        crawler = _make_crawler(context, webgraph, 17, faults, workers,
                                observed=True)
        result = crawler.crawl(context.seed_batch("second").urls)
        return crawler, result

    def test_exports_byte_identical_across_worker_counts(
            self, context, webgraph):
        exports = []
        for workers in (1, 2, 4):
            crawler, _ = self._observed_run(context, webgraph, workers)
            exports.append((crawler.metrics.export_lines(),
                            crawler.tracer.export_lines()))
        assert exports[0] == exports[1] == exports[2]
        metrics_lines, trace_lines = exports[0]
        assert any('"crawl.pages_fetched"' in line
                   for line in metrics_lines)
        assert any('"crawl.fetch"' in line for line in trace_lines)

    def test_results_identical_with_metrics_on_vs_off(
            self, context, webgraph):
        for workers in (1, 3):
            faults = FaultConfig.preset("default", seed=18)
            plain = _make_crawler(context, webgraph, 17, faults, workers)
            bare = plain.crawl(context.seed_batch("second").urls)
            _, observed = self._observed_run(context, webgraph, workers)
            assert result_to_dict(observed) == result_to_dict(bare)

    def test_kill_resume_exports_byte_identical(self, context, webgraph,
                                                tmp_path):
        reference, _ = self._observed_run(context, webgraph, workers=2)
        assert reference.metrics.value_of("crawl.pages_fetched") > 45

        class Killed(RuntimeError):
            pass

        def kill_switch(partial):
            if partial.pages_fetched >= 45:
                raise Killed

        faults = FaultConfig.preset("default", seed=18)
        path = tmp_path / "cp.json"
        killed = _make_crawler(context, webgraph, 17, faults, workers=2,
                               observed=True)
        with pytest.raises(Killed):
            ResumableCrawl(killed, path).run(
                context.seed_batch("second").urls, checkpoint_every=20,
                page_callback=kill_switch)
        assert path.exists()

        resumed_crawler = _make_crawler(context, webgraph, 17,
                                        FaultConfig.preset("default",
                                                           seed=18),
                                        workers=2, observed=True)
        ResumableCrawl(resumed_crawler, path).run(resume=True,
                                                  checkpoint_every=20)
        assert resumed_crawler.metrics.export_lines() == \
            reference.metrics.export_lines()
        assert resumed_crawler.tracer.export_lines() == \
            reference.tracer.export_lines()


class TestParallelModeGuards:
    def test_spawn_only_platform_falls_back_to_sequential(
            self, context, webgraph, monkeypatch):
        monkeypatch.setattr(crawl_module, "fork_start_available",
                            lambda: False)
        crawler = _make_crawler(context, webgraph, 6, None, workers=4)
        with pytest.warns(RuntimeWarning, match="fork"):
            fallback = crawler.crawl(context.seed_batch("second").urls)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sequential = _make_crawler(
                context, webgraph, 6, None, workers=1).crawl(
                    context.seed_batch("second").urls)
        assert result_to_dict(fallback) == result_to_dict(sequential)

    def test_online_learning_rejects_parallel_mode(self, context,
                                                   webgraph):
        import copy

        crawler = _make_crawler(context, webgraph, 6, None, workers=2,
                                online_learning=True)
        # The shared session classifier must not learn from this test.
        crawler.classifier = copy.deepcopy(crawler.classifier)
        with pytest.raises(ValueError, match="online_learning"):
            crawler.crawl(context.seed_batch("second").urls)

    def test_online_learning_still_works_sequentially(self, context,
                                                      webgraph):
        import copy

        crawler = _make_crawler(context, webgraph, 6, None, workers=1,
                                online_learning=True)
        crawler.classifier = copy.deepcopy(crawler.classifier)
        result = crawler.crawl(context.seed_batch("second").urls)
        assert result.pages_fetched > 0
