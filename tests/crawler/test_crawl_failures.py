"""Failure-path tests for the crawl loop."""

import pytest

from repro.crawler.crawl import CrawlConfig, FocusedCrawler
from repro.crawler.robust import BreakerConfig, RetryPolicy
from repro.web.faults import FaultConfig
from repro.web.server import SimulatedWeb


@pytest.fixture(scope="module")
def flaky_web(webgraph):
    """A web with heavy error injection."""
    return SimulatedWeb(webgraph, seed=99, error_rate=0.25,
                        timeout_rate=0.10, redirect_rate=0.10)


class TestFetchFailures:
    def test_failures_counted_not_fatal(self, flaky_web, context):
        crawler = FocusedCrawler(flaky_web, context.pipeline.classifier,
                                 context.build_filter_chain(),
                                 CrawlConfig(max_pages=150))
        result = crawler.crawl(context.seed_batch("second").urls)
        assert result.pages_fetched > 0
        assert result.fetch_failures > 0
        # Failed fetches never become corpus documents.
        assert (len(result.relevant) + len(result.irrelevant)
                + result.filtered_out + result.fetch_failures
                + result.robots_denied) <= result.pages_fetched + \
            result.robots_denied

    def test_redirect_targets_marked_seen(self, webgraph, context):
        always_redirect = SimulatedWeb(webgraph, seed=3, error_rate=0.0,
                                       timeout_rate=0.0,
                                       redirect_rate=1.0)
        crawler = FocusedCrawler(always_redirect,
                                 context.pipeline.classifier,
                                 context.build_filter_chain(),
                                 CrawlConfig(max_pages=60))
        result = crawler.crawl(context.seed_batch("second").urls)
        # Redirected documents carry their final (?ref=r) URL.
        assert any("?ref=r" in d.doc_id
                   for d in result.relevant + result.irrelevant)

    def test_clock_monotone_under_failures(self, flaky_web, context):
        crawler = FocusedCrawler(flaky_web, context.pipeline.classifier,
                                 context.build_filter_chain(),
                                 CrawlConfig(max_pages=80))
        result = crawler.crawl(context.seed_batch("second").urls)
        assert result.clock_seconds > 0

class TestFaultInjectedCrawl:
    """Acceptance criterion: with a 20 % per-fetch fault rate the crawl
    completes without raising and reports per-reason failure counts."""

    def test_survives_default_fault_preset(self, webgraph, context):
        web = SimulatedWeb(webgraph, seed=18,
                           faults=FaultConfig.preset("default", seed=18))
        crawler = FocusedCrawler(web, context.pipeline.classifier,
                                 context.build_filter_chain(),
                                 CrawlConfig(max_pages=200))
        result = crawler.crawl(context.seed_batch("second").urls)
        assert result.pages_fetched > 0
        assert len(result.relevant) > 0  # still harvests under faults
        assert result.fetch_failures > 0
        assert result.failure_reasons  # per-reason breakdown reported
        # circuit_open entries never reach the fetcher, so they are
        # reported by reason but excluded from fetch_failures.
        fetched = sum(count for reason, count
                      in result.failure_reasons.items()
                      if reason != "circuit_open")
        assert fetched == result.fetch_failures
        assert result.retries > 0  # transient faults were retried

    def test_retries_recover_transient_faults(self, webgraph, context):
        """With retries on, a faulty crawl loses fewer pages than the
        same crawl with retries disabled."""
        def run(max_attempts):
            web = SimulatedWeb(webgraph, seed=18,
                               faults=FaultConfig.uniform(0.3, seed=4))
            crawler = FocusedCrawler(
                web, context.pipeline.classifier,
                context.build_filter_chain(),
                CrawlConfig(max_pages=120,
                            retry=RetryPolicy(max_attempts=max_attempts)))
            return crawler.crawl(context.seed_batch("second").urls)

        with_retries = run(3)
        without = run(1)
        assert with_retries.retries > 0 and without.retries == 0
        failure_rate = (with_retries.fetch_failures
                        / with_retries.pages_fetched)
        baseline_rate = without.fetch_failures / without.pages_fetched
        assert failure_rate < baseline_rate

    def test_dead_hosts_get_quarantined(self, webgraph, context):
        web = SimulatedWeb(webgraph, seed=18,
                           faults=FaultConfig(seed=7,
                                              dead_host_fraction=0.4))
        crawler = FocusedCrawler(
            web, context.pipeline.classifier,
            context.build_filter_chain(),
            CrawlConfig(max_pages=200,
                        breaker=BreakerConfig(failure_threshold=2,
                                              cooldown=100_000.0)))
        result = crawler.crawl(context.seed_batch("second").urls)
        assert result.hosts_quarantined > 0
        assert result.failure_reasons.get("connect_failed", 0) > 0
        # Once a breaker opens, further URLs on that host are skipped
        # without fetching and recorded under their own reason code.
        assert result.failure_reasons.get("circuit_open", 0) > 0

    def test_breaker_skips_do_not_consume_page_budget(self, webgraph,
                                                      context):
        """circuit_open entries are recorded but never fetched, so they
        must not count toward pages_fetched."""
        web = SimulatedWeb(webgraph, seed=18,
                           faults=FaultConfig(seed=7,
                                              dead_host_fraction=1.0))
        crawler = FocusedCrawler(
            web, context.pipeline.classifier,
            context.build_filter_chain(),
            CrawlConfig(max_pages=40,
                        retry=RetryPolicy(max_attempts=1),
                        breaker=BreakerConfig(failure_threshold=1,
                                              cooldown=100_000.0)))
        result = crawler.crawl(context.seed_batch("second").urls)
        fetched_reasons = sum(count for reason, count
                              in result.failure_reasons.items()
                              if reason != "circuit_open")
        assert result.pages_fetched == fetched_reasons

    def test_politeness_delay_spacing(self, context):
        """Two requests to the same host are spaced by at least the
        politeness delay on the simulated clock."""
        from repro.web.server import SimulatedClock

        clock = SimulatedClock()
        crawler = FocusedCrawler(context.web,
                                 context.pipeline.classifier,
                                 context.build_filter_chain(),
                                 CrawlConfig(max_pages=5,
                                             politeness_delay=2.0,
                                             batch_size=30),
                                 clock=clock)
        host = next(h for h, s in context.webgraph.hosts.items()
                    if s.n_pages >= 5 and s.kind == "site")
        urls = [u for u in context.webgraph.pages
                if u.startswith(f"http://{host}/articles")][:5]
        result = crawler.crawl(urls)
        # 5 same-host fetches with 2 s politeness => >= ~8 s clock.
        assert result.clock_seconds >= 2.0 * (result.pages_fetched - 1) \
            * 0.9
