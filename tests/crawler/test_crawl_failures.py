"""Failure-path tests for the crawl loop."""

import pytest

from repro.crawler.crawl import CrawlConfig, FocusedCrawler
from repro.web.server import SimulatedWeb


@pytest.fixture(scope="module")
def flaky_web(webgraph):
    """A web with heavy error injection."""
    return SimulatedWeb(webgraph, seed=99, error_rate=0.25,
                        timeout_rate=0.10, redirect_rate=0.10)


class TestFetchFailures:
    def test_failures_counted_not_fatal(self, flaky_web, context):
        crawler = FocusedCrawler(flaky_web, context.pipeline.classifier,
                                 context.build_filter_chain(),
                                 CrawlConfig(max_pages=150))
        result = crawler.crawl(context.seed_batch("second").urls)
        assert result.pages_fetched > 0
        assert result.fetch_failures > 0
        # Failed fetches never become corpus documents.
        assert (len(result.relevant) + len(result.irrelevant)
                + result.filtered_out + result.fetch_failures
                + result.robots_denied) <= result.pages_fetched + \
            result.robots_denied

    def test_redirect_targets_marked_seen(self, webgraph, context):
        always_redirect = SimulatedWeb(webgraph, seed=3, error_rate=0.0,
                                       timeout_rate=0.0,
                                       redirect_rate=1.0)
        crawler = FocusedCrawler(always_redirect,
                                 context.pipeline.classifier,
                                 context.build_filter_chain(),
                                 CrawlConfig(max_pages=60))
        result = crawler.crawl(context.seed_batch("second").urls)
        # Redirected documents carry their final (?ref=r) URL.
        assert any("?ref=r" in d.doc_id
                   for d in result.relevant + result.irrelevant)

    def test_clock_monotone_under_failures(self, flaky_web, context):
        crawler = FocusedCrawler(flaky_web, context.pipeline.classifier,
                                 context.build_filter_chain(),
                                 CrawlConfig(max_pages=80))
        result = crawler.crawl(context.seed_batch("second").urls)
        assert result.clock_seconds > 0

    def test_politeness_delay_spacing(self, context):
        """Two requests to the same host are spaced by at least the
        politeness delay on the simulated clock."""
        from repro.web.server import SimulatedClock

        clock = SimulatedClock()
        crawler = FocusedCrawler(context.web,
                                 context.pipeline.classifier,
                                 context.build_filter_chain(),
                                 CrawlConfig(max_pages=5,
                                             politeness_delay=2.0,
                                             batch_size=30),
                                 clock=clock)
        host = next(h for h, s in context.webgraph.hosts.items()
                    if s.n_pages >= 5 and s.kind == "site")
        urls = [u for u in context.webgraph.pages
                if u.startswith(f"http://{host}/articles")][:5]
        result = crawler.crawl(urls)
        # 5 same-host fetches with 2 s politeness => >= ~8 s clock.
        assert result.clock_seconds >= 2.0 * (result.pages_fetched - 1) \
            * 0.9
