"""Tests for the CrawlDB frontier."""

from repro.crawler.frontier import CrawlDb


class TestAdd:
    def test_add_and_dequeue(self):
        frontier = CrawlDb()
        assert frontier.add("http://a.com/x")
        assert len(frontier) == 1
        batch = frontier.next_batch(10)
        assert [e.url for e in batch] == ["http://a.com/x"]
        assert frontier.is_empty()

    def test_dedup(self):
        frontier = CrawlDb()
        assert frontier.add("http://a.com/x")
        assert not frontier.add("http://a.com/x")
        assert not frontier.add("http://A.com/x#frag")  # normalizes equal
        assert len(frontier) == 1

    def test_seen_survives_dequeue(self):
        frontier = CrawlDb()
        frontier.add("http://a.com/x")
        frontier.next_batch(1)
        assert not frontier.add("http://a.com/x")

    def test_mark_seen(self):
        frontier = CrawlDb()
        frontier.mark_seen("http://a.com/redirected")
        assert not frontier.add("http://a.com/redirected")

    def test_invalid_url_rejected(self):
        assert not CrawlDb().add("not-a-url")

    def test_add_seeds_counts(self):
        frontier = CrawlDb()
        accepted = frontier.add_seeds(["http://a.com/1", "http://a.com/1",
                                       "http://b.com/2"])
        assert accepted == 2

    def test_depth_and_steps_stored(self):
        frontier = CrawlDb()
        frontier.add("http://a.com/x", depth=3, irrelevant_steps=1)
        entry = frontier.next_batch(1)[0]
        assert entry.depth == 3
        assert entry.irrelevant_steps == 1


class TestHostBudget:
    def test_per_host_url_cap_bounds_traps(self):
        frontier = CrawlDb(max_urls_per_host=5)
        for i in range(20):
            frontier.add(f"http://trap.com/calendar?page={i}")
        assert len(frontier) == 5
        assert frontier.dropped_host_cap == 15

    def test_batch_host_fetch_cap(self):
        frontier = CrawlDb(host_fetch_list_cap=3)
        for i in range(10):
            frontier.add(f"http://one.com/{i}")
        batch = frontier.next_batch(10)
        assert len(batch) == 3  # only 3 per host per batch

    def test_round_robin_over_hosts(self):
        frontier = CrawlDb(host_fetch_list_cap=2)
        for host in ("a.com", "b.com", "c.com"):
            for i in range(5):
                frontier.add(f"http://{host}/{i}")
        batch = frontier.next_batch(6)
        hosts = {e.url.split("/")[2] for e in batch}
        assert hosts == {"a.com", "b.com", "c.com"}

    def test_hosts_listing(self):
        frontier = CrawlDb()
        frontier.add("http://a.com/1")
        frontier.add("http://b.com/2")
        assert set(frontier.hosts()) == {"a.com", "b.com"}
