"""Tests for LinkDB and PageRank."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crawler.linkdb import LinkDb
from repro.crawler.pagerank import pagerank, top_ranked


class TestLinkDb:
    def test_edges_and_counts(self):
        db = LinkDb()
        db.add_edges("http://a.com/1", ["http://b.com/1", "http://a.com/2"])
        assert db.n_edges == 2
        assert db.n_pages == 3
        assert db.inlink_counts["http://b.com/1"] == 1

    def test_navigational_fraction(self):
        db = LinkDb()
        db.add_edges("http://a.com/1", ["http://a.com/2", "http://a.com/3",
                                        "http://b.com/1"])
        assert db.navigational_fraction() == pytest.approx(2 / 3)

    def test_navigational_fraction_filter(self):
        db = LinkDb()
        db.add_edges("http://bio.com/1", ["http://bio.com/2"])
        db.add_edges("http://gen.com/1", ["http://other.com/1"])
        fraction = db.navigational_fraction(
            source_filter=lambda url: "bio" in url)
        assert fraction == 1.0

    def test_domain_graph_aggregates(self):
        db = LinkDb()
        db.add_edges("http://x.a.com/1", ["http://y.b.com/1",
                                          "http://z.b.com/2"])
        graph = db.domain_graph()
        assert graph["a.com"]["b.com"] == 2

    def test_out_degree_distribution(self):
        db = LinkDb()
        db.add_edges("s1", ["t1", "t2", "t3"])
        db.add_edges("s2", ["t1"])
        assert db.out_degree_distribution() == [3, 1]


class TestPageRank:
    def test_empty_graph(self):
        assert pagerank({}) == {}

    def test_ranks_sum_to_one(self):
        graph = {"a": {"b": 1}, "b": {"c": 1}, "c": {"a": 1}}
        ranks = pagerank(graph)
        assert sum(ranks.values()) == pytest.approx(1.0)

    def test_symmetric_cycle_uniform(self):
        graph = {"a": {"b": 1}, "b": {"c": 1}, "c": {"a": 1}}
        ranks = pagerank(graph)
        for value in ranks.values():
            assert value == pytest.approx(1 / 3)

    def test_authority_ranks_highest(self):
        graph = {"a": {"hub": 1}, "b": {"hub": 1}, "c": {"hub": 1},
                 "hub": {"a": 1}}
        ranks = pagerank(graph)
        assert ranks["hub"] == max(ranks.values())

    def test_dangling_mass_redistributed(self):
        graph = {"a": {"sink": 1}, "sink": {}}
        ranks = pagerank(graph)
        assert sum(ranks.values()) == pytest.approx(1.0)

    def test_weights_matter(self):
        graph = {"s": {"heavy": 9, "light": 1}}
        ranks = pagerank(graph)
        assert ranks["heavy"] > ranks["light"]

    def test_top_ranked_order_and_size(self):
        graph = {"a": {"b": 5}, "c": {"b": 5}, "b": {"a": 1}}
        top = top_ranked(graph, k=2)
        assert len(top) == 2
        assert top[0][0] == "b"

    @given(st.dictionaries(
        st.sampled_from("abcdef"),
        st.dictionaries(st.sampled_from("abcdef"),
                        st.integers(min_value=1, max_value=5), max_size=4),
        min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_property_ranks_form_distribution(self, graph):
        ranks = pagerank(graph)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)
        assert all(value > 0 for value in ranks.values())
