"""Incremental recrawl: change detection, scheduling, and replay.

The guarantees under test:

* **Replay is invisible.**  A warm recrawl round over an unchanged
  web (churn 0) produces a corpus byte-identical to its cold round
  while fetching bodies it already knows and replaying every stored
  outcome (no reparse, no reclassify).
* **Warm equals cold under churn.**  With change detection keyed on
  *exact* content, a warm round over an evolved web produces the same
  corpus as a cold crawl of that same epoch (no scheduler skips, no
  faults — the two knobs that intentionally trade freshness/clock for
  cost).
* **Topology invariance survives rounds.**  Multi-round results and
  metric exports are byte-identical at any worker count and any shard
  count, including kill+resume mid-round.
"""

from __future__ import annotations

import pytest

from repro.crawler.checkpoint import (
    crawler_state_to_dict, result_to_dict,
)
from repro.crawler.crawl import CrawlConfig, FocusedCrawler
from repro.crawler.recrawl import (
    IncrementalCrawl, PageMemory, PageRecord, RecrawlScheduler,
    SchedulerConfig, content_fingerprint, near_unchanged,
    revision_signature,
)
from repro.crawler.shard import ShardCrawler, ShardedCrawl
from repro.obs.metrics import MetricsRegistry
from repro.web.server import SimulatedClock, SimulatedWeb

MAX_PAGES = 80


# -- unit level ----------------------------------------------------------------

class TestChangeDetection:
    def test_fingerprint_is_content_addressed(self):
        assert content_fingerprint("abc") == content_fingerprint("abc")
        assert content_fingerprint("abc") != content_fingerprint("abd")

    def test_minor_edit_is_near_unchanged(self):
        text = " ".join(f"word{i}" for i in range(120))
        edited = text.replace("word5 word6", "word6 word5")
        old = revision_signature(text)
        assert near_unchanged(old, revision_signature(edited))
        assert not near_unchanged(old, revision_signature(
            " ".join(f"other{i}" for i in range(120))))

    def test_missing_or_mismatched_signature_is_changed(self):
        sig = revision_signature("some words here")
        assert not near_unchanged(None, sig)
        assert not near_unchanged(sig[:4], sig)


class TestScheduler:
    def test_new_hosts_are_always_due(self):
        scheduler = RecrawlScheduler()
        assert scheduler.due("never-seen.example.org")

    def test_stable_host_backs_off_and_change_snaps_back(self):
        config = SchedulerConfig(min_interval=1, max_interval=8,
                                 backoff=2)
        scheduler = RecrawlScheduler(config)
        scheduler.observe("h.org", changed=False)
        scheduler.begin_round(1)
        # Interval grew to 2 (+ jitter in {0, 1}): not due for at
        # least one round after the observation round.
        assert not scheduler.due("h.org")
        interval = scheduler._intervals["h.org"]
        assert interval == 2
        scheduler.observe("h.org", changed=True)
        scheduler.begin_round(2)
        assert scheduler._intervals["h.org"] == config.min_interval

    def test_round_may_not_move_backwards(self):
        scheduler = RecrawlScheduler()
        scheduler.begin_round(3)
        with pytest.raises(ValueError, match="backwards"):
            scheduler.begin_round(2)

    def test_state_round_trip(self):
        scheduler = RecrawlScheduler(seed=5)
        for host, changed in (("a.org", True), ("b.org", False)):
            scheduler.observe(host, changed)
        scheduler.begin_round(1)
        scheduler.observe("b.org", changed=False)
        restored = RecrawlScheduler(seed=5)
        restored.load_state(scheduler.state_dict())
        assert restored.state_dict() == scheduler.state_dict()
        restored.begin_round(2)
        scheduler.begin_round(2)
        assert restored.state_dict() == scheduler.state_dict()


class TestPageMemory:
    def _record(self) -> PageRecord:
        body = "gene alpha inhibits disease beta in trials"
        return PageRecord(
            final_url="http://h.org/p", version=2,
            fingerprint=content_fingerprint(body),
            signature=revision_signature(body),
            outcome=(True, True, "net", "t", ("http://h.org/q",),
                     "", True, {}),
            body=body, content_type="text/html", last_round=1)

    def test_round_trip(self):
        memory = PageMemory(context_key="k1")
        memory.put("http://h.org/p", self._record())
        restored = PageMemory(context_key="k1")
        restored.load_dict(memory.to_dict())
        assert restored.to_dict() == memory.to_dict()
        record = restored.get("http://h.org/p")
        assert record.outcome == self._record().outcome
        assert record.signature == self._record().signature

    def test_context_key_mismatch_refused(self):
        memory = PageMemory(context_key="pipeline-a")
        payload = memory.to_dict()
        other = PageMemory(context_key="pipeline-b")
        with pytest.raises(ValueError, match="different pipeline"):
            other.load_dict(payload)


# -- crawl integration ---------------------------------------------------------

def _crawler(context, webgraph, *, churn=0.0, workers=1, memory=True,
             scheduler=None, metrics=False, web_seed=11):
    web = SimulatedWeb(webgraph, seed=web_seed, churn_rate=churn)
    config = CrawlConfig(max_pages=MAX_PAGES, batch_size=25,
                         parallel_workers=workers)
    return FocusedCrawler(
        web, context.pipeline.classifier, context.build_filter_chain(),
        config, clock=SimulatedClock(),
        metrics=MetricsRegistry() if metrics else None,
        memory=PageMemory() if memory else None,
        scheduler=scheduler)


def _corpus(result) -> dict:
    """The change-sensitive slice of a crawl result: documents,
    link graph, classification counts (no clock, no stage timings —
    replay is *supposed* to collapse those)."""
    payload = result_to_dict(result)
    return {key: payload[key]
            for key in ("relevant", "irrelevant", "outlinks",
                        "failure_reasons")}


class TestReplay:
    def test_churn_zero_round_replays_everything(self, context,
                                                 webgraph):
        crawler = _crawler(context, webgraph, churn=0.0)
        seeds = context.seed_batch("second").urls
        driver = IncrementalCrawl(crawler, rounds=2)
        final = driver.run(list(seeds))
        cold, warm = driver.round_reports
        assert cold["replay_hits"] == 0
        assert warm["replay_hits"] > 0
        # Static web: every successfully visited page replays; only
        # pages that failed in round 0 (never stored) refetch-and-fail
        # again.  Nothing reprocesses.
        assert warm["pages_changed"] == 0
        assert warm["replay_hits"] == (warm["pages_fetched"]
                                       + warm["fetches_skipped"]
                                       - final.fetch_failures)
        assert final.stage_pages.get("parse", 0) == 0
        assert final.stage_pages["replay"] == warm["replay_hits"]

    def test_warm_round_corpus_matches_cold_crawl_of_same_epoch(
            self, context, webgraph):
        """Replay keyed on exact content ⇒ a warm recrawl of epoch 1
        equals a cold crawl of epoch 1 (every host due, no faults)."""
        seeds = list(context.seed_batch("second").urls)
        warm_crawler = _crawler(context, webgraph, churn=0.3)
        driver = IncrementalCrawl(warm_crawler, rounds=2)
        warm = driver.run(seeds)
        assert warm.replay_hits > 0, "churn 0.3 should leave replays"
        assert warm.pages_changed > 0, "churn 0.3 should change pages"
        cold_crawler = _crawler(context, webgraph, churn=0.3,
                                memory=False)
        cold_crawler.begin_round(1)
        cold = cold_crawler.crawl(seeds)
        assert _corpus(warm) == _corpus(cold)

    def test_worker_count_invariant_across_rounds(self, context,
                                                  webgraph):
        outputs = []
        for workers in (1, 3):
            crawler = _crawler(context, webgraph, churn=0.2,
                               workers=workers, metrics=True)
            driver = IncrementalCrawl(crawler, rounds=3)
            result = driver.run(list(context.seed_batch("second").urls))
            outputs.append({
                "result": result_to_dict(result),
                "rounds": driver.round_reports,
                "crawler": crawler_state_to_dict(crawler),
                "metrics": crawler.metrics.export_lines(),
            })
        assert outputs[0] == outputs[1]

    def test_scheduler_skips_not_due_hosts(self, context, webgraph):
        scheduler = RecrawlScheduler(
            SchedulerConfig(min_interval=2, max_interval=8), seed=3)
        crawler = _crawler(context, webgraph, churn=0.0,
                           scheduler=scheduler)
        # Hosts are first *observed* (stable) in round 1 — the first
        # revisit — so the backoff starts skipping in round 2.
        driver = IncrementalCrawl(crawler, rounds=3)
        final = driver.run(list(context.seed_batch("second").urls))
        warm = driver.round_reports[2]
        assert warm["fetches_skipped"] > 0
        assert final.fetches_skipped == warm["fetches_skipped"]
        # Skipped visits replay without touching the network, so the
        # round's clock cost collapses with its fetch count.
        assert warm["clock_seconds"] < driver.round_reports[0][
            "clock_seconds"]


class TestKillResumeMidRound:
    def test_resume_mid_warm_round_is_byte_identical(
            self, context, webgraph, tmp_path):
        seeds = list(context.seed_batch("second").urls)

        def run(path, kill_at=None):
            crawler = _crawler(context, webgraph, churn=0.2,
                               metrics=True)
            driver = IncrementalCrawl(crawler, rounds=2,
                                      checkpoint_path=path,
                                      checkpoint_every=20)

            class Killed(RuntimeError):
                pass

            def kill_switch(partial):
                if (crawler.round == 1 and kill_at is not None
                        and partial.pages_visited >= kill_at):
                    raise Killed

            try:
                result = driver.run(seeds, page_callback=kill_switch)
            except Killed:
                result = None
                driver = IncrementalCrawl(crawler_for_resume(path),
                                          rounds=2,
                                          checkpoint_path=path,
                                          checkpoint_every=20)
                result = driver.run(seeds, resume=True)
            return result, driver

        def crawler_for_resume(path):
            return _crawler(context, webgraph, churn=0.2, metrics=True)

        reference, _ = run(tmp_path / "ref.json")
        resumed, _ = run(tmp_path / "resumed.json", kill_at=30)
        assert result_to_dict(resumed) == result_to_dict(reference)
        assert ((tmp_path / "resumed.json").read_bytes()
                == (tmp_path / "ref.json").read_bytes())


class TestShardedRounds:
    def _run(self, context, webgraph, n_shards, checkpoint=None,
             barrier_callback=None, resume=False):
        def factory(shard_id: int) -> ShardCrawler:
            web = SimulatedWeb(webgraph, seed=11, churn_rate=0.2)
            config = CrawlConfig(max_pages=MAX_PAGES, batch_size=25)
            return ShardCrawler(
                shard_id, n_shards, web, context.pipeline.classifier,
                context.build_filter_chain(), config,
                clock=SimulatedClock(), metrics=MetricsRegistry(),
                memory=PageMemory(),
                scheduler=RecrawlScheduler(seed=3))

        driver = ShardedCrawl(factory, n_shards, MAX_PAGES,
                              host_quota=2, rounds=3,
                              checkpoint_path=checkpoint,
                              checkpoint_every=1 if checkpoint else 0)
        result = driver.run(list(context.seed_batch("second").urls),
                            resume=resume,
                            barrier_callback=barrier_callback)
        return result, driver

    def test_shard_count_invariant_across_rounds(self, context,
                                                 webgraph):
        states = []
        for n_shards in (1, 3):
            result, driver = self._run(context, webgraph, n_shards)
            states.append({
                "result": result_to_dict(result),
                "rounds": driver.round_reports,
                "metrics": driver.metrics.export_lines(),
            })
        assert states[0] == states[1]
        assert states[0]["rounds"][1]["replay_hits"] > 0

    def test_kill_resume_mid_round_sharded(self, context, webgraph,
                                           tmp_path):
        reference, ref_driver = self._run(
            context, webgraph, 2, checkpoint=tmp_path / "ref.json")

        class Killed(RuntimeError):
            pass

        barriers = {"count": 0}

        def kill(total):
            barriers["count"] += 1
            # Late enough to land inside a warm round.
            if barriers["count"] == ref_driver.supersteps - 1:
                raise Killed

        path = tmp_path / "cp.json"
        with pytest.raises(Killed):
            self._run(context, webgraph, 2, checkpoint=path,
                      barrier_callback=kill)
        resumed, driver = self._run(context, webgraph, 2,
                                    checkpoint=path, resume=True)
        assert result_to_dict(resumed) == result_to_dict(reference)
        assert driver.metrics.export_lines() \
            == ref_driver.metrics.export_lines()
        assert path.read_bytes() == (tmp_path / "ref.json").read_bytes()

    def test_resume_of_finished_crawl_rebuilds_result(
            self, context, webgraph, tmp_path):
        path = tmp_path / "cp.json"
        reference, _ = self._run(context, webgraph, 2, checkpoint=path)
        rebuilt, driver = self._run(context, webgraph, 2,
                                    checkpoint=path, resume=True)
        assert result_to_dict(rebuilt) == result_to_dict(reference)
        assert rebuilt.stop_reason == reference.stop_reason

    def test_multi_round_requires_seeds(self, context, webgraph):
        driver = ShardedCrawl(lambda sid: None, 1, 10, rounds=2)
        with pytest.raises(ValueError, match="seeds"):
            driver.run(None)
