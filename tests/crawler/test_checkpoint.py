"""Tests for crawl checkpointing and resumption."""

import pytest

from repro.crawler.checkpoint import (
    ResumableCrawl, frontier_from_dict, frontier_to_dict,
    load_checkpoint, save_checkpoint,
)
from repro.crawler.crawl import CrawlConfig, CrawlResult, FocusedCrawler
from repro.crawler.frontier import CrawlDb


class TestFrontierSerialization:
    def test_round_trip(self):
        frontier = CrawlDb(host_fetch_list_cap=7, max_urls_per_host=9)
        frontier.add("http://a.com/1", depth=1)
        frontier.add("http://b.com/2", depth=2, irrelevant_steps=1)
        frontier.mark_seen("http://c.com/seen")
        restored = frontier_from_dict(frontier_to_dict(frontier))
        assert len(restored) == len(frontier)
        assert restored.host_fetch_list_cap == 7
        assert not restored.add("http://c.com/seen")  # seen preserved
        entries = restored.next_batch(10)
        assert {e.url for e in entries} == {"http://a.com/1",
                                            "http://b.com/2"}
        by_url = {e.url: e for e in entries}
        assert by_url["http://b.com/2"].irrelevant_steps == 1


class TestCheckpointFile:
    def test_save_and_load(self, tmp_path):
        frontier = CrawlDb()
        frontier.add("http://a.com/1")
        result = CrawlResult(pages_fetched=5, stop_reason="leg_budget")
        result.linkdb.add_edges("http://a.com/1", ["http://b.com/2"])
        path = save_checkpoint(tmp_path / "cp.json", frontier, result,
                               clock_now=12.5)
        restored_frontier, restored_result, clock = load_checkpoint(path)
        assert clock == 12.5
        assert len(restored_frontier) == 1
        assert restored_result.pages_fetched == 5
        assert restored_result.linkdb.n_edges == 1

    def test_version_guard(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)


class TestResumableCrawl:
    def _crawler(self, context):
        return FocusedCrawler(context.web, context.pipeline.classifier,
                              context.build_filter_chain(),
                              CrawlConfig(max_pages=10_000))

    def test_legs_accumulate(self, context, tmp_path):
        seeds = context.seed_batch("second").urls
        resumable = ResumableCrawl(self._crawler(context),
                                   tmp_path / "crawl.json")
        leg1 = resumable.run_leg(seeds, leg_pages=60)
        assert leg1.pages_fetched >= 50
        leg2 = resumable.run_leg(None, leg_pages=60)
        assert leg2.pages_fetched > leg1.pages_fetched
        # Counters continue, documents accumulate, clock advances.
        assert len(leg2.relevant) >= len(leg1.relevant)
        assert leg2.clock_seconds > leg1.clock_seconds

    def test_resume_equals_uninterrupted(self, context, tmp_path):
        """Two 60-page legs visit the same pages as one 120-page run."""
        seeds = context.seed_batch("second").urls
        resumable = ResumableCrawl(self._crawler(context),
                                   tmp_path / "cp.json")
        resumable.run_leg(seeds, leg_pages=60)
        legged = resumable.run_leg(None, leg_pages=60)
        straight = self._crawler(context)
        straight.config.max_pages = 120
        uninterrupted = straight.crawl(seeds)
        legged_urls = {d.doc_id for d in legged.relevant}
        straight_urls = {d.doc_id for d in uninterrupted.relevant}
        overlap = len(legged_urls & straight_urls)
        assert overlap >= 0.8 * min(len(legged_urls), len(straight_urls))

    def test_first_leg_requires_seeds(self, context, tmp_path):
        resumable = ResumableCrawl(self._crawler(context),
                                   tmp_path / "missing.json")
        with pytest.raises(ValueError, match="seeds"):
            resumable.run_leg(None, leg_pages=10)
