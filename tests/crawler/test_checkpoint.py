"""Tests for crash-safe crawl checkpointing and resumption."""

import json
import os

import pytest

from repro.crawler.checkpoint import (
    CheckpointError, ResumableCrawl, crawler_state_to_dict,
    frontier_from_dict, frontier_to_dict, load_checkpoint,
    restore_crawler_state, save_checkpoint,
)
from repro.crawler.crawl import CrawlConfig, CrawlResult, FocusedCrawler
from repro.crawler.frontier import CrawlDb


class TestFrontierSerialization:
    def test_round_trip(self):
        frontier = CrawlDb(host_fetch_list_cap=7, max_urls_per_host=9)
        frontier.add("http://a.com/1", depth=1)
        frontier.add("http://b.com/2", depth=2, irrelevant_steps=1)
        frontier.mark_seen("http://c.com/seen")
        restored = frontier_from_dict(frontier_to_dict(frontier))
        assert len(restored) == len(frontier)
        assert restored.host_fetch_list_cap == 7
        assert not restored.add("http://c.com/seen")  # seen preserved
        entries = restored.next_batch(10)
        assert {e.url for e in entries} == {"http://a.com/1",
                                            "http://b.com/2"}
        by_url = {e.url: e for e in entries}
        assert by_url["http://b.com/2"].irrelevant_steps == 1


class TestCheckpointFile:
    def test_save_and_load(self, tmp_path):
        frontier = CrawlDb()
        frontier.add("http://a.com/1")
        result = CrawlResult(pages_fetched=5, stop_reason="leg_budget",
                             retries=2)
        result.record_failure("timeout")
        result.linkdb.add_edges("http://a.com/1", ["http://b.com/2"])
        path = save_checkpoint(tmp_path / "cp.json", frontier, result,
                               clock_now=12.5)
        state = load_checkpoint(path)
        assert state.clock_now == 12.5
        assert len(state.frontier) == 1
        assert state.result.pages_fetched == 5
        assert state.result.linkdb.n_edges == 1
        assert state.result.failure_reasons == {"timeout": 1}
        assert state.result.retries == 2

    def test_write_is_atomic(self, tmp_path):
        """No tmp residue, and the payload lands via os.replace."""
        path = tmp_path / "cp.json"
        save_checkpoint(path, CrawlDb(), CrawlResult(), clock_now=0.0)
        first = path.read_text()
        save_checkpoint(path, CrawlDb(), CrawlResult(pages_fetched=9),
                        clock_now=3.0)
        assert os.listdir(tmp_path) == ["cp.json"]  # tmp file gone
        assert path.read_text() != first

    def test_truncated_payload_rejected(self, tmp_path):
        path = tmp_path / "cp.json"
        save_checkpoint(path, CrawlDb(), CrawlResult(), clock_now=1.0)
        whole = path.read_text()
        path.write_text(whole[:len(whole) // 2])  # torn write
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.json")

    def test_missing_section_rejected(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text(json.dumps({"version": 2, "clock_now": 0.0,
                                    "frontier": {}}))
        with pytest.raises(CheckpointError, match="result"):
            load_checkpoint(path)

    def test_version_guard(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)

    def test_v1_payload_still_loads(self, tmp_path):
        """Old checkpoints (no failure_reasons/raw/crawler) restore
        with defaults."""
        path = tmp_path / "cp.json"
        frontier = CrawlDb()
        frontier.add("http://a.com/1")
        payload = {
            "version": 1,
            "clock_now": 2.0,
            "frontier": frontier_to_dict(frontier),
            "result": {
                "relevant": [{"doc_id": "http://a.com/1", "text": "t",
                              "meta": {}}],
                "irrelevant": [], "outlinks": {}, "pages_fetched": 1,
                "fetch_failures": 0, "robots_denied": 0,
                "filtered_out": 0, "clock_seconds": 2.0,
                "stop_reason": "leg_budget",
            },
        }
        path.write_text(json.dumps(payload))
        state = load_checkpoint(path)
        assert state.result.failure_reasons == {}
        assert state.result.relevant[0].raw == ""
        assert state.crawler_state is None


class TestCrawlerStateSerialization:
    def test_round_trip(self, context):
        crawler = FocusedCrawler(context.web, context.pipeline.classifier,
                                 context.build_filter_chain(),
                                 CrawlConfig(max_pages=30))
        crawler.crawl(context.seed_batch("second").urls)
        state = crawler_state_to_dict(crawler)
        fresh = FocusedCrawler(context.web, context.pipeline.classifier,
                               context.build_filter_chain(),
                               CrawlConfig(max_pages=30))
        restore_crawler_state(fresh, state)
        assert fresh._host_ready == crawler._host_ready
        assert set(fresh._robots_cache) == set(crawler._robots_cache)
        for host, policy in crawler._robots_cache.items():
            assert fresh._robots_cache[host].disallow == policy.disallow
            assert fresh._robots_cache[host].crawl_delay == \
                policy.crawl_delay
        assert fresh.filters.attrition_report() == \
            crawler.filters.attrition_report()

    def test_state_is_json_clean(self, context):
        crawler = FocusedCrawler(context.web, context.pipeline.classifier,
                                 context.build_filter_chain(),
                                 CrawlConfig(max_pages=20))
        crawler.crawl(context.seed_batch("second").urls)
        payload = crawler_state_to_dict(crawler)
        assert json.loads(json.dumps(payload)) == payload


class TestResumableCrawl:
    def _crawler(self, context):
        return FocusedCrawler(context.web, context.pipeline.classifier,
                              context.build_filter_chain(),
                              CrawlConfig(max_pages=10_000))

    def test_legs_accumulate(self, context, tmp_path):
        seeds = context.seed_batch("second").urls
        resumable = ResumableCrawl(self._crawler(context),
                                   tmp_path / "crawl.json")
        leg1 = resumable.run_leg(seeds, leg_pages=60)
        assert leg1.pages_fetched >= 50
        leg2 = resumable.run_leg(None, leg_pages=60)
        assert leg2.pages_fetched > leg1.pages_fetched
        # Counters continue, documents accumulate, clock advances.
        assert len(leg2.relevant) >= len(leg1.relevant)
        assert leg2.clock_seconds > leg1.clock_seconds

    def test_resume_equals_uninterrupted(self, context, tmp_path):
        """Two 60-page legs visit the same pages as one 120-page run."""
        seeds = context.seed_batch("second").urls
        resumable = ResumableCrawl(self._crawler(context),
                                   tmp_path / "cp.json")
        resumable.run_leg(seeds, leg_pages=60)
        legged = resumable.run_leg(None, leg_pages=60)
        straight = self._crawler(context)
        straight.config.max_pages = 120
        uninterrupted = straight.crawl(seeds)
        legged_urls = {d.doc_id for d in legged.relevant}
        straight_urls = {d.doc_id for d in uninterrupted.relevant}
        overlap = len(legged_urls & straight_urls)
        assert overlap >= 0.8 * min(len(legged_urls), len(straight_urls))

    def test_first_leg_requires_seeds(self, context, tmp_path):
        resumable = ResumableCrawl(self._crawler(context),
                                   tmp_path / "missing.json")
        with pytest.raises(ValueError, match="seeds"):
            resumable.run_leg(None, leg_pages=10)

    def test_run_requires_seeds_without_checkpoint(self, context, tmp_path):
        resumable = ResumableCrawl(self._crawler(context),
                                   tmp_path / "missing.json")
        with pytest.raises(ValueError, match="seeds"):
            resumable.run(None, resume=True)


class TestVersioning:
    def test_future_version_is_a_downgrade_error(self, tmp_path):
        """A checkpoint from a newer build must fail with a clear
        refusal, not a KeyError deep in payload parsing."""
        path = tmp_path / "cp.json"
        save_checkpoint(path, CrawlDb(), CrawlResult(), clock_now=0.0)
        payload = json.loads(path.read_text())
        payload["version"] += 1
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="refusing"):
            load_checkpoint(path)
        with pytest.raises(CheckpointError, match="downgrade"):
            load_checkpoint(path)

    def test_nonsense_version_rejected(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text(json.dumps({"version": "banana"}))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_missing_clock_rejected(self, tmp_path):
        path = tmp_path / "cp.json"
        save_checkpoint(path, CrawlDb(), CrawlResult(), clock_now=0.0)
        payload = json.loads(path.read_text())
        del payload["clock_now"]
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="clock_now"):
            load_checkpoint(path)


class TestRecrawlStateSerialization:
    def test_recrawl_sections_round_trip(self, context, web):
        from repro.crawler.recrawl import (
            PageMemory, PageRecord, RecrawlScheduler,
            content_fingerprint, revision_signature,
        )
        from repro.html.neardup import NearDuplicateFilter

        crawler = FocusedCrawler(
            web, context.pipeline.classifier,
            context.build_filter_chain(), CrawlConfig(max_pages=10),
            memory=PageMemory(), scheduler=RecrawlScheduler(seed=4),
            neardup=NearDuplicateFilter())
        body = "alpha beta gamma delta"
        crawler.memory.put("http://h.org/p", PageRecord(
            final_url="http://h.org/p", version=1,
            fingerprint=content_fingerprint(body),
            signature=revision_signature(body),
            outcome=(True, True, "net", "t", (), "", True, {}),
            body=body, content_type="text/html", last_round=1))
        crawler.scheduler.observe("h.org", changed=False)
        crawler.scheduler.begin_round(1)
        crawler.neardup.is_duplicate(body)
        crawler.round = 1
        state = crawler_state_to_dict(crawler)
        assert json.loads(json.dumps(state)) == state  # JSON-clean
        restored = FocusedCrawler(
            web, context.pipeline.classifier,
            context.build_filter_chain(), CrawlConfig(max_pages=10),
            memory=PageMemory(), scheduler=RecrawlScheduler(),
            neardup=NearDuplicateFilter())
        restore_crawler_state(restored, state)
        assert restored.round == 1
        assert crawler_state_to_dict(restored) == state

    def test_cold_crawler_state_has_no_recrawl_section(self, context,
                                                       web):
        crawler = FocusedCrawler(
            web, context.pipeline.classifier,
            context.build_filter_chain(), CrawlConfig(max_pages=10))
        state = crawler_state_to_dict(crawler)
        assert "recrawl" not in state
        assert "neardup" not in state
