"""Tests for retry policy and circuit breakers."""

import pytest

from repro.crawler.robust import (
    HOST_FAILURES, RETRYABLE, BreakerConfig, CircuitBreaker, HostHealth,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff=2.0, backoff_multiplier=2.0,
                             max_backoff=10.0, jitter=0.0)
        url = "http://a.example.org/p.html"
        assert policy.backoff_seconds(url, 0) == pytest.approx(2.0)
        assert policy.backoff_seconds(url, 1) == pytest.approx(4.0)
        assert policy.backoff_seconds(url, 2) == pytest.approx(8.0)
        assert policy.backoff_seconds(url, 5) == pytest.approx(10.0)

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(base_backoff=4.0, jitter=0.25)
        url = "http://a.example.org/p.html"
        values = [policy.backoff_seconds(url, 1) for _ in range(5)]
        assert len(set(values)) == 1  # pure function of (url, attempt)
        assert 4.0 * 2 * 0.75 <= values[0] <= 4.0 * 2 * 1.25
        other = policy.backoff_seconds("http://b.example.org/p.html", 1)
        assert other != values[0]  # jitter decorrelates URLs

    def test_retry_after_is_a_floor(self):
        policy = RetryPolicy(base_backoff=1.0, jitter=0.0)
        assert policy.backoff_seconds("u", 0, retry_after=30.0) == 30.0

    def test_should_retry_honours_reason_and_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry("timeout", 0)
        assert policy.should_retry("timeout", 1)
        assert not policy.should_retry("timeout", 2)  # budget exhausted
        assert not policy.should_retry("not_found", 0)  # permanent
        assert not policy.should_retry(None, 0)

    def test_reason_sets_consistent(self):
        assert HOST_FAILURES <= RETRYABLE | {"not_found"}
        assert "not_found" not in RETRYABLE
        assert "redirect_loop" not in RETRYABLE


class TestCircuitBreaker:
    def _breaker(self, threshold=3, cooldown=100.0):
        return CircuitBreaker(config=BreakerConfig(
            failure_threshold=threshold, cooldown=cooldown,
            cooldown_multiplier=2.0, max_cooldown=350.0))

    def test_opens_after_threshold(self):
        breaker = self._breaker()
        assert not breaker.record_failure(now=0.0)
        assert not breaker.record_failure(now=1.0)
        assert breaker.record_failure(now=2.0)  # third strike opens
        assert not breaker.allow(now=50.0)
        assert breaker.allow(now=102.0)  # cooled down: half-open probe

    def test_success_closes_and_resets(self):
        breaker = self._breaker()
        for now in (0.0, 1.0, 2.0):
            breaker.record_failure(now)
        breaker.record_success()
        assert breaker.allow(now=3.0)
        assert breaker.consecutive_failures == 0

    def test_failed_probe_reopens_with_escalated_cooldown(self):
        breaker = self._breaker()
        for now in (0.0, 1.0, 2.0):
            breaker.record_failure(now)
        first_open_until = breaker.open_until
        assert first_open_until == pytest.approx(102.0)
        # Probe at 150 fails -> reopen for 200 s (escalated).
        assert breaker.allow(now=150.0)
        assert breaker.record_failure(now=150.0)
        assert breaker.open_until == pytest.approx(350.0)
        # Next escalation hits the max_cooldown cap.
        assert breaker.record_failure(now=400.0)
        assert breaker.open_until == pytest.approx(750.0)

    def test_serialization_round_trip(self):
        breaker = self._breaker()
        for now in (0.0, 1.0, 2.0):
            breaker.record_failure(now)
        payload = breaker.to_dict()
        restored = CircuitBreaker.from_dict(payload, breaker.config)
        assert restored.open_until == breaker.open_until
        assert restored.consecutive_failures == breaker.consecutive_failures
        assert restored.opens == breaker.opens
        assert not restored.allow(now=10.0)


class TestHostHealth:
    def test_breakers_created_per_host(self):
        health = HostHealth()
        a = health.breaker("a.example.org")
        assert health.breaker("a.example.org") is a
        assert health.breaker("b.example.org") is not a

    def test_quarantined_count(self):
        health = HostHealth(config=BreakerConfig(failure_threshold=1))
        health.breaker("a.example.org").record_failure(0.0)
        health.breaker("b.example.org")  # healthy
        assert health.quarantined_hosts == 1

    def test_restore_round_trip(self):
        health = HostHealth(config=BreakerConfig(failure_threshold=1))
        health.breaker("a.example.org").record_failure(5.0)
        payload = health.to_dict()
        fresh = HostHealth(config=BreakerConfig(failure_threshold=1))
        fresh.restore(payload)
        assert fresh.quarantined_hosts == 1
        assert not fresh.breaker("a.example.org").allow(now=10.0)
