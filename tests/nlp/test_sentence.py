"""Tests for sentence boundary detection."""

from repro.nlp.sentence import SentenceSplitter, split_sentences


class TestSplitting:
    def test_two_sentences(self):
        sentences = split_sentences("First here. Second there.")
        assert [s.text for s in sentences] == ["First here.",
                                               "Second there."]

    def test_offsets_match(self):
        text = "One sentence. Another one! A third?"
        for sentence in split_sentences(text):
            assert text[sentence.start:sentence.end] == sentence.text

    def test_abbreviation_not_boundary(self):
        sentences = split_sentences("See Fig. 2 for details. Then stop.")
        assert len(sentences) == 2
        assert sentences[0].text == "See Fig. 2 for details."

    def test_eg_not_boundary(self):
        sentences = split_sentences("Some drugs, e.g. Aspirin, help. Done.")
        assert len(sentences) == 2

    def test_initial_not_boundary(self):
        sentences = split_sentences("We thank J. Smith for help. The end.")
        assert len(sentences) == 2

    def test_question_and_exclamation(self):
        sentences = split_sentences("Really? Yes! Fine.")
        assert len(sentences) == 3

    def test_no_terminal_punctuation_single_blob(self):
        """Run-on web text yields one giant pseudo-sentence — the
        failure mode feeding >2000-char sentences to the tagger."""
        blob = ", ".join(["menu item"] * 300)
        sentences = split_sentences(blob)
        assert len(sentences) == 1
        assert len(sentences[0].text) > 2000

    def test_lowercase_continuation_not_split(self):
        sentences = split_sentences("He saw approx. twenty cases. Done.")
        assert len(sentences) == 2

    def test_empty_text(self):
        assert split_sentences("") == []

    def test_whitespace_only(self):
        assert split_sentences("  \n  ") == []

    def test_base_offset(self):
        sentences = split_sentences("A b. C d.", base_offset=50)
        assert sentences[0].start == 50


class TestHardLimit:
    def test_hard_split_caps_length(self):
        splitter = SentenceSplitter(max_sentence_chars=100)
        blob = ", ".join(["menu item"] * 100)
        pieces = splitter.split(blob)
        assert len(pieces) > 1
        assert all(len(p.text) <= 100 for p in pieces)

    def test_hard_split_offsets_consistent(self):
        splitter = SentenceSplitter(max_sentence_chars=80)
        blob = " ".join(["word"] * 200)
        for piece in splitter.split(blob):
            assert blob[piece.start:piece.end] == piece.text

    def test_normal_sentences_untouched_by_limit(self):
        splitter = SentenceSplitter(max_sentence_chars=200)
        sentences = splitter.split("Short one. Another short one.")
        assert len(sentences) == 2
