"""Tests for n-gram language identification."""

import random

import pytest

from repro.corpora.foreign import generate_foreign_text
from repro.nlp.language import LanguageIdentifier, default_identifier


@pytest.fixture(scope="module")
def identifier():
    return default_identifier(seed=3)


class TestDefaultIdentifier:
    def test_detects_english(self, identifier, medline_generator):
        assert identifier.detect(medline_generator.document(0).text) == "en"

    def test_detects_german(self, identifier):
        text = generate_foreign_text("de", 800, random.Random(2))
        assert identifier.detect(text) == "de"

    def test_detects_french(self, identifier):
        text = generate_foreign_text("fr", 800, random.Random(2))
        assert identifier.detect(text) == "fr"

    def test_detects_spanish(self, identifier):
        text = generate_foreign_text("es", 800, random.Random(2))
        assert identifier.detect(text) == "es"

    def test_is_english_helper(self, identifier, medline_generator):
        assert identifier.is_english(medline_generator.document(1).text)
        text = generate_foreign_text("de", 800, random.Random(3))
        assert not identifier.is_english(text)

    def test_accuracy_over_many_samples(self, identifier,
                                        relevant_generator):
        rng = random.Random(5)
        correct = total = 0
        for i in range(10):
            if identifier.detect(relevant_generator.document(i).text) == "en":
                correct += 1
            total += 1
        for language in ("de", "fr", "es"):
            for _ in range(5):
                text = generate_foreign_text(language, 600, rng)
                if identifier.detect(text) == language:
                    correct += 1
                total += 1
        assert correct / total > 0.9


class TestIdentifierMechanics:
    def test_untrained_returns_empty(self):
        assert LanguageIdentifier().detect("hello world") == ""

    def test_empty_text_returns_empty(self, identifier):
        assert identifier.detect("   ") == ""

    def test_languages_listed(self, identifier):
        assert set(identifier.languages) >= {"en", "de", "fr", "es"}

    def test_custom_training(self):
        ident = LanguageIdentifier(profile_size=50)
        ident.train("aa", "aaa aab aba baa " * 50)
        ident.train("bb", "bbb bba bab abb " * 50)
        assert ident.detect("aaa aab aaa") == "aa"
        assert ident.detect("bbb bba bbb") == "bb"
