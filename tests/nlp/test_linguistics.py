"""Tests for the regex linguistic analysis."""

from repro.annotations import Document
from repro.nlp.linguistics import LinguisticAnalyzer


def _doc(text):
    return Document(doc_id="d", text=text)


class TestNegation:
    def test_cues_found(self):
        analyzer = LinguisticAnalyzer()
        mentions = analyzer.analyze(_doc(
            "This is not true. Neither A nor B held."))
        negations = [m for m in mentions if m.category == "negation"]
        assert {m.text.lower() for m in negations} == {"not", "neither",
                                                       "nor"}

    def test_offsets_match(self):
        text = "We did not observe it."
        for mention in LinguisticAnalyzer().analyze(_doc(text)):
            assert text[mention.start:mention.end] == mention.text

    def test_not_inside_word_ignored(self):
        mentions = LinguisticAnalyzer().analyze(_doc("denote nothing"))
        assert not [m for m in mentions if m.category == "negation"]


class TestPronouns:
    def test_six_classes_recognized(self):
        text = ("They saw him. His results, which improved, speak for "
                "themselves. These are those cases.")
        mentions = LinguisticAnalyzer().analyze(_doc(text))
        subtypes = {m.subtype for m in mentions if m.category == "pronoun"}
        assert {"personal_subject", "personal_object", "possessive",
                "relative", "reflexive", "demonstrative"} <= subtypes

    def test_case_insensitive(self):
        mentions = LinguisticAnalyzer().analyze(_doc("They arrived."))
        assert any(m.text == "They" for m in mentions)


class TestParentheses:
    def test_found_with_content(self):
        mentions = LinguisticAnalyzer().analyze(
            _doc("The effect (p < 0.01) was strong."))
        parens = [m for m in mentions if m.category == "parenthesis"]
        assert len(parens) == 1
        assert parens[0].text == "(p < 0.01)"

    def test_multiple(self):
        mentions = LinguisticAnalyzer().analyze(
            _doc("First (a) and second (b)."))
        assert sum(m.category == "parenthesis" for m in mentions) == 2

    def test_unbalanced_ignored(self):
        mentions = LinguisticAnalyzer().analyze(_doc("broken ( text"))
        assert not [m for m in mentions if m.category == "parenthesis"]


class TestSummary:
    def test_summary_counts(self):
        analyzer = LinguisticAnalyzer()
        document = _doc("They did not fail (luckily). Neither did we.")
        summary = analyzer.summarize(document)
        assert summary.negations == 2
        assert summary.parentheses == 1
        assert sum(summary.pronouns.values()) >= 2

    def test_coreference_pronoun_subset(self):
        analyzer = LinguisticAnalyzer()
        summary = analyzer.summarize(
            _doc("The cases, which they saw, affected them."))
        assert summary.coreference_pronouns >= 2

    def test_per_1000_chars(self):
        analyzer = LinguisticAnalyzer()
        summary = analyzer.summarize(_doc("not " * 250))
        assert summary.per_1000_chars(summary.negations) == 250.0

    def test_analyze_idempotent_on_document(self):
        analyzer = LinguisticAnalyzer()
        document = _doc("They did not fail.")
        first = analyzer.analyze(document)
        second = analyzer.analyze(document)
        assert first == second
