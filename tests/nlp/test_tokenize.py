"""Tests for the offset-preserving tokenizer."""

from hypothesis import given, settings, strategies as st

from repro.nlp.tokenize import Tokenizer, tokenize


class TestBasics:
    def test_simple_sentence(self):
        words = [t.text for t in tokenize("The cat sat.")]
        assert words == ["The", "cat", "sat", "."]

    def test_offsets_match_text(self):
        text = "BRCA1 inhibits the tumor (p < 0.01)."
        for token in tokenize(text):
            assert text[token.start:token.end] == token.text

    def test_hyphen_compound_kept(self):
        assert [t.text for t in tokenize("GAD-67 rises")][0] == "GAD-67"

    def test_greek_suffix_compound(self):
        assert tokenize("TNF-alpha")[0].text == "TNF-alpha"

    def test_decimal_number(self):
        assert tokenize("p = 0.01")[2].text == "0.01"

    def test_parentheses_split(self):
        words = [t.text for t in tokenize("(see Fig)")]
        assert words[0] == "(" and words[-1] == ")"

    def test_contraction(self):
        assert "don't" in [t.text for t in tokenize("we don't know")]

    def test_dotted_abbreviation(self):
        assert tokenize("given i.v. daily")[1].text == "i.v."

    def test_base_offset_shift(self):
        tokens = tokenize("a b", base_offset=100)
        assert tokens[0].start == 100
        assert tokens[1].start == 102

    def test_empty_text(self):
        assert tokenize("") == []

    def test_percent_and_comparison(self):
        words = [t.text for t in tokenize("95 % CI < 2")]
        assert "%" in words and "<" in words

    def test_custom_pattern(self):
        import re

        words_only = Tokenizer(re.compile(r"[a-z]+"))
        assert [t.text for t in words_only.tokenize("ab, cd!")] == \
            ["ab", "cd"]


@given(st.text(max_size=300))
@settings(max_examples=150, deadline=None)
def test_property_offsets_always_consistent(text):
    for token in tokenize(text):
        assert text[token.start:token.end] == token.text


@given(st.text(alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"),
                                      whitelist_characters=" .-"),
               max_size=200))
@settings(max_examples=100, deadline=None)
def test_property_tokens_ordered_and_nonoverlapping(text):
    tokens = tokenize(text)
    for previous, current in zip(tokens, tokens[1:]):
        assert current.start >= previous.end


@given(st.text(alphabet="abcDEF0123 .,-()", max_size=200))
@settings(max_examples=100, deadline=None)
def test_property_non_whitespace_coverage(text):
    """Every non-space character lands inside some token."""
    covered = set()
    for token in tokenize(text):
        covered.update(range(token.start, token.end))
    for index, char in enumerate(text):
        if not char.isspace():
            assert index in covered
