"""Tests for Schwartz-Hearst abbreviation detection."""

from repro.annotations import Document
from repro.nlp.abbreviations import (
    annotate_abbreviations, defined_short_forms, find_abbreviations,
)


class TestFindAbbreviations:
    def test_classic_definition(self):
        definitions = find_abbreviations(
            "The chronic kidney disease (CKD) cohort grew.")
        assert len(definitions) == 1
        assert definitions[0].short_form == "CKD"
        assert definitions[0].long_form.lower() == "chronic kidney disease"

    def test_offsets_match(self):
        text = "We studied tumor necrosis factor (TNF) levels."
        definition = find_abbreviations(text)[0]
        assert text[definition.short_start:definition.short_end] == "TNF"
        assert text[definition.long_start:definition.long_end] == \
            definition.long_form

    def test_skips_non_matching_parenthetical(self):
        assert find_abbreviations(
            "The effect was strong (see Figure 2) in mice.") == []

    def test_skips_numeric_parenthetical(self):
        assert find_abbreviations("significant (n = 42) cohort") == []

    def test_multiple_definitions(self):
        text = ("Tumor necrosis factor (TNF) and chronic kidney "
                "disease (CKD) interact.")
        shorts = {d.short_form for d in find_abbreviations(text)}
        assert shorts == {"TNF", "CKD"}

    def test_inner_letters_allowed(self):
        definitions = find_abbreviations(
            "the deoxyribonucleic acid (DNA) strand")
        assert definitions and definitions[0].short_form == "DNA"

    def test_no_long_form_match(self):
        # Characters of the short form don't appear before the paren.
        assert find_abbreviations("we went home (XQZ) yesterday") == []

    def test_short_form_length_bounds(self):
        assert find_abbreviations("a thing (X) here") == []
        long_sf = "A" * 11
        assert find_abbreviations(f"some words ({long_sf}) here") == []


class TestDocumentIntegration:
    def test_annotate_stores_meta(self):
        document = Document(
            "d", "The chronic kidney disease (CKD) cohort grew.")
        annotate_abbreviations(document)
        assert ("CKD", "chronic kidney disease") in [
            (s, l.lower()) for s, l in document.meta["abbreviations"]]

    def test_defined_short_forms(self):
        document = Document(
            "d", "Tumor necrosis factor (TNF) rose. TNF fell later.")
        assert "TNF" in defined_short_forms(document)

    def test_operator_registered(self):
        from repro.dataflow.packages import make_operator

        document = Document(
            "d", "The chronic kidney disease (CKD) cohort grew.")
        out = list(make_operator("annotate_abbreviations").process(
            [document]))[0]
        assert out.meta["abbreviations"]
