"""Equivalence tests for the frozen (array-based) POS Viterbi kernel.

The frozen kernel must reproduce the reference dict-based decoder
exactly — same tags, same crash behaviour — across randomized seeded
models, with and without the annotation cache in front of it.
"""

import random

import pytest

from repro.nlp.anno_cache import AnnotationCache
from repro.nlp.pos_hmm import HmmPosTagger, TaggerCrash

TAGS = ["NN", "NNS", "VB", "VBD", "JJ", "DT", "IN", "CC", "."]
WORDS = ["the", "a", "study", "studies", "patient", "patients", "shows",
         "showed", "response", "dose", "large", "small", "of", "in",
         "and", "p53", "alpha-2", "TNF", ".", ","]


def _random_training(rng, n_sentences):
    sentences = []
    for _ in range(n_sentences):
        length = rng.randint(1, 14)
        sentences.append([(rng.choice(WORDS), rng.choice(TAGS))
                          for _ in range(length)])
    return sentences


def _random_test_sentences(rng, n_sentences):
    """Mix of known words and unknown shapes (digits, caps, mixed)."""
    unknowns = ["zzqx", "Xenovir", "WHO", "42", "p27-kip", "run-of-9",
                "μg", "Unseen"]
    sentences = []
    for _ in range(n_sentences):
        length = rng.randint(1, 16)
        pool = WORDS if rng.random() < 0.5 else WORDS + unknowns
        sentences.append([rng.choice(pool) for _ in range(length)])
    return sentences


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_frozen_matches_reference_randomized(seed):
    rng = random.Random(seed)
    tagger = HmmPosTagger()
    tagger.train(_random_training(rng, 150))
    sentences = _random_test_sentences(rng, 80)
    reference = [tagger.tag_reference(s) for s in sentences]
    tagger.freeze()
    assert tagger.frozen
    assert [tagger.tag(s) for s in sentences] == reference


def test_unfrozen_tag_matches_reference():
    rng = random.Random(11)
    tagger = HmmPosTagger()
    tagger.train(_random_training(rng, 60))
    sentences = _random_test_sentences(rng, 30)
    assert not tagger.frozen
    assert [tagger.tag(s) for s in sentences] == \
        [tagger.tag_reference(s) for s in sentences]


def test_wide_beam_is_exact():
    rng = random.Random(5)
    tagger = HmmPosTagger()
    tagger.train(_random_training(rng, 100))
    sentences = _random_test_sentences(rng, 40)
    reference = [tagger.tag_reference(s) for s in sentences]
    tagger.freeze(beam_width=10_000)
    assert [tagger.tag(s) for s in sentences] == reference


def test_narrow_beam_stays_valid():
    """Beam search may pick different tags but must stay well-formed
    and deterministic."""
    rng = random.Random(6)
    tagger = HmmPosTagger()
    tagger.train(_random_training(rng, 100))
    tagger.freeze(beam_width=2)
    for sentence in _random_test_sentences(rng, 30):
        tags = tagger.tag(sentence)
        assert len(tags) == len(sentence)
        assert all(tag in tagger.tags for tag in tags)
        assert tagger.tag(sentence) == tags


def test_crash_parity_on_long_sentences(medline_generator):
    tagger = HmmPosTagger()
    tagger.train(medline_generator.document(0).tagged_sentences())
    long_sentence = ["word"] * 601
    with pytest.raises(TaggerCrash):
        tagger.tag_reference(long_sentence)
    tagger.freeze()
    with pytest.raises(TaggerCrash):
        tagger.tag(long_sentence)


def test_crash_fires_even_with_cache(tmp_path):
    """The crash check must precede the cache lookup — a cached long
    sentence still crashes, as the real tool would."""
    tagger = HmmPosTagger(crash_token_limit=5)
    tagger.train([[("w", "NN")] * 3])
    tagger.freeze()
    tagger.annotation_cache = AnnotationCache(tmp_path)
    with pytest.raises(TaggerCrash):
        tagger.tag(["w"] * 6)
    assert tagger.annotation_cache.misses == 0


def test_incremental_training_invalidates_freeze():
    tagger = HmmPosTagger()
    tagger.train([[("the", "DT"), ("cats", "NNS")]])
    tagger.freeze()
    assert tagger.frozen
    first_fingerprint = tagger.fingerprint()
    tagger.train([[("dogs", "NNS"), ("run", "VB")]])
    assert not tagger.frozen
    assert tagger.fingerprint() != first_fingerprint
    assert tagger.tag(["the", "cats"]) == \
        tagger.tag_reference(["the", "cats"])


def test_untrained_freeze_raises():
    with pytest.raises(RuntimeError):
        HmmPosTagger().freeze()


def test_candidate_tags_returns_immutable_tuple():
    tagger = HmmPosTagger()
    tagger.train([[("the", "DT"), ("cats", "NNS")]])
    candidates = tagger._candidate_tags("the")
    assert isinstance(candidates, tuple)
    unknown = tagger._candidate_tags("never-seen-zzz")
    assert isinstance(unknown, tuple)
    assert set(unknown) == set(tagger.tags)


def test_cache_hit_path_returns_equal_tags(tmp_path):
    rng = random.Random(8)
    tagger = HmmPosTagger()
    tagger.train(_random_training(rng, 80))
    tagger.freeze()
    cache = AnnotationCache(tmp_path)
    tagger.annotation_cache = cache
    sentences = _random_test_sentences(rng, 20)
    unique = len({tuple(s) for s in sentences})
    cold = [tagger.tag(s) for s in sentences]
    assert cache.misses == unique
    assert cache.hits == len(sentences) - unique
    warm = [tagger.tag(s) for s in sentences]
    assert warm == cold
    assert cache.hits == 2 * len(sentences) - unique


def test_cache_survives_process_restart(tmp_path):
    """Flushed entries are read back by a fresh cache instance keyed
    by the same model fingerprint."""
    rng = random.Random(9)
    tagger = HmmPosTagger()
    tagger.train(_random_training(rng, 80))
    tagger.freeze()
    tagger.annotation_cache = AnnotationCache(tmp_path)
    sentences = _random_test_sentences(rng, 10)
    cold = [tagger.tag(s) for s in sentences]
    assert tagger.annotation_cache.flush() > 0
    tagger.annotation_cache = AnnotationCache(tmp_path)
    assert [tagger.tag(s) for s in sentences] == cold
    assert tagger.annotation_cache.misses == 0


def test_fingerprint_is_stable_and_content_addressed():
    first = HmmPosTagger()
    second = HmmPosTagger()
    training = _random_training(random.Random(10), 50)
    first.train(training)
    second.train(training)
    assert first.fingerprint() == second.fingerprint()
    third = HmmPosTagger()
    third.train(_random_training(random.Random(99), 50))
    assert third.fingerprint() != first.fingerprint()
