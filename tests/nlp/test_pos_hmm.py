"""Tests for the HMM POS tagger."""

import pytest

from repro.nlp.pos_hmm import HmmPosTagger, TaggerCrash, _shape


@pytest.fixture(scope="module")
def trained_tagger(medline_generator):
    tagger = HmmPosTagger()
    tagger.train(sentence for i in range(40)
                 for sentence in medline_generator.document(i)
                 .tagged_sentences())
    return tagger


class TestTraining:
    def test_untrained_raises(self):
        with pytest.raises(RuntimeError):
            HmmPosTagger().tag(["hello"])

    def test_incremental_training_allowed(self):
        tagger = HmmPosTagger()
        tagger.train([[("the", "DT"), ("cats", "NNS")]])
        first = tagger.tag(["the", "cats"])
        tagger.train([[("dogs", "NNS"), ("run", "VB")]])
        assert tagger.tag(["the", "cats"]) == first

    def test_tagset_learned(self, trained_tagger):
        assert "DT" in trained_tagger.tags
        assert "NNS" in trained_tagger.tags


class TestTagging:
    def test_accuracy_on_held_out(self, trained_tagger, medline_generator):
        held_out = [sentence for i in range(40, 50)
                    for sentence in medline_generator.document(i)
                    .tagged_sentences()]
        assert trained_tagger.accuracy(held_out) > 0.9

    def test_empty_sentence(self, trained_tagger):
        assert trained_tagger.tag([]) == []

    def test_known_word(self, trained_tagger):
        assert trained_tagger.tag(["the", "patients"]) == ["DT", "NNS"]

    def test_unknown_word_uses_shape(self, trained_tagger):
        tags = trained_tagger.tag(["the", "zzzxqq-42"])
        assert len(tags) == 2 and all(tags)

    def test_tag_tokens_fills_pos(self, trained_tagger):
        from repro.nlp.tokenize import tokenize

        tokens = trained_tagger.tag_tokens(tokenize("the patients improved"))
        assert all(t.pos for t in tokens)

    def test_output_length_matches_input(self, trained_tagger):
        words = ["the", "study", "shows", "a", "response", "."]
        assert len(trained_tagger.tag(words)) == len(words)

    def test_deterministic(self, trained_tagger):
        words = ["each", "trial", "confirms", "the", "diagnosis", "."]
        assert trained_tagger.tag(words) == trained_tagger.tag(words)


class TestCrashBehaviour:
    def test_long_sentence_crashes(self, trained_tagger):
        with pytest.raises(TaggerCrash):
            trained_tagger.tag(["word"] * 700)

    def test_limit_configurable(self, medline_generator):
        tagger = HmmPosTagger(crash_token_limit=None)
        tagger.train(medline_generator.document(0).tagged_sentences())
        assert len(tagger.tag(["word"] * 700)) == 700

    def test_accuracy_counts_crashes_as_errors(self, medline_generator):
        tagger = HmmPosTagger(crash_token_limit=5)
        tagger.train(medline_generator.document(0).tagged_sentences())
        gold = [[("w", "NN")] * 10]
        assert tagger.accuracy(gold) == 0.0


class TestShapes:
    def test_shapes(self):
        assert _shape("123") == "shape_number"
        assert _shape("WHO") == "shape_allcaps"
        assert _shape("Berlin") == "shape_capitalized"
        assert _shape("Paris") == "suffix_s"  # suffix checks take priority
        assert _shape("p53x") == "shape_mixed"
        assert _shape(".,;") == "shape_punct"
        assert _shape("running") == "suffix_ing"
        assert _shape("quickly") == "suffix_ly"
