"""Tests for the content-addressed annotation cache."""

import marshal
from pathlib import Path

import pytest

from repro.nlp.anno_cache import (
    CACHE_FORMAT_VERSION, AnnotationCache, sentence_key,
)

FP = "hmm:deadbeef"
WORDS = ["the", "patients", "improved"]
LABELS = ("DT", "NNS", "VBD")


@pytest.fixture
def cache(tmp_path):
    return AnnotationCache(tmp_path)


class TestSentenceKey:
    def test_deterministic(self):
        assert sentence_key(WORDS) == sentence_key(list(WORDS))

    def test_token_boundaries_matter(self):
        """Concatenation-equal but differently tokenized sentences must
        not collide (the NUL separator)."""
        assert sentence_key(["ab", "c"]) != sentence_key(["a", "bc"])

    def test_case_sensitive(self):
        assert sentence_key(["The"]) != sentence_key(["the"])


class TestMemoryTier:
    def test_miss_then_hit(self, cache):
        assert cache.lookup(FP, WORDS) is None
        cache.store(FP, WORDS, LABELS)
        assert cache.lookup(FP, WORDS) == LABELS
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1,
                                 "flushes": 0, "shards_written": 0}

    def test_models_are_isolated(self, cache):
        cache.store(FP, WORDS, LABELS)
        assert cache.lookup("crf:other-model", WORDS) is None

    def test_store_copies_to_tuple(self, cache):
        labels = ["DT", "NNS", "VBD"]
        cache.store(FP, WORDS, labels)
        labels[0] = "XX"
        assert cache.lookup(FP, WORDS) == LABELS


class TestDiskTier:
    def test_flush_and_reload(self, cache, tmp_path):
        cache.store(FP, WORDS, LABELS)
        assert cache.flush() == 1
        assert cache.flush() == 0  # nothing dirty anymore
        fresh = AnnotationCache(tmp_path)
        assert fresh.lookup(FP, WORDS) == LABELS
        assert fresh.misses == 0

    def test_corrupt_shard_is_a_miss(self, cache, tmp_path):
        cache.store(FP, WORDS, LABELS)
        cache.flush()
        for path in tmp_path.glob("anno-*.bin"):
            path.write_bytes(b"not marshal data")
        fresh = AnnotationCache(tmp_path)
        assert fresh.lookup(FP, WORDS) is None

    def test_version_mismatch_is_a_miss(self, cache, tmp_path):
        cache.store(FP, WORDS, LABELS)
        cache.flush()
        for path in tmp_path.glob("anno-*.bin"):
            payload = marshal.loads(path.read_bytes())
            payload["version"] = CACHE_FORMAT_VERSION + 1
            path.write_bytes(marshal.dumps(payload))
        fresh = AnnotationCache(tmp_path)
        assert fresh.lookup(FP, WORDS) is None

    def test_autosave_after_n_stores(self, tmp_path):
        cache = AnnotationCache(tmp_path, autosave_every=2)
        cache.store(FP, ["one"], ("A",))
        assert not list(tmp_path.glob("anno-*.bin"))
        cache.store(FP, ["two"], ("B",))
        assert list(tmp_path.glob("anno-*.bin"))

    def test_clear_drops_both_tiers(self, cache, tmp_path):
        cache.store(FP, WORDS, LABELS)
        cache.flush()
        assert cache.clear() >= 1
        assert cache.n_entries == 0
        assert not list(tmp_path.glob("anno-*.bin"))
        assert cache.lookup(FP, WORDS) is None


def _same_shard_sentences(n):
    """Distinct single-word sentences that all hash to one shard."""
    target = AnnotationCache._shard_of(sentence_key(["w0"]))
    found = [["w0"]]
    index = 1
    while len(found) < n:
        candidate = [f"w{index}"]
        if AnnotationCache._shard_of(sentence_key(candidate)) == target:
            found.append(candidate)
        index += 1
    return found


class TestCrossProcessFlush:
    def test_flush_merges_entries_already_on_disk(self, tmp_path):
        """Two cache instances (stand-ins for two processes) that both
        loaded a shard before either flushed must union their entries,
        not last-writer-wins."""
        first_words, second_words = _same_shard_sentences(2)
        first = AnnotationCache(tmp_path, autosave_every=None)
        second = AnnotationCache(tmp_path, autosave_every=None)
        first.store(FP, first_words, ("A",))
        second.store(FP, second_words, ("B",))
        assert first.flush() == 1
        assert second.flush() == 1
        fresh = AnnotationCache(tmp_path)
        assert fresh.lookup(FP, first_words) == ("A",)
        assert fresh.lookup(FP, second_words) == ("B",)
        assert fresh.misses == 0

    def test_flush_folds_sibling_entries_into_memory_tier(self,
                                                          tmp_path):
        """Entries merged in from disk during a flush serve later
        lookups in the flushing process without touching disk again."""
        first_words, second_words = _same_shard_sentences(2)
        first = AnnotationCache(tmp_path, autosave_every=None)
        second = AnnotationCache(tmp_path, autosave_every=None)
        second.store(FP, second_words, ("B",))
        first.store(FP, first_words, ("A",))
        first.flush()
        second.flush()
        assert second.lookup(FP, first_words) == ("A",)

    def test_own_entries_win_key_collisions(self, tmp_path):
        words = ["collide"]
        first = AnnotationCache(tmp_path, autosave_every=None)
        second = AnnotationCache(tmp_path, autosave_every=None)
        first.store(FP, words, ("OLD",))
        second.store(FP, words, ("NEW",))
        first.flush()
        second.flush()
        assert AnnotationCache(tmp_path).lookup(FP, words) == ("NEW",)

    def test_two_os_processes_flush_without_losing_entries(self,
                                                           tmp_path):
        """Regression: two real processes that both load an empty
        shard, then flush one entry each, must both survive."""
        import subprocess
        import sys
        import textwrap

        first_words, second_words = _same_shard_sentences(2)
        script = textwrap.dedent("""
            import sys, time
            from pathlib import Path
            from repro.nlp.anno_cache import AnnotationCache

            cache_dir, word, own_marker, other_marker = sys.argv[1:5]
            cache = AnnotationCache(cache_dir, autosave_every=None)
            cache.store("%s", [word], (word.upper(),))
            Path(own_marker).write_text("ready")
            deadline = time.monotonic() + 30
            while not Path(other_marker).exists():
                if time.monotonic() > deadline:
                    sys.exit(2)
                time.sleep(0.01)
            cache.flush()
        """ % FP)
        import os

        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        cache_dir = tmp_path / "cache"
        markers = [tmp_path / "m1", tmp_path / "m2"]
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(cache_dir), words[0],
                 str(own), str(other)],
                env={**os.environ, "PYTHONPATH": src_dir})
            for words, own, other in [
                (first_words, markers[0], markers[1]),
                (second_words, markers[1], markers[0])]
        ]
        for proc in procs:
            assert proc.wait(timeout=60) == 0
        fresh = AnnotationCache(cache_dir)
        assert fresh.lookup(FP, first_words) == (first_words[0].upper(),)
        assert fresh.lookup(FP, second_words) == \
            (second_words[0].upper(),)


class TestExecutorSurfacing:
    def _plan_with_cached_operator(self, cache):
        from repro.dataflow.operators import MapOperator
        from repro.dataflow.plan import LogicalPlan

        def annotate(record):
            hit = cache.lookup(FP, [record])
            if hit is None:
                cache.store(FP, [record], (record.upper(),))
                return record.upper()
            return hit[0]

        operator = MapOperator("cached_op", annotate)
        operator.annotation_cache = cache
        plan = LogicalPlan()
        node = plan.add(operator)
        plan.mark_sink("out", node)
        return plan

    def test_local_executor_reports_cache_traffic(self, cache):
        from repro.dataflow.executor import LocalExecutor

        plan = self._plan_with_cached_operator(cache)
        _outputs, report = LocalExecutor().execute(
            plan, ["a", "b", "a", "b", "c"])
        stage = report.operator_stats[0]
        assert (stage.cache_hits, stage.cache_misses) == (2, 3)
        as_dict = report.to_dict()
        assert as_dict["annotation_cache_hits"] == 2
        assert as_dict["annotation_cache_misses"] == 3
        assert as_dict["stages"][0]["cache_hits"] == 2

    def test_streaming_executor_reports_cache_traffic(self, cache):
        from repro.dataflow.fusion import StreamingExecutor

        plan = self._plan_with_cached_operator(cache)
        _outputs, report = StreamingExecutor().execute(
            plan, ["a", "b", "a", "b", "c"])
        assert report.annotation_cache_hits == 2
        assert report.annotation_cache_misses == 3

    def test_run_flow_flushes_caches(self, cache, tmp_path):
        from repro.core.flows import run_flow

        plan = self._plan_with_cached_operator(cache)
        run_flow(plan, ["a", "b"], mode="sequential")
        assert list(tmp_path.glob("anno-*.bin"))
