"""Equivalence tests for the batched POS decode path.

``tag_batch`` (and the padded ``_FrozenHmm.decode_batch`` kernel
under it) must be bit-identical to mapping per-sentence ``tag`` over
the batch — same tags, same tie-breaking, same crash and cache
semantics — at any batch composition: mixed lengths, empty sentences,
duplicates, unknown shapes.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.anno_cache import AnnotationCache
from repro.nlp.pos_hmm import HmmPosTagger, TaggerCrash

TAGS = ["NN", "NNS", "VB", "VBD", "JJ", "DT", "IN", "CC", "."]
WORDS = ["the", "a", "study", "studies", "patient", "patients", "shows",
         "showed", "response", "dose", "large", "small", "of", "in",
         "and", "p53", "alpha-2", "TNF", ".", ","]
UNKNOWNS = ["zzqx", "Xenovir", "WHO", "42", "p27-kip", "run-of-9",
            "μg", "Unseen"]


def _random_training(rng, n_sentences):
    sentences = []
    for _ in range(n_sentences):
        length = rng.randint(1, 14)
        sentences.append([(rng.choice(WORDS), rng.choice(TAGS))
                          for _ in range(length)])
    return sentences


def _random_batch(rng, n_sentences, allow_empty=False):
    sentences = []
    for _ in range(n_sentences):
        length = rng.randint(0 if allow_empty else 1, 16)
        pool = WORDS if rng.random() < 0.5 else WORDS + UNKNOWNS
        sentences.append([rng.choice(pool) for _ in range(length)])
    return sentences


def _trained(seed, n_sentences=120, freeze=True):
    tagger = HmmPosTagger()
    tagger.train(_random_training(random.Random(seed), n_sentences))
    if freeze:
        tagger.freeze()
    return tagger


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_frozen_batch_matches_per_sentence(seed):
    tagger = _trained(seed)
    batch = _random_batch(random.Random(seed + 100), 60,
                          allow_empty=True)
    assert tagger.tag_batch(batch) == [tagger.tag(s) for s in batch]


def test_batch_matches_reference_kernel():
    tagger = _trained(7)
    batch = _random_batch(random.Random(77), 40)
    assert tagger.tag_batch(batch) == \
        [tagger.tag_reference(s) for s in batch]


@given(st.lists(st.lists(st.sampled_from(WORDS + UNKNOWNS),
                         max_size=12), max_size=10))
@settings(max_examples=60, deadline=None)
def test_batch_equivalence_property(batch):
    tagger = _TAGGER
    assert tagger.tag_batch(batch) == [tagger.tag(s) for s in batch]


_TAGGER = _trained(13)


def test_unfrozen_batch_matches_per_sentence():
    tagger = _trained(5, freeze=False)
    batch = _random_batch(random.Random(55), 20)
    assert not tagger.frozen
    assert tagger.tag_batch(batch) == [tagger.tag(s) for s in batch]


def test_beam_batch_falls_back_per_sentence():
    tagger = _trained(6, freeze=False)
    tagger.freeze(beam_width=2)
    batch = _random_batch(random.Random(66), 20)
    assert tagger.tag_batch(batch) == [tagger.tag(s) for s in batch]


def test_empty_and_singleton_batches():
    tagger = _trained(8)
    assert tagger.tag_batch([]) == []
    assert tagger.tag_batch([[]]) == [[]]
    sentence = ["the", "patient", "showed", "response"]
    assert tagger.tag_batch([sentence]) == [tagger.tag(sentence)]


def test_batch_crash_on_over_limit_sentence():
    tagger = HmmPosTagger(crash_token_limit=5)
    tagger.train([[("w", "NN")] * 3])
    tagger.freeze()
    with pytest.raises(TaggerCrash):
        tagger.tag_batch([["w"] * 2, ["w"] * 6])


def test_untrained_batch_raises():
    with pytest.raises(RuntimeError):
        HmmPosTagger().tag_batch([["w"]])


def test_batch_cache_integration(tmp_path):
    tagger = _trained(9)
    cache = AnnotationCache(tmp_path)
    tagger.annotation_cache = cache
    batch = _random_batch(random.Random(99), 30)
    unique = len({tuple(s) for s in batch})
    cold = tagger.tag_batch(batch)
    assert cache.misses == unique
    assert cache.hits == len(batch) - unique
    warm = tagger.tag_batch(batch)
    assert warm == cold
    assert cache.hits == 2 * len(batch) - unique
    # A fresh uncached tagger agrees sentence-for-sentence.
    bare = _trained(9)
    assert cold == [bare.tag(s) for s in batch]


def test_batch_and_per_sentence_share_cache_entries(tmp_path):
    tagger = _trained(10)
    tagger.annotation_cache = AnnotationCache(tmp_path)
    batch = _random_batch(random.Random(110), 15)
    batched = tagger.tag_batch(batch)
    misses = tagger.annotation_cache.misses
    assert [tagger.tag(s) for s in batch] == batched
    assert tagger.annotation_cache.misses == misses


def test_tag_tokens_batch_matches_tag_tokens():
    from repro.nlp.tokenize import tokenize

    tagger = _trained(12)
    texts = ["The patient showed response.",
             "Large doses of TNF in studies."]
    token_lists = [tokenize(text) for text in texts]
    batched = tagger.tag_tokens_batch(token_lists)
    assert batched == [tagger.tag_tokens(tokens)
                       for tokens in token_lists]
