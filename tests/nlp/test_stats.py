"""Tests for the statistics module (MWW test, JSD)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.nlp.stats import (
    frequency_distribution, jensen_shannon_divergence, kl_divergence,
    mann_whitney_u, mean, median, quantiles,
)


class TestMannWhitney:
    def test_separated_samples_significant(self):
        _u, p = mann_whitney_u(list(range(30)), list(range(100, 130)))
        assert p < 0.001

    def test_identical_samples_not_significant(self):
        _u, p = mann_whitney_u([1, 2, 3, 4, 5] * 6, [1, 2, 3, 4, 5] * 6)
        assert p > 0.5

    def test_symmetry(self):
        a = [1.0, 3.0, 5.0, 7.0, 11.0] * 4
        b = [2.0, 4.0, 6.0, 8.0, 10.0] * 4
        _u1, p1 = mann_whitney_u(a, b)
        _u2, p2 = mann_whitney_u(b, a)
        assert p1 == pytest.approx(p2, abs=1e-9)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])

    def test_ties_handled(self):
        _u, p = mann_whitney_u([1, 1, 1, 2, 2], [1, 2, 2, 2, 3])
        assert 0.0 <= p <= 1.0

    def test_u_statistic_range(self):
        u, _p = mann_whitney_u([1, 2], [3, 4])
        assert 0 <= u <= 4

    @given(st.lists(st.floats(-100, 100), min_size=3, max_size=30),
           st.lists(st.floats(-100, 100), min_size=3, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_property_p_value_in_unit_interval(self, a, b):
        _u, p = mann_whitney_u(a, b)
        assert 0.0 <= p <= 1.0


class TestKlAndJsd:
    def test_kl_zero_for_identical(self):
        d = {"a": 0.5, "b": 0.5}
        assert kl_divergence(d, d) == pytest.approx(0.0, abs=1e-12)

    def test_kl_infinite_on_missing_support(self):
        assert kl_divergence({"a": 1.0}, {"b": 1.0}) == math.inf

    def test_jsd_zero_for_identical(self):
        d = {"a": 2, "b": 3}
        assert jensen_shannon_divergence(d, d) == pytest.approx(0.0,
                                                                abs=1e-12)

    def test_jsd_one_for_disjoint(self):
        assert jensen_shannon_divergence({"a": 1}, {"b": 1}) == \
            pytest.approx(1.0)

    def test_jsd_symmetric(self):
        p = {"a": 1, "b": 2, "c": 3}
        q = {"b": 1, "c": 1, "d": 4}
        assert jensen_shannon_divergence(p, q) == pytest.approx(
            jensen_shannon_divergence(q, p))

    def test_jsd_unnormalized_input_ok(self):
        assert jensen_shannon_divergence({"a": 10, "b": 10},
                                         {"a": 1, "b": 1}) == \
            pytest.approx(0.0, abs=1e-12)

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError):
            jensen_shannon_divergence({}, {"a": 1})

    @given(st.dictionaries(st.sampled_from("abcdefgh"),
                           st.floats(0.01, 10), min_size=1, max_size=8),
           st.dictionaries(st.sampled_from("abcdefgh"),
                           st.floats(0.01, 10), min_size=1, max_size=8))
    @settings(max_examples=150, deadline=None)
    def test_property_jsd_bounded_and_symmetric(self, p, q):
        jsd = jensen_shannon_divergence(p, q)
        assert -1e-9 <= jsd <= 1.0 + 1e-9
        assert jsd == pytest.approx(jensen_shannon_divergence(q, p),
                                    abs=1e-9)


class TestDescriptive:
    def test_frequency_distribution(self):
        dist = frequency_distribution(["a", "a", "b", "c"])
        assert dist == {"a": 0.5, "b": 0.25, "c": 0.25}

    def test_frequency_distribution_empty(self):
        assert frequency_distribution([]) == {}

    def test_mean_median(self):
        assert mean([1, 2, 3]) == 2
        assert median([1, 2, 3, 100]) == 2.5
        assert mean([]) == 0.0

    def test_quantiles(self):
        q25, q50, q75 = quantiles(list(range(101)))
        assert (q25, q50, q75) == (25, 50, 75)

    def test_quantiles_empty(self):
        assert quantiles([]) == [0.0, 0.0, 0.0]


class TestBootstrap:
    def test_interval_contains_mean_for_tight_sample(self):
        from repro.nlp.stats import bootstrap_ci

        low, high = bootstrap_ci([5.0] * 50)
        assert low == high == 5.0

    def test_interval_widens_with_variance(self):
        from repro.nlp.stats import bootstrap_ci

        tight = bootstrap_ci([10.0 + 0.01 * i for i in range(40)], seed=1)
        wide = bootstrap_ci([10.0 + 3.0 * i for i in range(40)], seed=1)
        assert (wide[1] - wide[0]) > (tight[1] - tight[0])

    def test_deterministic(self):
        from repro.nlp.stats import bootstrap_ci

        sample = [1.0, 4.0, 2.0, 8.0, 5.0] * 6
        assert bootstrap_ci(sample, seed=3) == bootstrap_ci(sample, seed=3)

    def test_empty_rejected(self):
        import pytest

        from repro.nlp.stats import bootstrap_ci

        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_low_not_above_high(self):
        from repro.nlp.stats import bootstrap_ci

        low, high = bootstrap_ci([1.0, 9.0, 4.0, 2.0, 7.0] * 4, seed=2)
        assert low <= high
