"""Property tests for URL normalization.

``normalize`` is the crawler's deduplication key, so it must be
idempotent — otherwise the frontier could admit the same page twice —
and it must preserve the parts that make two URLs genuinely different.
"""

from hypothesis import given, strategies as st

from repro.web.urls import host_of, normalize, resolve

hosts = st.from_regex(r"[a-z][a-z0-9-]{0,10}(\.[a-z]{2,7}){1,2}",
                      fullmatch=True)
paths = st.from_regex(r"(/[A-Za-z0-9._~-]{0,8}){0,4}", fullmatch=True)
queries = st.one_of(st.just(""),
                    st.from_regex(r"[a-z]{1,5}=[A-Za-z0-9]{0,6}",
                                  fullmatch=True))
fragments = st.one_of(st.just(""),
                      st.from_regex(r"[A-Za-z0-9]{0,6}", fullmatch=True))
ports = st.sampled_from(["", ":80", ":443", ":8080"])


@st.composite
def urls(draw):
    scheme = draw(st.sampled_from(["http", "https", "HTTP", "Https"]))
    host = draw(hosts)
    if draw(st.booleans()):
        host = host.upper()
    url = f"{scheme}://{host}{draw(ports)}{draw(paths)}"
    query = draw(queries)
    if query:
        url += f"?{query}"
    fragment = draw(fragments)
    if fragment:
        url += f"#{fragment}"
    return url


@given(urls())
def test_normalize_is_idempotent(url):
    once = normalize(url)
    assert normalize(once) == once


@given(urls())
def test_normalize_drops_fragment_and_lowercases_host(url):
    normalized = normalize(url)
    assert "#" not in normalized
    assert host_of(normalized) == host_of(normalized).lower()


@given(urls())
def test_normalize_keeps_query(url):
    query = url.split("#")[0].partition("?")[2]
    normalized = normalize(url)
    assert normalized.partition("?")[2] == query


@given(urls())
def test_fragment_only_variants_collapse(url):
    base = url.split("#")[0]
    assert normalize(base + "#section") == normalize(base)


@given(urls())
def test_resolve_absolute_is_normalize(url):
    lowered = url.lower()
    assert resolve("http://base.example.org/", lowered) == \
        normalize(lowered)
