"""Tests for the deterministic fault-injection layer."""

import pytest

from repro.web.faults import (
    FaultConfig, FaultInjector, FaultRates,
)
from repro.web.server import SimulatedWeb


@pytest.fixture(scope="module")
def faulty_web(webgraph):
    return SimulatedWeb(webgraph, seed=9, error_rate=0.0,
                        timeout_rate=0.0, redirect_rate=0.0,
                        faults=FaultConfig.preset("default", seed=21))


class TestFaultConfig:
    def test_presets(self):
        assert FaultConfig.preset("none") is None
        default = FaultConfig.preset("default")
        assert abs(default.rates.total - 0.20) < 1e-9
        heavy = FaultConfig.preset("heavy")
        assert heavy.rates.total > default.rates.total

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="preset"):
            FaultConfig.preset("catastrophic")

    def test_uniform_split(self):
        config = FaultConfig.uniform(0.25)
        assert abs(config.rates.total - 0.25) < 1e-9
        assert config.dead_host_fraction == 0.0

    def test_uniform_range_checked(self):
        with pytest.raises(ValueError):
            FaultConfig.uniform(1.5)

    def test_with_host_override(self):
        config = FaultConfig.uniform(0.0).with_host(
            "a.example.org", FaultRates(error=1.0))
        injector = FaultInjector(config)
        decision = injector.decide("http://a.example.org/x.html")
        assert decision is not None and decision.kind == "server_error"
        assert injector.decide("http://b.example.org/x.html") is None


class TestDeterminism:
    def test_same_key_same_decision(self):
        config = FaultConfig.uniform(0.5, seed=3)
        a, b = FaultInjector(config), FaultInjector(config)
        for url in [f"http://h{i}.example.org/p.html" for i in range(40)]:
            for attempt in range(3):
                left = a.decide(url, attempt)
                right = b.decide(url, attempt)
                assert left == right

    def test_attempts_draw_fresh_outcomes(self):
        config = FaultConfig.uniform(0.5, seed=3)
        injector = FaultInjector(config)
        urls = [f"http://h{i}.example.org/p.html" for i in range(200)]
        differs = sum(
            1 for url in urls
            if injector.decide(url, 0) != injector.decide(url, 1))
        assert differs > 30  # retries are not doomed to repeat

    def test_traits_stable_and_partitioned(self):
        config = FaultConfig(seed=11, slow_host_fraction=0.3,
                             dead_host_fraction=0.3,
                             flaky_host_fraction=0.3)
        injector = FaultInjector(config)
        hosts = [f"h{i}.example.org" for i in range(300)]
        traits = {host: injector.host_trait(host) for host in hosts}
        again = FaultInjector(config)
        assert all(again.host_trait(h) == t for h, t in traits.items())
        seen = set(traits.values())
        assert {"slow", "dead", "flaky", "ok"} <= seen


class TestInjectedFetches:
    def test_rates_visible_at_scale(self, webgraph):
        web = SimulatedWeb(webgraph, seed=9, error_rate=0.0,
                           timeout_rate=0.0, redirect_rate=0.0,
                           faults=FaultConfig.uniform(0.5, seed=2))
        results = [web.fetch(url) for url in list(webgraph.pages)[:120]]
        failures = [r for r in results if r.failure]
        assert len(failures) > 30
        kinds = {r.failure for r in failures}
        assert {"server_error", "timeout"} <= kinds

    def test_truncated_bodies_flagged_and_shorter(self, webgraph):
        clean = SimulatedWeb(webgraph, seed=9, error_rate=0.0,
                             timeout_rate=0.0, redirect_rate=0.0)
        config = FaultConfig(seed=5, rates=FaultRates(truncate=1.0))
        cut = SimulatedWeb(webgraph, seed=9, error_rate=0.0,
                           timeout_rate=0.0, redirect_rate=0.0,
                           faults=config)
        url = next(u for u, p in webgraph.pages.items()
                   if p.kind == "article"
                   and not p.content_type.startswith("application/"))
        whole = clean.fetch(url)
        truncated = cut.fetch(url)
        assert truncated.truncated and not truncated.ok
        assert truncated.failure == "truncated"
        assert 0 < len(truncated.body) < len(whole.body)
        assert whole.body.startswith(truncated.body)

    def test_rate_limit_carries_retry_after(self, webgraph):
        config = FaultConfig(seed=5, rates=FaultRates(rate_limit=1.0))
        web = SimulatedWeb(webgraph, seed=9, faults=config)
        result = web.fetch(next(iter(webgraph.pages)))
        assert result.status == 429
        assert result.failure == "rate_limited"
        assert result.retry_after >= 2.0

    def test_dead_host_fails_every_attempt(self, webgraph):
        config = FaultConfig(seed=5, dead_host_fraction=1.0)
        web = SimulatedWeb(webgraph, seed=9, faults=config)
        url = next(iter(webgraph.pages))
        for attempt in range(4):
            result = web.fetch(url, attempt=attempt)
            assert result.failure == "connect_failed"
            assert result.status == 0

    def test_flaky_host_recovers_with_clock(self, webgraph):
        config = FaultConfig(seed=5, flaky_host_fraction=1.0,
                             flaky_recovery_mean=100.0)
        web = SimulatedWeb(webgraph, seed=9, error_rate=0.0,
                           timeout_rate=0.0, redirect_rate=0.0,
                           faults=config)
        url = next(u for u, p in webgraph.pages.items()
                   if p.kind == "article")
        early = web.fetch(url, now=0.0)
        assert early.failure == "unavailable" and early.status == 503
        late = web.fetch(url, now=1000.0)  # past any recovery point
        assert late.failure != "unavailable"

    def test_slow_hosts_multiply_latency(self, webgraph):
        url = next(iter(webgraph.pages))
        plain = SimulatedWeb(webgraph, seed=9, error_rate=0.0,
                             timeout_rate=0.0, redirect_rate=0.0)
        slow = SimulatedWeb(webgraph, seed=9, error_rate=0.0,
                            timeout_rate=0.0, redirect_rate=0.0,
                            faults=FaultConfig(seed=5,
                                               slow_host_fraction=1.0,
                                               slow_factor=6.0))
        assert slow.fetch(url).elapsed > 3.0 * plain.fetch(url).elapsed

    def test_redirect_loop_reported(self, webgraph):
        config = FaultConfig(seed=5,
                             rates=FaultRates(redirect_loop=1.0))
        web = SimulatedWeb(webgraph, seed=9, faults=config)
        result = web.fetch(next(iter(webgraph.pages)))
        assert result.failure == "redirect_loop"
        assert not result.ok

    def test_no_faults_without_config(self, webgraph):
        """The fault layer is strictly opt-in."""
        web = SimulatedWeb(webgraph, seed=9, error_rate=0.0,
                           timeout_rate=0.0, redirect_rate=0.0)
        url = next(u for u, p in webgraph.pages.items()
                   if p.kind == "article")
        result = web.fetch(url)
        assert result.failure is None and result.ok


class TestEpochMixing:
    def test_epoch_zero_reproduces_the_historical_stream(self, webgraph):
        config = FaultConfig(seed=5, rates=FaultRates(timeout=0.3, error=0.3))
        injector = FaultInjector(config)
        urls = list(webgraph.pages)[:60]
        for url in urls:
            assert injector.decide(url, 0) == injector.decide(
                url, 0, epoch=0)

    def test_nonzero_epoch_redraws_outcomes(self, webgraph):
        config = FaultConfig(seed=5, rates=FaultRates(timeout=0.3, error=0.3))
        injector = FaultInjector(config)
        urls = list(webgraph.pages)[:60]
        differs = sum(
            1 for url in urls
            if injector.decide(url, 0) != injector.decide(url, 0,
                                                          epoch=1))
        assert differs > 5, "epoch 1 should redraw some fault outcomes"
