"""Tests for the synthetic web graph."""

from repro.web.webgraph import (
    AUTHORITY_HOSTS_BIO, WebGraph, WebGraphConfig, is_trap_url,
    _next_trap_url,
)


class TestConstruction:
    def test_deterministic(self):
        a = WebGraph(WebGraphConfig(n_hosts=25, seed=3))
        b = WebGraph(WebGraphConfig(n_hosts=25, seed=3))
        assert list(a.pages) == list(b.pages)
        assert a.pages[next(iter(a.pages))].outlinks == \
            b.pages[next(iter(b.pages))].outlinks

    def test_authority_hosts_always_present(self, webgraph):
        for host in AUTHORITY_HOSTS_BIO:
            assert host in webgraph.hosts

    def test_every_host_has_front_page(self, webgraph):
        for host in webgraph.hosts:
            assert f"http://{host}/" in webgraph.pages

    def test_outlinks_point_to_real_or_trap_urls(self, webgraph):
        for page in webgraph.pages.values():
            for url in page.outlinks:
                assert url in webgraph.pages or is_trap_url(url)

    def test_noise_class_fractions(self, webgraph):
        articles = [p for p in webgraph.pages.values()
                    if p.kind == "article"]
        binary = sum(1 for p in articles
                     if p.content_type.startswith("application/"))
        foreign = sum(1 for p in articles if p.language != "en")
        assert 0.03 < binary / len(articles) < 0.2
        assert 0.05 < foreign / len(articles) < 0.25

    def test_biomedical_weakly_linked(self, webgraph):
        """Bio pages carry fewer cross-host links than general pages."""
        def cross_host_links(page):
            return sum(1 for u in page.outlinks
                       if not u.startswith(f"http://{page.host}"))
        bio = [cross_host_links(p) for p in webgraph.pages.values()
               if p.biomedical and p.kind == "article"]
        general = [cross_host_links(p) for p in webgraph.pages.values()
                   if not p.biomedical and p.kind == "article"]
        assert sum(bio) / max(1, len(bio)) \
            < sum(general) / max(1, len(general))


class TestContent:
    def test_body_text_cached_and_stable(self, webgraph):
        url = next(u for u, p in webgraph.pages.items()
                   if p.kind == "article" and p.language == "en"
                   and not p.content_type.startswith("application/"))
        assert webgraph.body_text(url) == webgraph.body_text(url)

    def test_foreign_pages_get_foreign_text(self, webgraph):
        page = next((p for p in webgraph.pages.values()
                     if p.language == "de"), None)
        if page is None:
            return  # graph too small to include German pages
        text = webgraph.body_text(page.url)
        assert any(w in text for w in ("der", "die", "und", "nicht"))

    def test_front_page_text_is_short(self, webgraph):
        front = next(p for p in webgraph.pages.values()
                     if p.kind == "front")
        assert len(webgraph.body_text(front.url)) < 400

    def test_short_pages_truncated(self, webgraph):
        short = [p for p in webgraph.pages.values()
                 if p.length_class == "short"]
        for page in short[:5]:
            assert len(webgraph.body_text(page.url)) <= 150

    def test_long_pages_inflated(self, webgraph):
        long_pages = [p for p in webgraph.pages.values()
                      if p.length_class == "long"]
        for page in long_pages[:2]:
            assert len(webgraph.body_text(page.url)) >= 25_000

    def test_gold_document_offsets(self, webgraph):
        url = next(u for u, p in webgraph.pages.items()
                   if p.kind == "article" and p.language == "en"
                   and p.length_class == "normal"
                   and not p.content_type.startswith("application/"))
        gold = webgraph.gold_document(url)
        for sentence in gold.sentences:
            assert gold.text[sentence.start:sentence.end] == sentence.text


class TestTraps:
    def test_next_trap_url_increments(self):
        assert _next_trap_url("http://t/calendar?page=7") == \
            "http://t/calendar?page=8"

    def test_is_trap_url(self):
        assert is_trap_url("http://t/calendar?page=1")
        assert not is_trap_url("http://t/articles/item1.html")
