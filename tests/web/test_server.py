"""Tests for the simulated HTTP layer."""

import pytest

from repro.web.server import FetchResult, SimulatedClock, SimulatedWeb
from repro.web.webgraph import WebGraph, WebGraphConfig


@pytest.fixture(scope="module")
def quiet_web(webgraph):
    """A web without injected errors, for deterministic assertions."""
    return SimulatedWeb(webgraph, seed=9, error_rate=0.0, timeout_rate=0.0,
                        redirect_rate=0.0)


class TestClock:
    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(2.5)
        assert clock.now == 2.5

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)


class TestFetch:
    def test_fetch_article_ok(self, quiet_web, webgraph):
        url = next(u for u, p in webgraph.pages.items()
                   if p.kind == "article" and p.language == "en"
                   and not p.content_type.startswith("application/"))
        result = quiet_web.fetch(url)
        assert result.ok
        assert result.content_type == "text/html"
        assert "<html" in result.body.lower()
        assert result.elapsed > 0

    def test_fetch_unknown_url_404(self, quiet_web):
        result = quiet_web.fetch("http://nowhere.example.org/missing.html")
        assert result.status == 404

    def test_fetch_robots(self, quiet_web, webgraph):
        host = next(iter(webgraph.hosts))
        result = quiet_web.fetch(f"http://{host}/robots.txt")
        assert result.ok
        assert result.content_type == "text/plain"
        assert "User-agent" in result.body

    def test_binary_pages_have_magic_bytes(self, quiet_web, webgraph):
        url = next(u for u, p in webgraph.pages.items()
                   if p.content_type == "application/pdf")
        result = quiet_web.fetch(url)
        assert result.body.startswith("%PDF")

    def test_trap_pages_generated_unboundedly(self, quiet_web, webgraph):
        trap_host = next((h for h, s in webgraph.hosts.items()
                          if s.kind == "trap"), None)
        if trap_host is None:
            pytest.skip("graph has no trap host")
        result = quiet_web.fetch(f"http://{trap_host}/calendar?page=500")
        assert result.ok
        assert "calendar?page=501" in result.body

    def test_deterministic_fetches(self, webgraph):
        a = SimulatedWeb(webgraph, seed=4)
        b = SimulatedWeb(webgraph, seed=4)
        url = next(iter(webgraph.pages))
        assert a.fetch(url).body == b.fetch(url).body

    def test_fetch_pure_under_call_history(self, webgraph):
        """A fetch is a pure function of (url, attempt, now) — the
        fetch history must not leak into rendered bodies.  Checkpoint
        resume (which replays from mid-crawl) depends on this."""
        urls = list(webgraph.pages)[:30]
        fresh = SimulatedWeb(webgraph, seed=4)
        warmed = SimulatedWeb(webgraph, seed=4)
        for url in urls:  # different call history
            warmed.fetch(url)
        for url in reversed(urls):
            a = fresh.fetch(url)
            b = warmed.fetch(url)
            assert a.body == b.body
            assert a.elapsed == b.elapsed

    def test_error_injection_rates(self, webgraph):
        web = SimulatedWeb(webgraph, seed=8, error_rate=0.5,
                           timeout_rate=0.2, redirect_rate=0.0)
        statuses = [web.fetch(u).status for u in list(webgraph.pages)[:80]]
        assert statuses.count(500) > 10
        assert statuses.count(0) > 2

    def test_redirects_annotated(self, webgraph):
        web = SimulatedWeb(webgraph, seed=8, error_rate=0.0,
                           timeout_rate=0.0, redirect_rate=1.0)
        url = next(u for u, p in webgraph.pages.items()
                   if p.kind == "article" and p.language == "en"
                   and not p.content_type.startswith("application/"))
        result = web.fetch(url)
        assert result.redirected_from == url
        assert result.url != url

    def test_fetch_count_increments(self, webgraph):
        web = SimulatedWeb(webgraph, seed=10)
        web.fetch(next(iter(webgraph.pages)))
        web.fetch(next(iter(webgraph.pages)))
        assert web.fetch_count >= 2


class TestFetchResult:
    def test_ok_property(self):
        assert FetchResult("u", 200, "text/html", "", 0.1).ok
        assert not FetchResult("u", 404, "text/html", "", 0.1).ok
        assert not FetchResult("u", 0, "", "", 0.1).ok


class TestContentChurn:
    def _web(self, webgraph, churn=0.5):
        return SimulatedWeb(webgraph, seed=8, error_rate=0.0,
                            timeout_rate=0.0, redirect_rate=0.0,
                            churn_rate=churn)

    def _article(self, webgraph):
        return next(u for u, p in webgraph.pages.items()
                    if p.kind == "article" and p.language == "en"
                    and p.content_type == "text/html")

    def test_epoch_zero_is_the_original_snapshot(self, webgraph):
        web = self._web(webgraph)
        url = self._article(webgraph)
        assert web.content_version(url) == 0
        static = self._web(webgraph, churn=0.0)
        static.set_epoch(5)
        assert static.content_version(url) == 0

    def test_versions_are_monotone_and_deterministic(self, webgraph):
        url = self._article(webgraph)
        versions = []
        for epoch in range(6):
            web = self._web(webgraph)
            web.set_epoch(epoch)
            versions.append(web.content_version(url))
        assert versions == sorted(versions)
        assert versions[-1] >= 1  # churn 0.5 over 5 epochs
        # Incremental cache agrees with from-scratch computation.
        incremental = self._web(webgraph)
        for epoch in range(6):
            incremental.set_epoch(epoch)
            assert incremental.content_version(url) == versions[epoch]

    def test_conditional_fetch_returns_304_only_on_match(self, webgraph):
        web = self._web(webgraph)
        url = self._article(webgraph)
        web.set_epoch(4)
        version = web.content_version(url)
        hit = web.fetch(url, if_version=version)
        assert hit.not_modified and hit.status == 304 and hit.body == ""
        assert hit.content_version == version
        assert not hit.ok
        miss = web.fetch(url, if_version=version + 1)
        assert not miss.not_modified and miss.status == 200
        assert miss.body

    def test_bodies_change_with_version_and_replay_exactly(
            self, webgraph):
        web = self._web(webgraph)
        url = self._article(webgraph)
        original = web.fetch(url).body
        web.set_epoch(4)
        version = web.content_version(url)
        assert version >= 1
        evolved = web.fetch(url).body
        assert evolved != original
        assert web.fetch(url).body == evolved  # same epoch, same bytes
        fresh = self._web(webgraph)
        fresh.set_epoch(4)
        assert fresh.fetch(url).body == evolved  # instance-independent
        web.set_epoch(0)
        assert web.fetch(url).body == original

    def test_negative_epoch_rejected(self, webgraph):
        with pytest.raises(ValueError):
            self._web(webgraph).set_epoch(-1)
