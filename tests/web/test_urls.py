"""Tests for URL helpers."""

from repro.web.urls import (
    domain_of, extension_of, host_of, normalize, path_of, resolve,
)


class TestHostAndDomain:
    def test_host_of(self):
        assert host_of("http://WWW.Example.COM/a/b") == "www.example.com"

    def test_host_of_unparseable(self):
        assert host_of("not a url") == ""

    def test_domain_of_regular(self):
        assert domain_of("http://www.foo.com/x") == "foo.com"

    def test_domain_of_synthetic_example_suffix(self):
        # <name>.example.<tld> keeps three labels (synthetic web rule).
        assert domain_of("http://nih.example.gov/") == "nih.example.gov"

    def test_domain_of_short_host(self):
        assert domain_of("http://localhost/") == "localhost"


class TestNormalize:
    def test_lowercases_scheme_and_host(self):
        assert normalize("HTTP://EXAMPLE.COM/Path") == \
            "http://example.com/Path"

    def test_drops_fragment(self):
        assert normalize("http://a.com/x#frag") == "http://a.com/x"

    def test_removes_default_http_port(self):
        assert normalize("http://a.com:80/x") == "http://a.com/x"

    def test_removes_default_https_port(self):
        assert normalize("https://a.com:443/x") == "https://a.com/x"

    def test_adds_root_path(self):
        assert normalize("http://a.com") == "http://a.com/"

    def test_keeps_query(self):
        assert normalize("http://a.com/x?p=1") == "http://a.com/x?p=1"

    def test_idempotent(self):
        url = "http://A.com:80/x?q=2#z"
        assert normalize(normalize(url)) == normalize(url)


class TestResolve:
    def test_relative_path(self):
        assert resolve("http://a.com/dir/page.html", "other.html") == \
            "http://a.com/dir/other.html"

    def test_absolute_path(self):
        assert resolve("http://a.com/dir/page.html", "/root.html") == \
            "http://a.com/root.html"

    def test_absolute_url(self):
        assert resolve("http://a.com/", "http://b.com/x") == "http://b.com/x"

    def test_parent_directory(self):
        assert resolve("http://a.com/d1/d2/p.html", "../up.html") == \
            "http://a.com/d1/up.html"


class TestPathExtension:
    def test_path_of(self):
        assert path_of("http://a.com/x/y.html?q=1") == "/x/y.html"

    def test_path_of_root(self):
        assert path_of("http://a.com") == "/"

    def test_extension(self):
        assert extension_of("http://a.com/f.PDF") == "pdf"

    def test_extension_with_query(self):
        assert extension_of("http://a.com/f.html?x=1.2") == "html"

    def test_no_extension(self):
        assert extension_of("http://a.com/dir/") == ""
