"""Tests for the defect-injecting HTML renderer."""

from repro.web.htmlgen import DEFECT_CLASSES, PageRenderer


def _render(defect_rate=0.0, seed=1, **kwargs):
    renderer = PageRenderer(seed=seed, defect_rate=defect_rate)
    return renderer.render(
        url="http://h.example.org/a.html", title="A title",
        body_text=("First sentence of the article. Second sentence with "
                   "more words. Third one closes the paragraph."),
        outlinks=["http://other.example.org/x.html"], **kwargs)


class TestRendering:
    def test_contains_title_and_body(self):
        html = _render()
        assert "A title" in html
        assert "First sentence of the article." in html

    def test_contains_boilerplate_chrome(self):
        html = _render()
        assert 'class="nav"' in html
        assert 'class="footer"' in html
        assert 'class="ad"' in html

    def test_outlinks_rendered_as_anchors(self):
        html = _render()
        assert 'href="http://other.example.org/x.html"' in html

    def test_clean_page_is_well_formed_enough(self):
        html = _render(defect_rate=0.0)
        assert html.count("<div") == html.count("</div>")
        assert html.rstrip().endswith("</html>")

    def test_deterministic(self):
        assert _render(seed=5) == _render(seed=5)

    def test_defect_rate_one_always_corrupts(self):
        clean = _render(defect_rate=0.0, seed=7)
        dirty = PageRenderer(seed=7, defect_rate=1.0).render(
            url="http://h.example.org/a.html", title="A title",
            body_text=clean, outlinks=[])
        # A corrupted page differs from its clean rendering in at
        # least one defect class marker.
        assert dirty != _render(defect_rate=0.0, seed=7)

    def test_defect_classes_nonempty(self):
        assert len(DEFECT_CLASSES) >= 6

    def test_most_pages_defective_at_default_rate(self):
        from repro.html.repair import detect_markup_issues

        renderer = PageRenderer(seed=11)  # default 0.95, as per [19]
        defective = 0
        for i in range(40):
            html = renderer.render(f"http://h{i}.example.org/", "t",
                                   "Some body text here. And more text.",
                                   [], page_index=i)
            if detect_markup_issues(html):
                defective += 1
        # detect_markup_issues is a screen, not exhaustive: some
        # defect classes (pure mis-nesting swaps) evade it.
        assert defective >= 24
