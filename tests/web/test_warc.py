"""Tests for the WARC-style archive."""

import pytest

from repro.web.server import FetchResult
from repro.web.warc import ArchivedWeb, WarcRecord, WarcWriter, read_warc


def _fetch(url="http://h.example.org/a.html", body="<html>hi</html>"):
    return FetchResult(url, 200, "text/html", body, 0.2)


class TestRoundTrip:
    def test_write_and_read(self, tmp_path):
        path = tmp_path / "crawl.warc"
        with WarcWriter(path) as writer:
            writer.write_fetch(_fetch(), timestamp=1.5)
            writer.write_fetch(_fetch("http://h.example.org/b.html",
                                      "second page body"))
        records = list(read_warc(path))
        assert len(records) == 2
        assert records[0].url == "http://h.example.org/a.html"
        assert records[0].payload == "<html>hi</html>"
        assert records[0].timestamp == 1.5
        assert records[1].payload == "second page body"

    def test_payload_with_crlf_and_unicode(self, tmp_path):
        body = "line1\r\n\r\nline2 — naïve café"
        path = tmp_path / "u.warc"
        with WarcWriter(path) as writer:
            writer.write_fetch(_fetch(body=body))
        record = next(read_warc(path))
        assert record.payload == body

    def test_append_mode(self, tmp_path):
        path = tmp_path / "a.warc"
        with WarcWriter(path) as writer:
            writer.write_fetch(_fetch())
        with WarcWriter(path) as writer:
            writer.write_fetch(_fetch("http://h.example.org/2.html"))
        assert len(list(read_warc(path))) == 2

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.warc"
        path.write_text("NOT A WARC\r\n\r\njunk")
        with pytest.raises(ValueError):
            list(read_warc(path))


class TestArchivedWeb:
    def test_replay(self, tmp_path):
        path = tmp_path / "crawl.warc"
        with WarcWriter(path) as writer:
            writer.write_fetch(_fetch())
        archive = ArchivedWeb(path)
        assert len(archive) == 1
        result = archive.fetch("http://h.example.org/a.html")
        assert result.ok
        assert result.body == "<html>hi</html>"
        assert archive.fetch("http://missing/").status == 404

    def test_archive_then_reanalyze(self, tmp_path, context):
        """Archive a few simulated fetches, then run boilerplate
        extraction from the replayed archive."""
        from repro.html.boilerplate import extract_content

        graph = context.webgraph
        urls = [u for u, p in graph.pages.items()
                if p.kind == "article" and p.language == "en"
                and not p.content_type.startswith("application/")][:5]
        path = tmp_path / "c.warc"
        with WarcWriter(path) as writer:
            for url in urls:
                writer.write_fetch(context.web.fetch(url))
        archive = ArchivedWeb(path)
        extracted = [extract_content(archive.fetch(url).body)
                     for url in urls if archive.fetch(url).ok]
        assert any(extracted)

    def test_record_to_fetch_result(self):
        record = WarcRecord("http://x/", 200, "text/html", "body")
        result = record.to_fetch_result()
        assert result.ok and result.body == "body"
