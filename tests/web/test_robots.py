"""Tests for robots.txt parsing and policy semantics."""

from repro.web.robots import RobotsPolicy, parse_robots, render_robots


class TestParseRobots:
    def test_empty_allows_everything(self):
        policy = parse_robots("")
        assert policy.allows("http://h/x")

    def test_disallow_prefix(self):
        policy = parse_robots("User-agent: *\nDisallow: /private/\n")
        assert not policy.allows("http://h/private/page.html")
        assert policy.allows("http://h/public/page.html")

    def test_allow_overrides_with_longer_prefix(self):
        policy = parse_robots(
            "User-agent: *\nDisallow: /a/\nAllow: /a/open/\n")
        assert policy.allows("http://h/a/open/x")
        assert not policy.allows("http://h/a/closed/x")

    def test_crawl_delay(self):
        policy = parse_robots("User-agent: *\nCrawl-delay: 2.5\n")
        assert policy.crawl_delay == 2.5

    def test_bad_crawl_delay_ignored(self):
        policy = parse_robots("User-agent: *\nCrawl-delay: soon\n")
        assert policy.crawl_delay == 0.0

    def test_specific_agent_preferred(self):
        text = ("User-agent: *\nDisallow: /all/\n\n"
                "User-agent: repro\nDisallow: /repro-only/\n")
        policy = parse_robots(text, agent="repro")
        assert not policy.allows("http://h/repro-only/x")
        assert policy.allows("http://h/all/x")

    def test_agent_falls_back_to_star(self):
        text = "User-agent: *\nDisallow: /x/\n"
        policy = parse_robots(text, agent="somebody")
        assert not policy.allows("http://h/x/1")

    def test_comments_and_blank_lines(self):
        text = "# hello\nUser-agent: *\n\nDisallow: /a/ # inline\n"
        policy = parse_robots(text)
        assert not policy.allows("http://h/a/p")

    def test_grouped_agents_share_rules(self):
        text = "User-agent: a\nUser-agent: b\nDisallow: /z/\n"
        for agent in ("a", "b"):
            assert not parse_robots(text, agent=agent).allows("http://h/z/1")

    def test_unknown_directives_ignored(self):
        policy = parse_robots("User-agent: *\nSitemap: http://h/s.xml\n")
        assert policy.allows("http://h/x")


class TestRenderRobots:
    def test_round_trip(self):
        policy = RobotsPolicy(disallow=["/p/"], allow=["/p/ok/"],
                              crawl_delay=1.0)
        parsed = parse_robots(render_robots(policy))
        assert parsed.disallow == ["/p/"]
        assert parsed.allow == ["/p/ok/"]
        assert parsed.crawl_delay == 1.0


class TestPolicySemantics:
    def test_empty_policy(self):
        assert RobotsPolicy().allows("http://h/anything")

    def test_root_disallow_blocks_all(self):
        policy = RobotsPolicy(disallow=["/"])
        assert not policy.allows("http://h/")
        assert not policy.allows("http://h/x/y")
