"""Tests for the logistic-regression classifier."""

import functools

import pytest

from repro.classify.evaluation import cross_validate, mean_precision_recall
from repro.classify.logistic import LogisticTextClassifier
from repro.corpora.goldstandard import build_classifier_gold


@pytest.fixture(scope="module")
def gold(vocabulary):
    return build_classifier_gold(vocabulary, 60)


class TestLogistic:
    def test_untrained_raises(self):
        with pytest.raises(RuntimeError):
            LogisticTextClassifier().predict("text")

    def test_separates_classes(self, gold):
        model = LogisticTextClassifier(epochs=4).fit(gold)
        correct = sum(model.predict(text) == label
                      for text, label in gold)
        assert correct / len(gold) > 0.8

    def test_probability_bounds(self, gold):
        model = LogisticTextClassifier(epochs=2).fit(gold[:40])
        for text, _label in gold[:10]:
            assert 0.0 <= model.probability(text) <= 1.0

    def test_online_update_moves_probability(self, gold):
        model = LogisticTextClassifier(epochs=1).fit(gold[:30])
        text = gold[31][0]
        before = model.probability(text)
        for _ in range(30):
            model.update(text, True)
        assert model.probability(text) > before

    def test_deterministic_fit(self, gold):
        a = LogisticTextClassifier(seed=3, epochs=2).fit(gold[:30])
        b = LogisticTextClassifier(seed=3, epochs=2).fit(gold[:30])
        assert a.probability(gold[0][0]) == b.probability(gold[0][0])

    def test_cross_validation_competitive_with_nb(self, gold):
        """Discriminative vs generative on the same gold set: logistic
        regression must reach a usable accuracy band (the comparison
        the paper's classifier-choice discussion implies)."""
        factory = functools.partial(LogisticTextClassifier, epochs=4)
        precision, recall = mean_precision_recall(
            cross_validate(factory, gold, folds=5))
        assert precision > 0.75
        assert recall > 0.6

    def test_usable_as_crawler_classifier(self, context, gold):
        from repro.crawler.crawl import CrawlConfig, FocusedCrawler

        model = LogisticTextClassifier(epochs=3,
                                       decision_threshold=0.7).fit(gold)
        crawler = FocusedCrawler(context.web, model,
                                 context.build_filter_chain(),
                                 CrawlConfig(max_pages=80))
        result = crawler.crawl(context.seed_batch("second").urls)
        assert result.pages_fetched > 0
