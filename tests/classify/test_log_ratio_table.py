"""The precomputed log-ratio table must be invisible.

``NaiveBayesClassifier.log_odds`` serves scores from a per-word
``log(p_pos) - log(p_neg)`` table rebuilt lazily after every model
change; ``log_odds_reference`` keeps the direct computation.  The two
must agree *bit for bit* — the crawler's sequential/parallel
equivalence guarantee leans on it — for randomized texts and for any
interleaving of online-learning updates.
"""

from __future__ import annotations

import random

import pytest

from repro.classify.naive_bayes import NaiveBayesClassifier

_POSITIVE = ["gene", "tumor", "protein", "therapy", "receptor",
             "carcinoma", "kinase", "mutation", "pathway", "clinical"]
_NEGATIVE = ["football", "recipe", "holiday", "guitar", "election",
             "weather", "fashion", "gossip", "travel", "gardening"]
_SHARED = ["report", "study", "group", "result", "people", "year"]


def _text(rng: random.Random, pool: list[str], length: int) -> str:
    return " ".join(rng.choice(pool + _SHARED) for _ in range(length))


def _fitted(rng: random.Random, n: int = 30) -> NaiveBayesClassifier:
    examples = []
    for _ in range(n):
        examples.append((_text(rng, _POSITIVE, rng.randint(5, 40)), True))
        examples.append((_text(rng, _NEGATIVE, rng.randint(5, 40)), False))
    return NaiveBayesClassifier().fit(examples)


class TestLogRatioTable:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_bit_identical_to_reference(self, seed):
        rng = random.Random(seed)
        model = _fitted(rng)
        for _ in range(50):
            pool = rng.choice([_POSITIVE, _NEGATIVE, _SHARED])
            text = _text(rng, pool, rng.randint(1, 60))
            assert model.log_odds(text) == model.log_odds_reference(text)

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_interleaved_online_updates_invalidate_table(self, seed):
        """Score, update, score again: the table must track every
        incremental model change exactly."""
        rng = random.Random(seed)
        model = _fitted(rng, n=10)
        for _ in range(40):
            text = _text(rng, rng.choice([_POSITIVE, _NEGATIVE]),
                         rng.randint(3, 30))
            assert model.log_odds(text) == model.log_odds_reference(text)
            if rng.random() < 0.6:
                model.update(_text(rng, rng.choice([_POSITIVE, _NEGATIVE]),
                                   rng.randint(3, 30)),
                             rng.random() < 0.5)

    def test_unknown_words_ignored(self):
        rng = random.Random(99)
        model = _fitted(rng, n=5)
        prior_only = model.log_odds("zzzqx vvvwk")
        assert prior_only == model.log_odds_reference("zzzqx vvvwk")
        assert prior_only == model.log_odds("")

    def test_precompute_is_idempotent_and_matches(self):
        rng = random.Random(7)
        model = _fitted(rng, n=8)
        text = _text(rng, _POSITIVE, 25)
        lazy = model.log_odds(text)
        model.precompute()
        model.precompute()
        assert model.log_odds(text) == lazy

    def test_precompute_on_untrained_model_is_noop(self):
        model = NaiveBayesClassifier()
        model.precompute()  # must not raise
        with pytest.raises(RuntimeError):
            model.log_odds("anything")
        with pytest.raises(RuntimeError):
            model.log_odds_reference("anything")

    def test_predict_unchanged_by_table(self):
        rng = random.Random(5)
        model = _fitted(rng)
        positive = _text(rng, _POSITIVE, 30)
        negative = _text(rng, _NEGATIVE, 30)
        assert model.predict(positive) is True
        assert model.predict(negative) is False
