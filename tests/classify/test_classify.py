"""Tests for bag-of-words features and Naïve Bayes classification."""

import functools

import pytest

from repro.classify.evaluation import (
    ClassificationReport, cross_validate, mean_precision_recall,
    precision_recall,
)
from repro.classify.features import STOPWORDS, BagOfWords
from repro.classify.naive_bayes import NaiveBayesClassifier
from repro.corpora.goldstandard import build_classifier_gold


@pytest.fixture(scope="module")
def gold(vocabulary):
    return build_classifier_gold(vocabulary, 60)


@pytest.fixture(scope="module")
def trained(gold):
    return NaiveBayesClassifier().fit(gold)


class TestBagOfWords:
    def test_counts(self):
        vector = BagOfWords().vector("Tumor tumor growth")
        assert vector["tumor"] == 2
        assert vector["growth"] == 1

    def test_stopwords_removed(self):
        vector = BagOfWords().vector("the cat and the dog")
        assert "the" not in vector and "and" not in vector

    def test_stopwords_kept_when_disabled(self):
        vector = BagOfWords(use_stopwords=False).vector("the cat")
        assert "the" in vector

    def test_min_length(self):
        vector = BagOfWords(min_length=5).vector("tiny word longword")
        assert "longword" in vector and "word" not in vector and \
            "tiny" not in vector

    def test_stopword_list_plausible(self):
        assert {"the", "and", "of"} <= STOPWORDS


class TestNaiveBayes:
    def test_untrained_raises(self):
        with pytest.raises(RuntimeError):
            NaiveBayesClassifier().predict("text")

    def test_one_class_only_raises(self):
        model = NaiveBayesClassifier()
        model.update("biomedical text", True)
        with pytest.raises(RuntimeError):
            model.predict("anything")

    def test_separates_classes(self, trained, gold):
        correct = sum(trained.predict(text) == label
                      for text, label in gold[:40])
        assert correct >= 32

    def test_probability_in_unit_interval(self, trained, gold):
        for text, _label in gold[:20]:
            assert 0.0 <= trained.probability(text) <= 1.0

    def test_incremental_update_shifts_model(self, gold):
        model = NaiveBayesClassifier().fit(gold[:40])
        text = gold[41][0]
        before = model.probability(text)
        for _ in range(25):
            model.update(text, not gold[41][1])
        after = model.probability(text)
        assert before != after

    def test_decision_threshold_gears_precision(self, gold):
        """Higher threshold => fewer accepted pages (the paper gears
        its crawler classifier toward precision this way)."""
        loose = NaiveBayesClassifier(decision_threshold=0.05).fit(gold)
        strict = NaiveBayesClassifier(decision_threshold=0.999).fit(gold)
        texts = [text for text, _l in gold]
        assert (sum(strict.predict(t) for t in texts)
                <= sum(loose.predict(t) for t in texts))

    def test_unknown_words_ignored(self, trained):
        # Scoring must not crash on entirely unseen vocabulary.
        assert 0.0 <= trained.probability("zzz qqq xxx") <= 1.0

    def test_log_odds_sign_matches_prediction(self, trained, gold):
        for text, _label in gold[:10]:
            odds = trained.log_odds(text)
            assert (odds >= 0) == (trained.probability(text) >= 0.5)


class TestEvaluation:
    def test_report_metrics(self):
        report = ClassificationReport(true_positives=8, false_positives=2,
                                      true_negatives=9, false_negatives=1)
        assert report.precision == 0.8
        assert report.recall == pytest.approx(8 / 9)
        assert 0 < report.f1 < 1
        assert report.accuracy == 0.85

    def test_report_empty(self):
        report = ClassificationReport()
        assert report.precision == 0.0 and report.recall == 0.0

    def test_precision_recall_builder(self):
        report = precision_recall([True, True, False], [True, False, False])
        assert report.true_positives == 1
        assert report.false_positives == 1
        assert report.true_negatives == 1

    def test_precision_recall_length_mismatch(self):
        with pytest.raises(ValueError):
            precision_recall([True], [True, False])

    def test_cross_validation_stratified(self, gold):
        reports = cross_validate(NaiveBayesClassifier, gold[:40], folds=4)
        assert len(reports) == 4
        # Every fold's test set contains both classes.
        for report in reports:
            positives = report.true_positives + report.false_negatives
            negatives = report.true_negatives + report.false_positives
            assert positives > 0 and negatives > 0

    def test_cross_validation_band_matches_paper(self, gold):
        """10-fold CV should land near the paper's P=98 % / R=83 %."""
        factory = functools.partial(NaiveBayesClassifier,
                                    decision_threshold=0.9)
        precision, recall = mean_precision_recall(
            cross_validate(factory, gold, folds=10))
        assert precision > 0.85
        assert 0.6 < recall < 1.0
        assert precision > recall  # the precision-geared shape

    def test_too_few_folds(self, gold):
        with pytest.raises(ValueError):
            cross_validate(NaiveBayesClassifier, gold, folds=1)

    def test_more_folds_than_examples(self, gold):
        with pytest.raises(ValueError):
            cross_validate(NaiveBayesClassifier, gold[:4], folds=10)
