"""Shared fixtures.

Expensive artifacts (trained pipeline, web graph, analyzed corpora)
are session-scoped: they are built once and shared read-mostly across
the suite.  Tests that mutate documents must copy them first.
"""

from __future__ import annotations

import pytest

from repro.core.experiment import ReproductionContext, default_context
from repro.corpora.profiles import MEDLINE, RELEVANT
from repro.corpora.textgen import DocumentGenerator
from repro.corpora.vocabulary import BiomedicalVocabulary
from repro.web.server import SimulatedWeb
from repro.web.webgraph import WebGraph, WebGraphConfig


@pytest.fixture(scope="session")
def vocabulary() -> BiomedicalVocabulary:
    return BiomedicalVocabulary(seed=7, n_genes=150, n_diseases=80,
                                n_drugs=80)


@pytest.fixture(scope="session")
def medline_generator(vocabulary) -> DocumentGenerator:
    return DocumentGenerator(vocabulary, MEDLINE, seed=3)


@pytest.fixture(scope="session")
def relevant_generator(vocabulary) -> DocumentGenerator:
    return DocumentGenerator(vocabulary, RELEVANT, seed=4)


@pytest.fixture(scope="session")
def webgraph() -> WebGraph:
    return WebGraph(WebGraphConfig(n_hosts=40, seed=5))


@pytest.fixture(scope="session")
def web(webgraph) -> SimulatedWeb:
    return SimulatedWeb(webgraph, seed=6)


@pytest.fixture(scope="session")
def context() -> ReproductionContext:
    """Small shared experiment context (trains the full pipeline once)."""
    return default_context(corpus_docs=8, n_training_docs=40,
                           crf_iterations=40, n_hosts=40, crawl_pages=300)


@pytest.fixture(scope="session")
def pipeline(context):
    return context.pipeline
