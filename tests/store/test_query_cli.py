"""Query layer and ``repro query`` CLI over the reference store.

The library API, the CLI, and the serve op share one
:class:`~repro.store.query.QueryEngine`; these tests pin the ranking
contract, the filter semantics, and the CLI's typed-error exit path
(exit code 2 + one-line stderr, never a traceback).
"""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.store import QueryEngine, format_fact_table


@pytest.fixture(scope="module")
def engine(reference_store):
    return QueryEngine(reference_store)


@pytest.fixture()
def store_dir(reference_store, tmp_path):
    reference_store.save(tmp_path)
    return str(tmp_path)


class TestQueryEngine:
    def test_facts_ranked_by_corroboration(self, engine):
        facts = engine.facts()
        ranks = [(f["corroboration"], f["support"], f["confidence"])
                 for f in facts]
        assert ranks == sorted(ranks, reverse=True)
        assert facts[0]["predicate"] == "inhibits"

    def test_alias_filter_reaches_canonical_facts(self, engine,
                                                  store_entries):
        drug, _, _ = store_entries
        # Query by the synonym surface; match facts about the entity.
        for surface in (drug.synonyms[0], drug.canonical.upper()):
            facts = engine.facts(alias=surface)
            assert facts
            assert all(f["subject_id"] == drug.term_id
                       or f["object_id"] == drug.term_id
                       for f in facts)

    def test_entity_filter_accepts_id_and_name(self, engine,
                                               store_entries):
        drug, _, _ = store_entries
        by_id = engine.facts(entity=drug.term_id.lower())
        by_name = engine.facts(entity=drug.canonical)
        assert by_id and by_id == by_name

    def test_predicate_and_url_filters(self, engine):
        inhibits = engine.facts(predicate="inhibits")
        assert all(f["predicate"] == "inhibits" for f in inhibits)
        url = "http://e.example.org/5"
        from_url = engine.facts(url=url)
        assert from_url
        assert all(any(p["url"] == url for p in f["provenance"])
                   for f in from_url)

    def test_limit_truncates_after_ranking(self, engine):
        all_facts = engine.facts()
        assert engine.facts(limit=2) == all_facts[:2]
        assert engine.facts(limit=0) == []

    @pytest.mark.parametrize("bad", [-1, True, "3", 2.5])
    def test_limit_is_validated(self, engine, bad):
        with pytest.raises(ValueError, match="limit"):
            engine.facts(limit=bad)

    def test_entities_listing_restricts_by_alias(self, engine,
                                                 store_entries):
        drug, _, _ = store_entries
        entries = engine.entities(alias=drug.synonyms[0])
        assert [e["id"] for e in entries] == [drug.term_id]
        assert len(engine.entities()) > 1

    def test_fact_table_rendering(self, engine):
        lines = format_fact_table(engine.facts())
        assert "subject" in lines[0] and "corr" in lines[0]
        assert any(line.startswith("!") for line in lines[2:])
        assert format_fact_table([]) == ["no matching facts"]


class TestQueryCli:
    def test_json_output_schema(self, store_dir, capsys):
        rc = cli.main(["query", store_dir, "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == len(payload["facts"])
        fact = payload["facts"][0]
        for field in ("subject_id", "predicate", "object_id",
                      "corroboration", "provenance"):
            assert field in fact
        assert {"url", "doc_id", "sentence", "subject_span"} <= set(
            fact["provenance"][0])

    def test_cli_matches_library(self, store_dir, engine, capsys):
        rc = cli.main(["query", store_dir, "--format", "json",
                       "--predicate", "inhibits"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["facts"] == json.loads(
            json.dumps(engine.facts(predicate="inhibits")))

    def test_table_and_entity_listing(self, store_dir, store_entries,
                                      capsys):
        drug, _, _ = store_entries
        assert cli.main(["query", store_dir]) == 0
        assert "predicate" in capsys.readouterr().out
        assert cli.main(["query", store_dir, "--entities",
                         "--alias", drug.synonyms[0]]) == 0
        assert drug.term_id in capsys.readouterr().out

    def test_missing_store_exits_2_without_traceback(self, tmp_path,
                                                     capsys):
        rc = cli.main(["query", str(tmp_path / "missing")])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("error:")
        assert "--store" in captured.err
        assert "Traceback" not in captured.err

    def test_invalid_limit_exits_2(self, store_dir, capsys):
        rc = cli.main(["query", store_dir, "--limit", "-3"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "limit" in captured.err
        assert "Traceback" not in captured.err
