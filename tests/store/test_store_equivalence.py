"""Store equivalence across execution topologies.

The store's contract: its persisted bytes and canonical digest are a
function of *what was crawled and extracted*, never of how the work
was scheduled.  Verified here across worker counts, shard counts,
kill+resume, flow execution modes, the document-vs-record ingestion
paths, and the serve ``query`` op against the library engine.
"""

from __future__ import annotations

import json

import pytest

from repro.crawler.checkpoint import ResumableCrawl
from repro.crawler.crawl import CrawlConfig, FocusedCrawler
from repro.crawler.shard import ShardCrawler, ShardedCrawl
from repro.serve.loadgen import ServeClient
from repro.serve.server import ExtractionServer, ServeConfig
from repro.serve.session import ExtractionSession
from repro.store import (
    EntityStore, QueryEngine, ingest_crawl_result, ingest_documents,
    ingest_flow_outputs,
)
from repro.web.server import SimulatedWeb

MAX_PAGES = 90
WEB_SEED = 11


class Killed(RuntimeError):
    """Stands in for SIGKILL: aborts the crawl mid-run."""


def _make_crawler(context, webgraph, workers=1):
    web = SimulatedWeb(webgraph, seed=WEB_SEED)
    return FocusedCrawler(web, context.pipeline.classifier,
                          context.build_filter_chain(),
                          CrawlConfig(max_pages=MAX_PAGES,
                                      batch_size=20,
                                      parallel_workers=workers))


def _ingest(context, result):
    store = EntityStore(vocabulary=context.vocabulary)
    ingest_crawl_result(store, result, context.pipeline)
    return store


class TestCrawlTopologyInvariance:
    def test_worker_count_is_invisible_in_the_store(self, context,
                                                    webgraph):
        seeds = context.seed_batch("second").urls
        digests = {}
        for workers in (1, 2, 4):
            result = _make_crawler(context, webgraph, workers).crawl(
                seeds)
            store = _ingest(context, result)
            assert store.snapshot().n_mentions > 0
            digests[workers] = store.digest()
        assert len(set(digests.values())) == 1

    def test_shard_count_is_invisible_in_the_store(self, context,
                                                   webgraph):
        def factory(n_shards):
            def build(shard_id: int) -> ShardCrawler:
                web = SimulatedWeb(webgraph, seed=WEB_SEED)
                return ShardCrawler(
                    shard_id, n_shards, web,
                    context.pipeline.classifier,
                    context.build_filter_chain(),
                    CrawlConfig(max_pages=MAX_PAGES, batch_size=25))
            return build

        seeds = list(context.seed_batch("second").urls)
        digests = []
        for n_shards in (1, 3):
            driver = ShardedCrawl(factory(n_shards), n_shards,
                                  MAX_PAGES, host_quota=2)
            store = _ingest(context, driver.run(list(seeds)))
            assert store.snapshot().n_mentions > 0
            digests.append(store.digest())
        assert digests[0] == digests[1]

    def test_kill_resume_store_matches_uninterrupted(
            self, context, webgraph, tmp_path):
        seeds = context.seed_batch("second").urls
        reference = _make_crawler(context, webgraph).crawl(seeds)
        assert reference.pages_fetched > 45

        path = tmp_path / "cp.json"

        def kill_switch(result):
            if result.pages_fetched >= 45:
                raise Killed

        with pytest.raises(Killed):
            ResumableCrawl(_make_crawler(context, webgraph), path).run(
                seeds, checkpoint_every=20, page_callback=kill_switch)
        resumed = ResumableCrawl(
            _make_crawler(context, webgraph), path).run(
                resume=True, checkpoint_every=20)

        assert (_ingest(context, resumed).digest()
                == _ingest(context, reference).digest())


class TestIngestionPathEquivalence:
    def test_record_path_matches_document_path(self, vocabulary,
                                               store_documents):
        """Flow sink records and annotated documents reduce to the
        same observation tuples (the record schema is pinned by
        ``entities_to_records`` / ``relations_to_records``)."""
        from repro.ner.relations import (
            RelationExtractor, relations_to_records,
        )

        document_path = EntityStore(vocabulary=vocabulary)
        ingest_documents(document_path, store_documents)

        extractor = RelationExtractor()
        record_path = EntityStore(vocabulary=vocabulary)
        for document in store_documents:
            url = document.meta.get("url", "")
            for mention in document.entities:
                record_path.ingest_entity_record({
                    "doc_id": document.doc_id, "url": url,
                    "text": mention.text, "start": mention.start,
                    "end": mention.end,
                    "entity_type": mention.entity_type,
                    "method": mention.method,
                    "term_id": mention.term_id})
            for record in relations_to_records(
                    extractor.extract(document), url=url):
                record_path.ingest_relation_record(record)

        assert record_path.digest() == document_path.digest()

    def test_flow_modes_build_identical_stores(self, context,
                                               vocabulary):
        from repro.core.flows import build_fig2_flow, run_flow
        from repro.web.htmlgen import PageRenderer

        renderer = PageRenderer(seed=31)
        documents = context.corpus_documents("relevant")[:4]
        for index, document in enumerate(documents):
            url = f"http://host{index}.example.org/a.html"
            document.raw = renderer.render(url, "Title", document.text,
                                           [])
            document.meta["url"] = url
            document.meta["content_type"] = "text/html"

        plan = build_fig2_flow(context.pipeline)
        digests = []
        for mode in ("sequential", "fused"):
            outputs, _ = run_flow(
                plan, [d.copy_shallow() for d in documents], mode=mode)
            store = EntityStore(vocabulary=vocabulary)
            n_entities, _ = ingest_flow_outputs(store, outputs)
            assert n_entities > 0
            digests.append(store.digest())
        assert digests[0] == digests[1]


def _start_server(pipeline, query_engine=None):
    config = ServeConfig(workers=0, max_batch=8, max_delay_ms=3.0,
                         queue_limit=64)
    session = ExtractionSession(pipeline)
    return ExtractionServer(session, config,
                            query_engine=query_engine).start()


class TestServeQueryOp:
    def test_query_op_answers_like_the_library(self, pipeline,
                                               reference_store,
                                               store_entries):
        drug, _, _ = store_entries
        engine = QueryEngine(reference_store)
        server = _start_server(pipeline, query_engine=engine)
        try:
            with ServeClient(*server.address) as client:
                for params in ({}, {"limit": 2},
                               {"alias": drug.synonyms[0]},
                               {"predicate": "inhibits"}):
                    response = client.call("query", params=params)
                    assert response["ok"], response
                    expected = json.loads(
                        json.dumps(engine.facts(**params)))
                    assert response["result"]["facts"] == expected
                    assert response["result"]["count"] == len(expected)
        finally:
            server.shutdown()

    def test_query_op_rejects_bad_params(self, pipeline,
                                         reference_store):
        engine = QueryEngine(reference_store)
        server = _start_server(pipeline, query_engine=engine)
        try:
            with ServeClient(*server.address) as client:
                unknown = client.call("query", params={"frobnicate": 1})
                assert not unknown["ok"]
                assert unknown["error"]["code"] == "bad_request"
                assert "frobnicate" in unknown["error"]["message"]
                bad_limit = client.call("query", params={"limit": -1})
                assert not bad_limit["ok"]
                assert bad_limit["error"]["code"] == "bad_request"
        finally:
            server.shutdown()

    def test_query_op_without_store_is_a_typed_error(self, pipeline):
        server = _start_server(pipeline)
        try:
            with ServeClient(*server.address) as client:
                response = client.call("query", params={})
                assert not response["ok"]
                assert response["error"]["code"] == "no_store"
                assert "--store" in response["error"]["message"]
        finally:
            server.shutdown()
