"""Property battery for the entity store.

The store claims its determinism *structurally* (sets of observation
tuples, order-free aggregation at snapshot time).  These tests check
the claim from the outside: any ingest order, any duplication, any
split into increments, and any save/load/save round trip must produce
byte-identical canonical exports — plus the typed-error discipline of
the persistence layer (missing / truncated / malformed / newer
version each gets its own :class:`StoreError` flavor, never a stray
traceback).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.store import (
    FORMAT_VERSION, EntityStore, StoreError, StoreNotFoundError,
    StoreVersionError, alias_key,
)

N_DOCS = 7  # size of the conftest corpus

ORDERS = st.permutations(list(range(N_DOCS)))
PROPERTY_SETTINGS = settings(max_examples=15, deadline=None)


class TestIngestOrderIndependence:
    @PROPERTY_SETTINGS
    @given(order=ORDERS)
    def test_digest_is_ingest_order_independent(
            self, store_builder, reference_digest, order):
        assert store_builder(order=order).digest() == reference_digest

    @PROPERTY_SETTINGS
    @given(order=ORDERS)
    def test_canonical_entities_are_order_independent(
            self, store_builder, reference_store, order):
        permuted = store_builder(order=order).snapshot()
        reference = reference_store.snapshot()
        assert permuted.entities == reference.entities
        assert permuted.n_alias_merges == reference.n_alias_merges

    @PROPERTY_SETTINGS
    @given(order=ORDERS)
    def test_fact_aggregates_are_order_independent(
            self, store_builder, reference_store, order):
        permuted = store_builder(order=order).snapshot()
        reference = reference_store.snapshot()
        assert permuted.facts == reference.facts

    @PROPERTY_SETTINGS
    @given(order=ORDERS)
    def test_persisted_bytes_are_order_independent(
            self, store_builder, reference_store, tmp_path_factory,
            order):
        directory = tmp_path_factory.mktemp("perm")
        reference_bytes = reference_store.save(
            directory / "ref.json").read_bytes()
        saved = store_builder(order=order).save(directory / "perm.json")
        assert saved.read_bytes() == reference_bytes


class TestIdempotence:
    @PROPERTY_SETTINGS
    @given(repeats=st.lists(st.integers(0, N_DOCS - 1), max_size=8))
    def test_reingesting_documents_is_a_noop(
            self, store_builder, reference_store, reference_digest,
            repeats):
        store = store_builder(repeats=repeats)
        assert store.digest() == reference_digest
        snapshot = store.snapshot()
        reference = reference_store.snapshot()
        assert snapshot.n_mentions == reference.n_mentions
        assert snapshot.n_assertions == reference.n_assertions
        assert snapshot.n_links == reference.n_links

    @PROPERTY_SETTINGS
    @given(split=st.integers(0, N_DOCS))
    def test_incremental_ingest_equals_batch(
            self, vocabulary, store_documents, reference_digest, split):
        from repro.store import ingest_documents

        store = EntityStore(vocabulary=vocabulary)
        ingest_documents(store, store_documents[:split])
        store.snapshot()  # force (and then invalidate) the cache
        ingest_documents(store, store_documents[split:])
        assert store.digest() == reference_digest


class TestPersistenceRoundTrip:
    def test_save_load_save_is_byte_identical(
            self, reference_store, vocabulary, tmp_path):
        first = reference_store.save(tmp_path / "store")
        assert first == tmp_path / "store" / "store.json"
        loaded = EntityStore.load(tmp_path / "store",
                                  vocabulary=vocabulary)
        second = loaded.save(tmp_path / "again.json")
        assert second.read_bytes() == first.read_bytes()
        assert loaded.digest() == reference_store.digest()

    def test_load_without_vocabulary_aggregates_identically(
            self, reference_store, tmp_path):
        """Links are resolved at ingest time and persisted, so the
        normalizer is not needed to reproduce the aggregation."""
        reference_store.save(tmp_path)
        loaded = EntityStore.load(tmp_path)
        assert loaded.digest() == reference_store.digest()
        assert (loaded.snapshot().entities
                == reference_store.snapshot().entities)

    def test_export_writes_canonical_jsonl(self, reference_store,
                                           tmp_path):
        paths = reference_store.export(tmp_path / "export")
        assert sorted(paths) == ["entities", "facts"]
        for path in paths.values():
            lines = path.read_text().splitlines()
            assert lines
            for line in lines:
                record = json.loads(line)
                assert line == json.dumps(record, sort_keys=True)


class TestTypedErrors:
    def test_missing_store_raises_not_found(self, tmp_path):
        with pytest.raises(StoreNotFoundError, match="--store"):
            EntityStore.load(tmp_path / "nowhere")

    def test_truncated_store_is_a_store_error(self, reference_store,
                                              tmp_path):
        target = reference_store.save(tmp_path)
        target.write_bytes(target.read_bytes()[:-40])
        with pytest.raises(StoreError, match="truncated or not JSON"):
            EntityStore.load(tmp_path)

    def test_non_object_payload_rejected(self, tmp_path):
        (tmp_path / "store.json").write_text("[1, 2, 3]")
        with pytest.raises(StoreError, match="not a JSON object"):
            EntityStore.load(tmp_path)

    def test_malformed_records_rejected(self, tmp_path):
        payload = {"version": FORMAT_VERSION, "kind": "entity-store",
                   "mentions": [{"bogus": 1}], "assertions": [],
                   "links": []}
        (tmp_path / "store.json").write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="malformed"):
            EntityStore.load(tmp_path)

    def test_unsupported_version_rejected(self, tmp_path):
        for version in (0, "2", None):
            (tmp_path / "store.json").write_text(
                json.dumps({"version": version}))
            with pytest.raises(StoreError, match="unsupported"):
                EntityStore.load(tmp_path)

    def test_newer_version_refused_not_parsed(self, reference_store,
                                              tmp_path):
        """Refusing to downgrade is a deliberate, explained decision —
        the checkpoint discipline — not a KeyError from missing
        fields."""
        target = reference_store.save(tmp_path)
        payload = json.loads(target.read_text())
        payload["version"] = FORMAT_VERSION + 1
        target.write_text(json.dumps(payload))
        with pytest.raises(StoreVersionError) as excinfo:
            EntityStore.load(tmp_path)
        message = str(excinfo.value)
        assert "refusing" in message
        assert "newer build" in message
        assert isinstance(excinfo.value, StoreError)

    def test_store_errors_are_value_errors(self):
        # The CLI catches ValueError-compatible errors into exit code 2.
        assert issubclass(StoreNotFoundError, StoreError)
        assert issubclass(StoreVersionError, StoreError)
        assert issubclass(StoreError, ValueError)


class TestAliasFolding:
    @pytest.mark.parametrize("variant", [
        "Foo-Bar syndrome", "foo bar  SYNDROME", "FOO-BAR-SYNDROME",
        "  foo   bar syndrome  ",
    ])
    def test_equivalent_surfaces_share_one_key(self, variant):
        assert alias_key(variant) == "foo bar syndrome"

    def test_distinct_surfaces_keep_distinct_keys(self):
        assert alias_key("foobar") != alias_key("foo bar")


class TestReferenceCorpusShape:
    """Pins the hand-checkable semantics of the fixture corpus."""

    def test_alias_variants_merge_onto_vocabulary_ids(
            self, reference_store, store_entries):
        drug, disease, gene = store_entries
        entities = {e["id"]: e
                    for e in reference_store.snapshot().entities}
        assert drug.canonical in entities[drug.term_id]["aliases"]
        assert drug.synonyms[0] in entities[drug.term_id]["aliases"]
        assert (drug.canonical.upper()
                in entities[drug.term_id]["aliases"])
        assert disease.synonyms[0] in entities[disease.term_id]["aliases"]
        assert "Qzx-17" in entities["SURF:DRUG:qzx 17"]["aliases"]

    def test_corroboration_counts_sources_not_assertions(
            self, reference_store, store_entries):
        drug, disease, _ = store_entries
        fact = next(f for f in reference_store.snapshot().facts
                    if f["predicate"] == "inhibits")
        assert fact["subject_id"] == drug.term_id
        assert fact["object_id"] == disease.term_id
        assert fact["support"] == 3        # three assertions...
        assert fact["documents"] == 3      # ...in three documents...
        assert fact["corroboration"] == 2  # ...but only two URLs.

    def test_negated_pair_kept_distinct(self, reference_store):
        negated = [f for f in reference_store.snapshot().facts
                   if f["negated"]]
        assert len(negated) == 1
        assert negated[0]["predicate"] == "associated_with"
        assert negated[0]["corroboration"] == 1

    def test_provenance_offsets_slice_source_text(
            self, reference_store, store_documents):
        texts = {d.doc_id: d.text for d in store_documents}
        for fact in reference_store.snapshot().facts:
            for entry in fact["provenance"]:
                text = texts[entry["doc_id"]]
                start, end = entry["subject_span"]
                assert text[start:end] == entry["subject"]
                start, end = entry["object_span"]
                assert text[start:end] == entry["object"]


class TestStoreMetrics:
    def test_metrics_deterministic_across_ingest_orders(
            self, store_builder):
        exports = []
        for order in (None, list(reversed(range(N_DOCS)))):
            store = store_builder(order=order)
            registry = MetricsRegistry()
            store.publish_metrics(registry)
            exports.append(registry.to_dict())
        assert exports[0] == exports[1]

    def test_metrics_mirror_snapshot_counts(self, reference_store):
        registry = MetricsRegistry()
        reference_store.publish_metrics(registry)
        snapshot = reference_store.snapshot()
        values = {entry["name"]: entry["value"]
                  for entry in registry.to_dict()["metrics"]}
        assert values["store.facts"] == snapshot.n_facts
        assert values["store.entities"] == snapshot.n_entities
        assert values["store.alias_merges"] > 0
        assert values["store.corroborated_facts"] >= 1
