"""Fixtures for the store battery.

Hand-annotated documents over the session vocabulary, with surface
variants (synonym, upper-case, dash, unlinked) of the same dictionary
entries spread across distinct URLs — the smallest corpus on which
alias merging, corroboration counting, and the store's determinism
guarantees are all observable and checkable by hand.
"""

from __future__ import annotations

import pytest

from repro.annotations import Document, EntityMention
from repro.nlp.sentence import split_sentences
from repro.nlp.tokenize import tokenize
from repro.store import EntityStore, ingest_documents


def annotate(document: Document) -> Document:
    document.sentences = split_sentences(document.text)
    for sentence in document.sentences:
        sentence.tokens = tokenize(sentence.text,
                                   base_offset=sentence.start)
    return document


def make_document(doc_id: str, url: str, text: str) -> Document:
    return annotate(Document(doc_id=doc_id, text=text,
                             meta={"url": url}))


def add_mention(document: Document, surface: str, entity_type: str,
                method: str = "dictionary", term_id: str = "") -> None:
    start = document.text.index(surface)
    document.entities.append(EntityMention(
        text=surface, start=start, end=start + len(surface),
        entity_type=entity_type, method=method, term_id=term_id))


@pytest.fixture(scope="session")
def store_entries(vocabulary):
    """One drug, disease, and gene entry, each with a synonym."""
    drug = next(e for e in vocabulary.drugs if e.synonyms)
    disease = next(e for e in vocabulary.diseases if e.synonyms)
    gene = next(e for e in vocabulary.genes if e.synonyms)
    return drug, disease, gene


@pytest.fixture(scope="session")
def store_documents(store_entries):
    """Seven annotated documents exercising every merge/corroboration
    path:

    * ``inhibits`` fact asserted from three documents on two distinct
      URLs (corroboration counts sources, not assertions), through
      two different drug surfaces (canonical, synonym) and two disease
      surfaces (canonical, synonym);
    * a negated no-verb pair (``associated_with`` + ``negated``);
    * an out-of-vocabulary surface (canonicalized under a SURF: id).
    """
    drug, disease, gene = store_entries
    documents = []

    doc = make_document(
        "doc-a", "http://a.example.org/1",
        f"{drug.canonical} inhibits {disease.canonical} in trials.")
    add_mention(doc, drug.canonical, "drug", term_id=drug.term_id)
    add_mention(doc, disease.canonical, "disease",
                term_id=disease.term_id)
    documents.append(doc)

    doc = make_document(
        "doc-b", "http://b.example.org/2",
        f"Reports say {drug.synonyms[0]} inhibits {disease.canonical}.")
    add_mention(doc, drug.synonyms[0], "drug", term_id=drug.term_id)
    # No explicit term id: the store's normalizer must resolve it.
    add_mention(doc, disease.canonical, "disease", method="ml")
    documents.append(doc)

    doc = make_document(
        "doc-c", "http://c.example.org/3",
        f"{gene.canonical} causes {disease.synonyms[0]} in mice.")
    add_mention(doc, gene.canonical, "gene", term_id=gene.term_id)
    add_mention(doc, disease.synonyms[0], "disease",
                term_id=disease.term_id)
    documents.append(doc)

    doc = make_document(
        "doc-d", "http://d.example.org/4",
        f"{drug.canonical.upper()} treats {disease.canonical} in the "
        f"clinic.")
    # Case variant, ML-tagged, no term id: merged via alias folding.
    add_mention(doc, drug.canonical.upper(), "drug", method="ml")
    add_mention(doc, disease.canonical, "disease",
                term_id=disease.term_id)
    documents.append(doc)

    doc = make_document(
        "doc-e", "http://e.example.org/5",
        f"{drug.canonical} was not linked to {gene.canonical} here.")
    add_mention(doc, drug.canonical, "drug", term_id=drug.term_id)
    add_mention(doc, gene.canonical, "gene", term_id=gene.term_id)
    documents.append(doc)

    doc = make_document(
        "doc-f", "http://f.example.org/6",
        f"Compound Qzx-17 reduces {disease.canonical} markers.")
    # Out-of-vocabulary surface: stays under a SURF: canonical id.
    add_mention(doc, "Qzx-17", "drug", method="ml")
    add_mention(doc, disease.canonical, "disease",
                term_id=disease.term_id)
    documents.append(doc)

    # Same URL as doc-a: bumps support, not corroboration.
    doc = make_document(
        "doc-g", "http://a.example.org/1",
        f"{drug.synonyms[0]} inhibits {disease.synonyms[0]} again.")
    add_mention(doc, drug.synonyms[0], "drug", term_id=drug.term_id)
    add_mention(doc, disease.synonyms[0], "disease",
                term_id=disease.term_id)
    documents.append(doc)

    return documents


@pytest.fixture(scope="session")
def store_builder(vocabulary, store_documents):
    """Builds a fresh store from the fixture corpus.

    ``order`` permutes the documents; ``repeats`` re-ingests documents
    (by index) after the first pass — the idempotence probe.
    """
    def build(order=None, repeats=()):
        documents = (list(store_documents) if order is None
                     else [store_documents[i] for i in order])
        store = EntityStore(vocabulary=vocabulary)
        ingest_documents(store, documents)
        for index in repeats:
            ingest_documents(store, [store_documents[index]])
        return store
    return build


@pytest.fixture(scope="session")
def reference_store(store_builder):
    """Read-only canonical store over the fixture corpus.  Tests that
    ingest must build their own via ``store_builder``."""
    return store_builder()


@pytest.fixture(scope="session")
def reference_digest(reference_store):
    return reference_store.digest()
