"""Property tests: dictionary tagging vs brute-force reference."""

import re

from hypothesis import given, settings, strategies as st

from repro.annotations import Document
from repro.corpora.vocabulary import TermEntry
from repro.ner.dictionary import EntityDictionary, expand_term

_WORDS = ["alpha", "beta", "delta", "zeta"]
_TERMS = ["abraxol", "zintamab", "corvex-9", "brontase"]


def _brute_force(text, patterns):
    """All word-aligned pattern occurrences, longest-wins overlap
    resolution, matching EntityDictionary semantics."""
    lowered = text.lower()
    boundary = set(" \t\n\r.,;:!?()[]{}<>\"'`/\\|")
    hits = []
    for pattern in patterns:
        start = 0
        while True:
            index = lowered.find(pattern, start)
            if index < 0:
                break
            before_ok = index == 0 or lowered[index - 1] in boundary
            end = index + len(pattern)
            after_ok = end >= len(lowered) or lowered[end] in boundary
            if before_ok and after_ok:
                hits.append((index, end))
            start = index + 1
    hits.sort(key=lambda span: (-(span[1] - span[0]), span[0]))
    chosen = []
    for span in hits:
        if not any(span[0] < e and s < span[1] for s, e in chosen):
            chosen.append(span)
    return sorted(chosen)


@given(st.lists(st.sampled_from(_WORDS + _TERMS + ["Abraxol",
                                                   "corvex 9",
                                                   "zintamabs"]),
                min_size=1, max_size=25))
@settings(max_examples=150, deadline=None)
def test_property_dictionary_matches_brute_force(words):
    text = " ".join(words) + "."
    entries = [TermEntry(term, (), f"T:{i}")
               for i, term in enumerate(_TERMS)]
    dictionary = EntityDictionary("drug", entries, min_pattern_length=2)
    patterns = set()
    for entry in entries:
        patterns |= expand_term(entry.canonical)
    expected = _brute_force(text, patterns)
    document = Document("d", text)
    got = sorted((m.start, m.end) for m in dictionary.annotate(document))
    assert got == expected


@given(st.text(alphabet="abz -", min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_property_mention_offsets_always_valid(text):
    entries = [TermEntry("ab", ()), TermEntry("za-b", ())]
    dictionary = EntityDictionary("gene", entries, min_pattern_length=2)
    document = Document("d", text)
    for mention in dictionary.annotate(document):
        assert text[mention.start:mention.end] == mention.text


@given(st.sampled_from(_TERMS),
       st.sampled_from(["upper", "plural", "hyphen_swap"]))
@settings(max_examples=60, deadline=None)
def test_property_fuzzy_variants_always_found(term, variant_kind):
    if variant_kind == "upper":
        surface = term.upper()
    elif variant_kind == "plural":
        surface = term + ("" if term.endswith("s") else "s")
    else:
        surface = term.replace("-", " ") if "-" in term else term
    text = f"The dose of {surface} was raised."
    dictionary = EntityDictionary("drug", [TermEntry(term, ())])
    document = Document("d", text)
    mentions = dictionary.annotate(document)
    assert any(re.sub(r"[\s-]", "", m.text.lower())
               == re.sub(r"[\s-]", "", surface.lower())
               for m in mentions)
