"""Tests for entity normalization and cross-scheme merging."""

import pytest

from repro.annotations import Document, EntityMention
from repro.ner.normalize import EntityNormalizer, merge_by_term


@pytest.fixture(scope="module")
def normalizer(vocabulary):
    return EntityNormalizer(vocabulary)


class TestResolve:
    def test_canonical_resolves(self, normalizer, vocabulary):
        entry = vocabulary.drugs[0]
        assert normalizer.resolve("drug", entry.canonical) is entry

    def test_case_insensitive(self, normalizer, vocabulary):
        entry = vocabulary.drugs[0]
        assert normalizer.resolve("drug",
                                  entry.canonical.upper()) is entry

    def test_synonym_resolves_to_entry(self, normalizer, vocabulary):
        entry = next(e for e in vocabulary.genes if e.synonyms)
        assert normalizer.resolve("gene", entry.synonyms[0]) is not None

    def test_plural_variant(self, normalizer, vocabulary):
        name = vocabulary.drugs[1].canonical
        assert normalizer.resolve("drug", name + "s") is not None

    def test_wrong_type_does_not_resolve(self, normalizer, vocabulary):
        assert normalizer.resolve("disease",
                                  vocabulary.drugs[0].canonical) is None

    def test_unknown_surface(self, normalizer):
        assert normalizer.resolve("gene", "zzznotagene") is None


class TestNormalizeDocument:
    def test_links_ml_mentions(self, normalizer, vocabulary):
        name = vocabulary.diseases[0].canonical
        text = f"Patients with {name} recovered."
        document = Document("d", text)
        start = text.index(name)
        document.entities = [EntityMention(name, start,
                                           start + len(name),
                                           "disease", method="ml")]
        stats = normalizer.normalize(document)
        assert stats.linked == 1
        assert document.entities[0].term_id.startswith("DIS:")

    def test_novel_names_stay_unlinked(self, normalizer):
        document = Document("d", "zzznovelosis spread.")
        document.entities = [EntityMention("zzznovelosis", 0, 12,
                                           "disease", method="ml")]
        stats = normalizer.normalize(document)
        assert stats.unlinked == 1
        assert document.entities[0].term_id == ""

    def test_existing_ids_untouched(self, normalizer):
        document = Document("d", "x")
        document.entities = [EntityMention("x", 0, 1, "gene",
                                           method="dictionary",
                                           term_id="GENE:000042")]
        stats = normalizer.normalize(document)
        assert stats.already_linked == 1
        assert document.entities[0].term_id == "GENE:000042"

    def test_link_rate_on_pipeline_output(self, normalizer, pipeline,
                                          relevant_generator):
        """Most ML mentions on relevant text resolve to the dictionary;
        the novel remainder is the paper's new-knowledge signal."""
        stats_total = 0
        linked_total = 0
        for i in range(100, 108):
            document = relevant_generator.document(i) \
                .document.copy_shallow()
            for tagger in pipeline.ml_taggers.values():
                tagger.annotate(document)
            stats = normalizer.normalize(document)
            stats_total += stats.linked + stats.unlinked
            linked_total += stats.linked
        assert stats_total > 0
        assert 0.2 < linked_total / stats_total < 1.0


class TestMergeByTerm:
    def test_same_term_same_span_collapses(self):
        document = Document("d", "Aspirin")
        document.entities = [
            EntityMention("Aspirin", 0, 7, "drug", method="dictionary",
                          term_id="DRUG:1"),
            EntityMention("Aspirin", 0, 7, "drug", method="ml",
                          term_id="DRUG:1"),
        ]
        merged = merge_by_term(document)
        assert len(merged) == 1
        assert merged[0].method == "dictionary"

    def test_unlinked_mentions_kept_separately(self):
        document = Document("d", "Aspirin novelol")
        document.entities = [
            EntityMention("Aspirin", 0, 7, "drug", method="dictionary",
                          term_id="DRUG:1"),
            EntityMention("novelol", 8, 15, "drug", method="ml"),
        ]
        assert len(merge_by_term(document)) == 2

    def test_different_spans_not_merged(self):
        document = Document("d", "Aspirin and Aspirin")
        document.entities = [
            EntityMention("Aspirin", 0, 7, "drug", term_id="DRUG:1",
                          method="dictionary"),
            EntityMention("Aspirin", 12, 19, "drug", term_id="DRUG:1",
                          method="ml"),
        ]
        assert len(merge_by_term(document)) == 2
