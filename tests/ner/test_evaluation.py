"""Tests for the span-based NER evaluator."""

import pytest

from repro.annotations import Document, EntityMention
from repro.corpora.textgen import GoldDocument, GoldEntity
from repro.ner.evaluation import (
    NerReport, compare_taggers, evaluate_mentions, evaluate_tagger,
)


def _gold(text, spans):
    """Gold document with disease mentions at (start, end) spans."""
    document = Document("g", text)
    entities = [GoldEntity(
        mention=EntityMention(text[s:e], s, e, "disease", method="gold"),
        in_dictionary=True, variant=False) for s, e in spans]
    return GoldDocument(document=document, entities=entities)


def _predictions(text, spans):
    return [EntityMention(text[s:e], s, e, "disease", method="ml")
            for s, e in spans]


TEXT = "glossoma and arthritis were found near arthritis again"


class TestEvaluateMentions:
    def test_perfect_match(self):
        gold = _gold(TEXT, [(0, 8), (13, 22)])
        report = evaluate_mentions(_predictions(TEXT, [(0, 8), (13, 22)]),
                                   gold, "disease")
        assert report.precision == 1.0 and report.recall == 1.0
        assert report.f1 == 1.0

    def test_miss_counts_fn(self):
        gold = _gold(TEXT, [(0, 8), (13, 22)])
        report = evaluate_mentions(_predictions(TEXT, [(0, 8)]), gold,
                                   "disease")
        assert report.false_negatives == 1
        assert report.recall == 0.5

    def test_spurious_counts_fp(self):
        gold = _gold(TEXT, [(0, 8)])
        report = evaluate_mentions(
            _predictions(TEXT, [(0, 8), (39, 48)]), gold, "disease")
        assert report.false_positives == 1
        assert report.precision == 0.5

    def test_exact_mode_rejects_partial(self):
        gold = _gold(TEXT, [(0, 8)])
        report = evaluate_mentions(_predictions(TEXT, [(0, 6)]), gold,
                                   "disease")
        assert report.true_positives == 0

    def test_overlap_mode_accepts_partial(self):
        gold = _gold(TEXT, [(0, 8)])
        report = evaluate_mentions(_predictions(TEXT, [(0, 6)]), gold,
                                   "disease", mode="overlap")
        assert report.true_positives == 1

    def test_duplicate_gold_spans_matched_once_each(self):
        gold = _gold(TEXT, [(13, 22), (39, 48)])
        report = evaluate_mentions(
            _predictions(TEXT, [(13, 22), (13, 22)]), gold, "disease")
        assert report.true_positives == 1
        assert report.false_positives == 1

    def test_unknown_mode_rejected(self):
        gold = _gold(TEXT, [(0, 8)])
        with pytest.raises(ValueError):
            evaluate_mentions([], gold, "disease", mode="fuzzy")

    def test_missed_provenance_split(self):
        document = Document("g", TEXT)
        entities = [
            GoldEntity(EntityMention(TEXT[0:8], 0, 8, "disease",
                                     method="gold"),
                       in_dictionary=True, variant=False),
            GoldEntity(EntityMention(TEXT[13:22], 13, 22, "disease",
                                     method="gold"),
                       in_dictionary=False, variant=False),
        ]
        gold = GoldDocument(document=document, entities=entities)
        report = evaluate_mentions([], gold, "disease")
        assert report.missed_in_dictionary == 1
        assert report.missed_novel == 1

    def test_str_format(self):
        report = NerReport("gene", true_positives=3, false_positives=1,
                           false_negatives=2)
        text = str(report)
        assert "gene" in text and "F1=" in text


class TestEvaluateTagger:
    def test_dictionary_tagger_bands(self, pipeline, relevant_generator):
        gold_documents = [relevant_generator.document(i)
                          for i in range(90, 100)]
        report = evaluate_tagger(pipeline.dictionary_taggers["drug"],
                                 gold_documents)
        assert report.precision > 0.7
        # Dictionary recall is bounded by novel mentions it cannot see.
        assert report.missed_novel > 0 or report.recall > 0.5

    def test_compare_taggers_table(self, pipeline, relevant_generator):
        gold_documents = [relevant_generator.document(i)
                          for i in range(90, 96)]
        comparison = compare_taggers(
            pipeline.dictionary_taggers["gene"],
            pipeline.ml_taggers["gene"], gold_documents, mode="overlap")
        rows = comparison.rows()
        assert len(rows) == 2
        assert rows[0][1] == "dictionary" and rows[1][1] == "ml"
        # ML recall (overlap mode) is not worse than dictionary recall
        # minus tolerance: it sees novel names.
        assert comparison.ml.recall >= comparison.dictionary.recall - 0.2
