"""Unit tests for the annotation post-filters (the paper's TLA fix)."""

from repro.annotations import EntityMention
from repro.ner.postfilter import (
    filter_short_mentions, filter_tla_mentions, is_tla,
)


def _mention(text, entity_type="gene", method="ml"):
    return EntityMention(text=text, start=0, end=len(text),
                         entity_type=entity_type, method=method)


class TestIsTla:
    def test_three_letter_all_caps(self):
        assert is_tla("ABC")
        assert is_tla("TNF")

    def test_wrong_length(self):
        assert not is_tla("AB")
        assert not is_tla("ABCD")
        assert not is_tla("")

    def test_not_all_caps_or_not_alpha(self):
        assert not is_tla("Abc")
        assert not is_tla("abc")
        assert not is_tla("AB1")
        assert not is_tla("A-B")


class TestFilterTlaMentions:
    def test_drops_ml_gene_tlas_only(self):
        mentions = [
            _mention("TNF"),                              # dropped
            _mention("TNF", method="dictionary"),         # kept: method
            _mention("TNF", entity_type="drug"),          # kept: type
            _mention("interleukin"),                      # kept: not TLA
        ]
        kept = filter_tla_mentions(mentions)
        assert [m.text for m in kept] == ["TNF", "TNF", "interleukin"]
        assert all(not (m.entity_type == "gene" and m.method == "ml"
                        and is_tla(m.text)) for m in kept)

    def test_preserves_order_and_objects(self):
        mentions = [_mention("alpha"), _mention("beta")]
        assert filter_tla_mentions(mentions) == mentions

    def test_custom_type_and_method(self):
        mentions = [_mention("ASA", entity_type="drug",
                             method="dictionary")]
        assert filter_tla_mentions(mentions) == mentions
        assert filter_tla_mentions(mentions, entity_type="drug",
                                   method="dictionary") == []

    def test_empty(self):
        assert filter_tla_mentions([]) == []


class TestFilterShortMentions:
    def test_drops_below_min_length(self):
        mentions = [_mention("a"), _mention("ab"), _mention("abc")]
        assert [m.text for m in filter_short_mentions(mentions)] == \
            ["ab", "abc"]

    def test_min_length_parameter(self):
        mentions = [_mention("ab"), _mention("abcd")]
        assert [m.text for m in
                filter_short_mentions(mentions, min_length=3)] == ["abcd"]
