"""Tests for fuzzy dictionary tagging."""

import pytest

from repro.annotations import Document
from repro.corpora.vocabulary import TermEntry
from repro.ner.dictionary import (
    DictionaryTagger, EntityDictionary, expand_term,
)


def _dictionary(*entries, fuzzy=True):
    return EntityDictionary("drug", list(entries), fuzzy=fuzzy)


ASPIRIN = TermEntry("Aspirin", ("Aspirin hydrochloride",), "DRUG:000001")
GAD = TermEntry("GAD-67", (), "GENE:000002")


class TestExpandTerm:
    def test_case_folding(self):
        assert "aspirin" in expand_term("Aspirin")

    def test_plural(self):
        assert "aspirins" in expand_term("Aspirin")

    def test_hyphen_space_alternation(self):
        variants = expand_term("GAD-67")
        assert "gad 67" in variants
        assert "gad67" in variants

    def test_space_to_hyphen(self):
        assert "chronic-pain" in expand_term("chronic pain")


class TestMatching:
    def test_exact_match(self):
        document = Document("d", "We prescribed Aspirin daily.")
        mentions = _dictionary(ASPIRIN).annotate(document)
        assert len(mentions) == 1
        assert mentions[0].text == "Aspirin"
        assert mentions[0].term_id == "DRUG:000001"
        assert mentions[0].method == "dictionary"

    def test_case_variant_match(self):
        document = Document("d", "take ASPIRIN now")
        assert _dictionary(ASPIRIN).annotate(document)

    def test_plural_variant_match(self):
        document = Document("d", "two aspirins later")
        assert _dictionary(ASPIRIN).annotate(document)

    def test_hyphen_variant_match(self):
        document = Document("d", "levels of GAD 67 rose")
        dictionary = EntityDictionary("gene", [GAD])
        assert dictionary.annotate(document)

    def test_word_boundary_respected(self):
        document = Document("d", "superaspirinx is not a drug")
        assert not _dictionary(ASPIRIN).annotate(document)

    def test_longest_match_wins(self):
        entries = [TermEntry("chronic pain", (), "DIS:1"),
                   TermEntry("pain", (), "DIS:2")]
        dictionary = EntityDictionary("disease", entries)
        document = Document("d", "suffering from chronic pain daily")
        mentions = dictionary.annotate(document)
        assert len(mentions) == 1
        assert mentions[0].text == "chronic pain"

    def test_non_fuzzy_misses_variants(self):
        document = Document("d", "two aspirins later")
        assert not _dictionary(ASPIRIN, fuzzy=False).annotate(document)

    def test_mentions_appended_to_document(self):
        document = Document("d", "Aspirin and Aspirin.")
        _dictionary(ASPIRIN).annotate(document)
        assert len(document.entities) == 2

    def test_annotate_offsets_exact(self):
        text = "He took Aspirin (hydrochloride form)."
        document = Document("d", text)
        for mention in _dictionary(ASPIRIN).annotate(document):
            assert text[mention.start:mention.end] == mention.text


class TestOperationalProperties:
    def test_build_time_recorded(self):
        dictionary = _dictionary(ASPIRIN, GAD)
        assert dictionary.build_seconds > 0

    def test_startup_seconds_from_tagger(self):
        tagger = DictionaryTagger(_dictionary(ASPIRIN))
        assert tagger.startup_seconds() == tagger.dictionary.build_seconds

    def test_memory_grows_with_entries(self, vocabulary):
        small = EntityDictionary("gene", vocabulary.genes[:10])
        large = EntityDictionary("gene", vocabulary.genes)
        assert large.approx_memory_bytes() > small.approx_memory_bytes()

    def test_pattern_count_exceeds_entry_count(self, vocabulary):
        """Fuzzy expansion inflates the automaton — the memory cost the
        paper attributes to regex-to-NFA conversion."""
        dictionary = EntityDictionary("gene", vocabulary.genes[:50])
        assert dictionary.n_patterns > 50

    def test_recall_on_gold(self, vocabulary, relevant_generator):
        dictionary = EntityDictionary("gene", vocabulary.genes)
        found = total = 0
        for i in range(10):
            gold = relevant_generator.document(i)
            document = gold.document.copy_shallow()
            mentions = {(m.start, m.end)
                        for m in dictionary.annotate(document)}
            for entity in gold.entities:
                if entity.mention.entity_type != "gene":
                    continue
                if entity.in_dictionary:
                    total += 1
                    span = (entity.mention.start, entity.mention.end)
                    if span in mentions:
                        found += 1
        assert total > 0
        assert found / total > 0.8
