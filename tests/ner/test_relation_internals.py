"""Edge-case coverage for the relation extractor's building blocks:
span dedup ties, verb detection limits, pair orientation, and the
offset fidelity of the record export (the entity store's input
contract).
"""

from __future__ import annotations

from repro.annotations import Document, EntityMention
from repro.ner.relations import (
    RelationExtractor, _dedup_spans, relations_to_records,
)
from repro.nlp.sentence import split_sentences
from repro.nlp.tokenize import tokenize


def _mention(text, start, entity_type, method="dictionary",
             term_id=""):
    return EntityMention(text=text, start=start,
                         end=start + len(text),
                         entity_type=entity_type, method=method,
                         term_id=term_id)


def _document(text, mentions):
    document = Document(doc_id="doc", text=text, entities=mentions)
    document.sentences = split_sentences(text)
    for sentence in document.sentences:
        sentence.tokens = tokenize(sentence.text,
                                   base_offset=sentence.start)
    return document


class TestDedupSpans:
    def test_dictionary_evidence_wins_either_order(self):
        ml = _mention("aspirin", 0, "drug", method="ml")
        dictionary = _mention("aspirin", 0, "drug",
                              method="dictionary", term_id="DRUG:1")
        for order in ([ml, dictionary], [dictionary, ml]):
            kept = _dedup_spans(order)
            assert kept == [dictionary]

    def test_tie_between_equal_methods_keeps_first(self):
        first = _mention("aspirin", 0, "drug", method="ml",
                         term_id="A")
        second = _mention("aspirin", 0, "drug", method="ml",
                          term_id="B")
        assert _dedup_spans([first, second]) == [first]
        assert _dedup_spans([second, first]) == [second]

    def test_same_span_different_types_both_kept(self):
        drug = _mention("aspirin", 0, "drug")
        gene = _mention("aspirin", 0, "gene")
        assert sorted(m.entity_type
                      for m in _dedup_spans([drug, gene])) == [
            "drug", "gene"]

    def test_output_sorted_by_start(self):
        late = _mention("TP53", 20, "gene")
        early = _mention("aspirin", 3, "drug")
        assert [m.start for m in _dedup_spans([late, early])] == [3, 20]


class TestConnectingVerb:
    def _verb(self, text, a_text, b_text, a_type="drug",
              b_type="disease"):
        a = _mention(a_text, text.index(a_text), a_type)
        b = _mention(b_text, text.index(b_text), b_type)
        document = _document(text, [a, b])
        sentence = document.sentences[0]
        return RelationExtractor._connecting_verb(document, sentence,
                                                  a, b)

    def test_interaction_verb_between_mentions(self):
        assert self._verb("Aspirin reduces migraine risk.",
                          "Aspirin", "migraine") == "reduces"

    def test_no_verb_between_mentions(self):
        assert self._verb("Aspirin and migraine were studied.",
                          "Aspirin", "migraine") == ""

    def test_verb_outside_the_between_span_ignored(self):
        # "reduces" appears only after the second mention.
        assert self._verb("Aspirin and migraine: the drug reduces "
                          "nothing here.", "Aspirin", "migraine") == ""

    def test_mention_order_does_not_matter(self):
        text = "Migraine is treated; aspirin induces relief."
        disease = _mention("Migraine", 0, "disease")
        drug = _mention("aspirin", text.index("aspirin"), "drug")
        document = _document(text, [disease, drug])
        sentence = document.sentences[0]
        forward = RelationExtractor._connecting_verb(
            document, sentence, disease, drug)
        backward = RelationExtractor._connecting_verb(
            document, sentence, drug, disease)
        assert forward == backward == "treated"


class TestOrient:
    def test_symmetric_pair_is_canonically_oriented(self):
        extractor = RelationExtractor()
        drug = _mention("aspirin", 0, "drug")
        disease = _mention("migraine", 10, "disease")
        assert extractor._orient(drug, disease) == (drug, disease)
        assert extractor._orient(disease, drug) == (drug, disease)

    def test_unlisted_pair_is_dropped(self):
        extractor = RelationExtractor()
        gene_a = _mention("TP53", 0, "gene")
        gene_b = _mention("BRCA1", 10, "gene")
        assert extractor._orient(gene_a, gene_b) is None


class TestRecordFidelity:
    def test_offsets_slice_the_source_text(self):
        text = ("Aspirin reduces migraine severity. "
                "TP53 does not cause migraine relapse.")
        mentions = [
            _mention("Aspirin", 0, "drug", term_id="DRUG:9"),
            _mention("migraine", text.index("migraine"), "disease"),
            _mention("TP53", text.index("TP53"), "gene", method="crf"),
            _mention("migraine relapse",
                     text.index("migraine relapse"), "disease"),
        ]
        document = _document(text, mentions)
        relations = RelationExtractor().extract(document)
        assert len(relations) == 2
        records = relations_to_records(relations,
                                       url="http://x.example.org/p")
        for record in records:
            assert record["url"] == "http://x.example.org/p"
            assert (text[record["subject_start"]:record["subject_end"]]
                    == record["subject"])
            assert (text[record["object_start"]:record["object_end"]]
                    == record["object"])
            assert record["confidence"] == round(record["confidence"],
                                                 3)
        by_verb = {r["verb"]: r for r in records}
        reduces = by_verb["reduces"]
        assert (reduces["subject"], reduces["object"]) == ("Aspirin",
                                                           "migraine")
        assert reduces["sentence"] == 0
        assert reduces["subject_term_id"] == "DRUG:9"
        assert not reduces["negated"]
        caused = by_verb["cause"] if "cause" in by_verb else None
        assert caused is None  # "cause" is not an interaction verb
        other = next(r for r in records if r is not reduces)
        assert other["sentence"] == 1
        assert other["negated"]
        assert other["subject_method"] == "crf"

    def test_negation_halves_confidence(self):
        plain_text = "TP53 induces migraine onset."
        plain = _document(plain_text, [
            _mention("TP53", 0, "gene"),
            _mention("migraine", plain_text.index("migraine"),
                     "disease")])
        negated_text = "TP53, though not proven, induces migraine onset."
        negated = _document(negated_text, [
            _mention("TP53", 0, "gene"),
            _mention("migraine", negated_text.index("migraine"),
                     "disease")])
        extractor = RelationExtractor()
        plain_rel = extractor.extract(plain)[0]
        negated_rel = extractor.extract(negated)[0]
        assert plain_rel.verb == "induces"
        assert negated_rel.negated and not plain_rel.negated
        assert negated_rel.confidence < plain_rel.confidence
