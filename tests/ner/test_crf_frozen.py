"""Equivalence tests for the frozen (vectorized) CRF decoder.

``predict``/``predict_batch`` run on the dense frozen kernel;
``predict_reference`` is the original per-position implementation.
Both must produce identical label sequences on randomized seeded
models and inputs, including the degenerate shapes (empty sentence,
all-unknown features, empty feature positions).
"""

import random

import pytest

from repro.ner.crf import LinearChainCrf

FEATURES = [f"f{i}" for i in range(50)]


def _random_sentence(rng, length):
    labels = []
    state = "O"
    for _ in range(length):
        state = rng.choice(["O", "B", "I"] if state != "O" else ["O", "B"])
        labels.append(state)
    features = [sorted({rng.choice(FEATURES)
                        for _ in range(rng.randint(1, 5))})
                for _ in labels]
    return features, labels


def _train(seed, n_sentences=60, max_iterations=30):
    rng = random.Random(seed)
    training = [_random_sentence(rng, rng.randint(1, 10))
                for _ in range(n_sentences)]
    return LinearChainCrf(max_iterations=max_iterations).fit(training), rng


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_frozen_matches_reference_randomized(seed):
    crf, rng = _train(seed)
    tests = [_random_sentence(rng, rng.randint(0, 15))[0]
             for _ in range(80)]
    tests += [
        [],                                # empty sentence
        [["totally-unknown-feature"]],     # no known features at all
        [[], ["f1"], []],                  # empty feature positions
        [["f0"] * 4],                      # duplicated features
    ]
    reference = [crf.predict_reference(features) for features in tests]
    assert [crf.predict(features) for features in tests] == reference
    assert crf.predict_batch(tests) == reference


def test_fit_freezes_automatically():
    crf, _rng = _train(3, n_sentences=20, max_iterations=10)
    assert crf._frozen is not None


def test_predict_batch_empty():
    crf, _rng = _train(4, n_sentences=20, max_iterations=10)
    assert crf.predict_batch([]) == []


def test_untrained_predict_batch_raises():
    with pytest.raises(RuntimeError):
        LinearChainCrf().predict_batch([[["bias"]]])


def test_fingerprint_stable_across_freezes():
    crf, _rng = _train(5, n_sentences=20, max_iterations=10)
    first = crf.fingerprint()
    crf.freeze()
    assert crf.fingerprint() == first


def test_fingerprint_content_addressed():
    first, _ = _train(6, n_sentences=20, max_iterations=10)
    second, _ = _train(6, n_sentences=20, max_iterations=10)
    third, _ = _train(7, n_sentences=20, max_iterations=10)
    assert first.fingerprint() == second.fingerprint()
    assert first.fingerprint() != third.fingerprint()


def test_ml_tagger_cache_round_trip(tmp_path, medline_generator):
    """MlEntityTagger produces identical mentions cold, memory-warm,
    and disk-warm."""
    from repro.nlp.anno_cache import AnnotationCache
    from repro.ner.taggers import MlEntityTagger

    gold = [medline_generator.document(i) for i in range(12)]
    tagger = MlEntityTagger.train("gene", gold, max_iterations=15)

    def annotate(cache):
        tagger.annotation_cache = cache
        mentions = []
        for i in range(12, 18):
            document = medline_generator.document(i).document.copy_shallow()
            mentions.append([(m.start, m.end, m.text)
                             for m in tagger.annotate(document)])
        return mentions

    cold_cache = AnnotationCache(tmp_path)
    cold = annotate(cold_cache)
    assert cold_cache.misses > 0 and cold_cache.hits == 0
    warm = annotate(cold_cache)
    assert warm == cold
    assert cold_cache.hits > 0
    cold_cache.flush()
    disk_cache = AnnotationCache(tmp_path)
    assert annotate(disk_cache) == cold
    assert disk_cache.misses == 0
