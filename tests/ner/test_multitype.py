"""Merged multi-type dictionary: one scan, per-type-identical output.

The load-bearing property is union equivalence: for every text, the
merged automaton's per-type mention lists must equal — spans, types,
term ids, and order included — what each single-type
:class:`EntityDictionary` produces on its own.  The frozen flat-edge
form and the :class:`AutomatonCache` key must both cover the payload
table, so a cache hit can never silently drop type resolution.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.annotations import Document
from repro.corpora.vocabulary import TermEntry
from repro.ner.automaton import AhoCorasickAutomaton
from repro.ner.cache import AutomatonCache, content_key, payload_salt
from repro.ner.dictionary import (
    EntityDictionary, MultiTypeDictionary, merged_dictionary_for,
)

#: Term pools with deliberate cross-type surface collisions ("malexia"
#: is both a drug and a disease; "abraxol" both a drug and a gene) and
#: shared prefixes/suffixes to stress overlap resolution.
_POOLS = {
    "disease": ["carditis", "neuropathy", "malexia", "fibrosis-2"],
    "drug": ["abraxol", "zintamab", "corvex-9", "malexia"],
    "gene": ["brca1", "tp53", "abraxol", "nf-kb", "corvex"],
}
_FILLER = ["alpha", "beta", "the", "dose", "of", "regulates"]
_SURFACES = [w for pool in _POOLS.values() for w in pool]


def _dictionaries(chosen: dict[str, list[str]],
                  cache: AutomatonCache | None = None,
                  ) -> list[EntityDictionary]:
    return [
        EntityDictionary(etype,
                         [TermEntry(term, (), f"{etype[0].upper()}:{i}")
                          for i, term in enumerate(terms)],
                         cache=cache)
        for etype, terms in chosen.items() if terms]


def _reference(dictionaries, text):
    """Per-type reference: each dictionary tags the text on its own."""
    expected = {}
    for dictionary in dictionaries:
        document = Document("ref", text)
        expected[dictionary.entity_type] = dictionary.annotate(document)
    return expected


class TestScanEquivalence:
    TEXT = ("The dose of Abraxol and corvex 9 reduced malexia; "
            "BRCA1 and nf-kb regulate corvex-9 but not zintamabs.")

    def test_scan_matches_per_type_reference(self):
        dictionaries = _dictionaries(_POOLS)
        merged = MultiTypeDictionary(dictionaries)
        scan = merged.scan(self.TEXT)
        assert scan == _reference(dictionaries, self.TEXT)

    def test_shared_surface_fires_once_per_type(self):
        """A surface in two dictionaries keeps one pattern id per
        owning type, so both types report the hit."""
        dictionaries = _dictionaries({"drug": ["malexia"],
                                      "disease": ["malexia"]})
        merged = MultiTypeDictionary(dictionaries)
        scan = merged.scan("malexia was observed.")
        assert [m.entity_type for m in scan["drug"]] == ["drug"]
        assert [m.entity_type for m in scan["disease"]] == ["disease"]
        assert scan["drug"][0].span == scan["disease"][0].span

    def test_per_type_overlap_resolution_is_independent(self):
        """gene "corvex" and drug "corvex-9" overlap in the text; each
        type must resolve against its own matches only."""
        dictionaries = _dictionaries({"gene": ["corvex"],
                                      "drug": ["corvex-9"]})
        merged = MultiTypeDictionary(dictionaries)
        scan = merged.scan("corvex-9 binds corvex.")
        assert scan == _reference(dictionaries, "corvex-9 binds corvex.")
        assert [m.text for m in scan["drug"]] == ["corvex-9"]

    def test_single_type_merge_matches_component(self):
        dictionaries = _dictionaries({"gene": _POOLS["gene"]})
        merged = MultiTypeDictionary(dictionaries)
        assert merged.scan(self.TEXT) == _reference(dictionaries,
                                                    self.TEXT)


class TestConstruction:
    def test_entity_types_sorted(self):
        merged = MultiTypeDictionary(_dictionaries(_POOLS))
        assert merged.entity_types == ("disease", "drug", "gene")

    def test_duplicate_type_rejected(self):
        twice = _dictionaries({"gene": ["brca1"]}) + \
            _dictionaries({"gene": ["tp53"]})
        with pytest.raises(ValueError):
            MultiTypeDictionary(twice)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiTypeDictionary([])

    def test_merged_dictionary_for_memoizes(self):
        dictionaries = _dictionaries(_POOLS)
        first = merged_dictionary_for(dictionaries)
        again = merged_dictionary_for(list(reversed(dictionaries)))
        assert first is again
        other = merged_dictionary_for(_dictionaries(_POOLS))
        assert other is not first


class TestPayloadCache:
    PATTERNS = ["brca1", "malexia", "tp53"]
    PAYLOADS = [("gene", "G:0", "BRCA1"), ("disease", "D:0", "Malexia"),
                ("gene", "G:1", "TP53")]

    def test_payload_salt_deterministic_and_discriminating(self):
        assert payload_salt(self.PAYLOADS) == payload_salt(
            [tuple(p) for p in self.PAYLOADS])
        changed = [self.PAYLOADS[0], ("drug", "D:0", "Malexia"),
                   self.PAYLOADS[2]]
        assert payload_salt(self.PAYLOADS) != payload_salt(changed)
        assert payload_salt(self.PAYLOADS) != payload_salt(
            self.PAYLOADS[::-1])

    def test_miss_then_hit_preserves_payloads(self, tmp_path):
        cache = AutomatonCache(tmp_path)
        built, hit1 = cache.get_or_build(self.PATTERNS,
                                         payloads=self.PAYLOADS)
        assert not hit1 and built.payloads == self.PAYLOADS
        # Fresh instance: must deserialize the payload table from disk.
        loaded, hit2 = AutomatonCache(tmp_path).get_or_build(
            self.PATTERNS, payloads=self.PAYLOADS)
        assert hit2 and loaded.payloads == self.PAYLOADS
        assert loaded.find_all("brca1 near malexia") == \
            built.find_all("brca1 near malexia")

    def test_payload_key_separate_from_plain_key(self, tmp_path):
        """Same patterns with and without payloads must not share an
        entry — a plain automaton has no type resolution to serve."""
        cache = AutomatonCache(tmp_path)
        cache.get_or_build(self.PATTERNS)
        with_payloads, hit = cache.get_or_build(self.PATTERNS,
                                                payloads=self.PAYLOADS)
        assert not hit
        assert with_payloads.payloads == self.PAYLOADS

    def test_different_payloads_different_entries(self, tmp_path):
        cache = AutomatonCache(tmp_path)
        cache.get_or_build(self.PATTERNS, payloads=self.PAYLOADS)
        changed = [("drug", *p[1:]) for p in self.PAYLOADS]
        other, hit = cache.get_or_build(self.PATTERNS, payloads=changed)
        assert not hit
        assert other.payloads == changed

    def test_frozen_state_round_trips_payloads(self):
        automaton = AhoCorasickAutomaton()
        automaton.add_all(self.PATTERNS)
        automaton.set_payloads(self.PAYLOADS)
        automaton.build()
        restored = AhoCorasickAutomaton.from_state(automaton.to_state())
        assert restored.payloads == self.PAYLOADS
        assert restored.find_all("tp53 and brca1") == \
            automaton.find_all("tp53 and brca1")

    def test_plain_state_has_no_payloads(self):
        automaton = AhoCorasickAutomaton()
        automaton.add_all(self.PATTERNS)
        automaton.build()
        assert "payloads" not in automaton.to_state()
        restored = AhoCorasickAutomaton.from_state(automaton.to_state())
        assert restored.payloads is None

    def test_merged_dictionary_warm_from_component_cache(self, tmp_path):
        """The merged automaton inherits a component's cache and is
        byte-equivalent after a cold reload."""
        cold = MultiTypeDictionary(
            _dictionaries(_POOLS, cache=AutomatonCache(tmp_path)))
        assert not cold.cache_hit
        warm = MultiTypeDictionary(
            _dictionaries(_POOLS, cache=AutomatonCache(tmp_path)))
        assert warm.cache_hit
        text = TestScanEquivalence.TEXT
        assert warm.scan(text) == cold.scan(text)

    def test_content_key_covers_payload_salt(self):
        plain = content_key(self.PATTERNS)
        salted = content_key(self.PATTERNS,
                             salt=payload_salt(self.PAYLOADS))
        assert plain != salted


@st.composite
def _scenarios(draw):
    chosen = {etype: draw(st.lists(st.sampled_from(pool), unique=True,
                                   min_size=0, max_size=len(pool)))
              for etype, pool in _POOLS.items()}
    if not any(chosen.values()):
        chosen["gene"] = ["brca1"]
    words = draw(st.lists(
        st.sampled_from(_SURFACES + _FILLER +
                        ["Malexia", "corvex 9", "ABRAXOL", "brca1s"]),
        min_size=1, max_size=25))
    return chosen, " ".join(words) + "."


class TestPropertyUnionEquivalence:
    @given(_scenarios())
    @settings(max_examples=120, deadline=None)
    def test_property_merged_equals_per_type_union(self, scenario):
        chosen, text = scenario
        dictionaries = _dictionaries(chosen)
        merged = MultiTypeDictionary(dictionaries)
        scan = merged.scan(text)
        expected = _reference(dictionaries, text)
        # Full equality: spans, surfaces, types, term ids, order.
        assert scan == expected
        assert set(scan) == {d.entity_type for d in dictionaries}

    @given(_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_property_frozen_round_trip_preserves_scan(self, scenario):
        chosen, text = scenario
        merged = MultiTypeDictionary(_dictionaries(chosen))
        state = merged._automaton.to_state()
        restored = AhoCorasickAutomaton.from_state(state)
        assert restored.payloads == merged._automaton.payloads
        lowered = text.lower()
        assert restored.find_all(lowered) == \
            merged._automaton.find_all(lowered)
