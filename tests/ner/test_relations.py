"""Tests for co-occurrence relation extraction."""

import pytest

from repro.annotations import Document, EntityMention
from repro.ner.relations import (
    RelationExtractor, relations_to_records,
)
from repro.nlp.sentence import split_sentences
from repro.nlp.tokenize import tokenize


def _document(text, mentions):
    document = Document("d", text)
    document.sentences = split_sentences(text)
    for sentence in document.sentences:
        sentence.tokens = tokenize(sentence.text,
                                   base_offset=sentence.start)
    document.entities = mentions
    return document


def _mention(text, full_text, entity_type, method="dictionary"):
    start = full_text.index(text)
    return EntityMention(text, start, start + len(text), entity_type,
                         method=method)


class TestExtraction:
    TEXT = "Aspirin inhibits glossoma in patients. Nothing else here."

    def _drug_disease_doc(self):
        return _document(self.TEXT, [
            _mention("Aspirin", self.TEXT, "drug"),
            _mention("glossoma", self.TEXT, "disease"),
        ])

    def test_pair_extracted_with_verb(self):
        relations = RelationExtractor().extract(self._drug_disease_doc())
        assert len(relations) == 1
        relation = relations[0]
        assert relation.subject.text == "Aspirin"
        assert relation.object.text == "glossoma"
        assert relation.verb == "inhibits"
        assert not relation.negated
        assert relation.relation_type == "drug-disease"

    def test_confidence_higher_with_verb(self):
        with_verb = RelationExtractor().extract(
            self._drug_disease_doc())[0]
        text = "Aspirin and glossoma in patients."
        without_verb = RelationExtractor().extract(_document(text, [
            _mention("Aspirin", text, "drug"),
            _mention("glossoma", text, "disease"),
        ]))[0]
        assert with_verb.confidence > without_verb.confidence

    def test_negation_detected(self):
        text = "Aspirin does not inhibit glossoma in mice."
        relation = RelationExtractor().extract(_document(text, [
            _mention("Aspirin", text, "drug"),
            _mention("glossoma", text, "disease"),
        ]))[0]
        assert relation.negated
        assert relation.confidence < 0.7

    def test_cross_sentence_pairs_not_extracted(self):
        text = "Aspirin helps. Glossoma spreads."
        relations = RelationExtractor().extract(_document(text, [
            _mention("Aspirin", text, "drug"),
            _mention("Glossoma", text, "disease"),
        ]))
        assert relations == []

    def test_type_pair_filter(self):
        text = "Aspirin meets ibuprofen here."
        relations = RelationExtractor().extract(_document(text, [
            _mention("Aspirin", text, "drug"),
            _mention("ibuprofen", text, "drug"),
        ]))
        assert relations == []  # drug-drug not in default pairs

    def test_orientation_normalized(self):
        text = "glossoma responds to Aspirin treatment."
        relation = RelationExtractor().extract(_document(text, [
            _mention("glossoma", text, "disease"),
            _mention("Aspirin", text, "drug"),
        ]))[0]
        # Subject is always the first element of the configured pair.
        assert relation.subject.entity_type == "drug"

    def test_duplicate_method_mentions_deduped(self):
        text = "Aspirin inhibits glossoma."
        relations = RelationExtractor().extract(_document(text, [
            _mention("Aspirin", text, "drug", method="dictionary"),
            _mention("Aspirin", text, "drug", method="ml"),
            _mention("glossoma", text, "disease"),
        ]))
        assert len(relations) == 1
        assert relations[0].subject.method == "dictionary"

    def test_max_distance(self):
        filler = " very" * 40
        text = f"Aspirin is{filler} far from glossoma."
        relations = RelationExtractor(max_token_distance=10).extract(
            _document(text, [
                _mention("Aspirin", text, "drug"),
                _mention("glossoma", text, "disease"),
            ]))
        assert relations == []


class TestRecords:
    def test_records_shape(self):
        text = "Aspirin inhibits glossoma."
        relations = RelationExtractor().extract(_document(text, [
            _mention("Aspirin", text, "drug"),
            _mention("glossoma", text, "disease"),
        ]))
        records = relations_to_records(relations)
        assert records[0]["relation_type"] == "drug-disease"
        assert records[0]["verb"] == "inhibits"
        assert 0 < records[0]["confidence"] <= 1

    def test_operator_registered(self, pipeline):
        from repro.dataflow.packages import make_operator

        text = "Patients took kesumabtidine against glossoma."
        document = Document("d", text)
        pipeline.preprocess(document)
        document.entities = [
            _mention("kesumabtidine", text, "drug"),
            _mention("glossoma", text, "disease"),
        ]
        records = list(make_operator("extract_relations").process(
            [document]))
        assert len(records) == 1


class TestEndToEnd:
    def test_relations_from_pipeline_annotations(self, context):
        """Full stack: analyze web docs, then extract relations."""
        extractor = RelationExtractor()
        total = 0
        for document in context.corpus_documents("medline")[:6]:
            context.pipeline.analyze(document)
            total += len(extractor.extract(document))
        assert total > 0
