"""Tests for the linear-chain CRF, including a brute-force check of
the partition function on tiny chains."""

import itertools
import math

import pytest
import numpy as np

from repro.ner.crf import (
    LABELS, LinearChainCrf, bio_to_spans, spans_to_bio,
)


def _toy_training():
    """B/I on capitalized tokens, O elsewhere."""
    sentences = []
    data = [
        (["the", "Drug", "works"], ["O", "B", "O"]),
        (["take", "Big", "Pill", "now"], ["O", "B", "I", "O"]),
        (["no", "entities", "here"], ["O", "O", "O"]),
        (["Drug", "helps"], ["B", "O"]),
        (["we", "gave", "Big", "Pill"], ["O", "O", "B", "I"]),
        (["the", "end"], ["O", "O"]),
    ] * 4
    for words, labels in data:
        features = [[f"w={w.lower()}",
                     "cap" if w[0].isupper() else "lower", "bias"]
                    for w in words]
        sentences.append((features, labels))
    return sentences


@pytest.fixture(scope="module")
def toy_crf():
    return LinearChainCrf(l2=0.1, max_iterations=80).fit(_toy_training())


class TestBioSpans:
    def test_round_trip(self):
        labels = ["O", "B", "I", "O", "B", "O"]
        assert spans_to_bio(6, bio_to_spans(labels)) == labels

    def test_bio_to_spans(self):
        assert bio_to_spans(["B", "I", "O", "B"]) == [(0, 2), (3, 4)]

    def test_trailing_entity(self):
        assert bio_to_spans(["O", "B", "I"]) == [(1, 3)]

    def test_i_without_b_tolerated(self):
        assert bio_to_spans(["O", "I", "I"]) == [(1, 3)]

    def test_adjacent_entities(self):
        assert bio_to_spans(["B", "B"]) == [(0, 1), (1, 2)]

    def test_spans_to_bio_validates(self):
        with pytest.raises(ValueError):
            spans_to_bio(3, [(2, 5)])
        with pytest.raises(ValueError):
            spans_to_bio(3, [(2, 2)])


class TestTraining:
    def test_learns_toy_pattern(self, toy_crf):
        features = [[f"w={w.lower()}",
                     "cap" if w[0].isupper() else "lower", "bias"]
                    for w in ["use", "Big", "Pill", "today"]]
        assert toy_crf.predict(features) == ["O", "B", "I", "O"]

    def test_unknown_features_ignored(self, toy_crf):
        prediction = toy_crf.predict([["w=zzz", "lower", "bias"],
                                      ["totally-new-feature"]])
        assert len(prediction) == 2

    def test_untrained_predict_raises(self):
        with pytest.raises(RuntimeError):
            LinearChainCrf().predict([["bias"]])

    def test_empty_sentence(self, toy_crf):
        assert toy_crf.predict([]) == []

    def test_feature_index_built(self, toy_crf):
        assert toy_crf.n_features > 3
        assert toy_crf.trained

    def test_duplicate_features_deduplicated(self, toy_crf):
        once = toy_crf.predict([["cap", "bias"]])
        twice = toy_crf.predict([["cap", "cap", "bias", "bias"]])
        assert once == twice


class TestPartitionFunction:
    def _brute_force_log_z(self, crf, features):
        sentence = crf._encode(features, None)
        emissions = crf._emissions(sentence, crf.state_weights)
        n = emissions.shape[0]
        total = -math.inf
        for labels in itertools.product(range(len(LABELS)), repeat=n):
            score = 0.0
            previous = None
            for t, label in enumerate(labels):
                score += emissions[t, label]
                if previous is not None:
                    score += crf.transitions[previous, label]
                previous = label
            total = np.logaddexp(total, score)
        return float(total)

    def test_forward_matches_brute_force(self, toy_crf):
        features = [["cap", "bias"], ["lower", "bias"], ["w=the", "bias"]]
        sentence = toy_crf._encode(features, None)
        emissions = toy_crf._emissions(sentence, toy_crf.state_weights)
        _alpha, log_z = toy_crf._forward(emissions, toy_crf.transitions)
        assert log_z == pytest.approx(
            self._brute_force_log_z(toy_crf, features), abs=1e-8)

    def test_log_likelihood_is_normalized(self, toy_crf):
        """Sum of P(y|x) over all label sequences must be 1."""
        features = [["cap", "bias"], ["lower", "bias"]]
        total = 0.0
        for labels in itertools.product(LABELS, repeat=2):
            total += math.exp(toy_crf.log_likelihood(features, list(labels)))
        assert total == pytest.approx(1.0, abs=1e-8)

    def test_viterbi_is_argmax(self, toy_crf):
        """Viterbi output scores at least as high as any enumeration."""
        features = [["cap", "bias"], ["cap", "bias"], ["lower", "bias"]]
        best = toy_crf.predict(features)
        best_ll = toy_crf.log_likelihood(features, best)
        for labels in itertools.product(LABELS, repeat=3):
            assert best_ll >= toy_crf.log_likelihood(
                features, list(labels)) - 1e-9
