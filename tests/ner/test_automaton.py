"""Tests for the Aho-Corasick automaton, including an equivalence
property against naive multi-pattern search."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ner.automaton import AhoCorasickAutomaton, Match


def _build(patterns):
    automaton = AhoCorasickAutomaton()
    automaton.add_all(patterns)
    automaton.build()
    return automaton


def _naive(patterns, text):
    found = set()
    for pattern_id, pattern in enumerate(patterns):
        start = 0
        while True:
            index = text.find(pattern, start)
            if index < 0:
                break
            found.add((index, index + len(pattern), pattern_id))
            start = index + 1
    return found


class TestBasics:
    def test_single_pattern(self):
        automaton = _build(["abc"])
        assert automaton.find_all("xxabcxxabc") == [
            Match(2, 5, 0), Match(7, 10, 0)]

    def test_overlapping_patterns(self):
        automaton = _build(["he", "she", "hers"])
        spans = {(m.start, m.end) for m in automaton.find_all("shers")}
        assert spans == {(1, 3), (0, 3), (1, 5)}

    def test_pattern_inside_pattern(self):
        automaton = _build(["a", "aa", "aaa"])
        assert len(automaton.find_all("aaa")) == 6

    def test_no_match(self):
        assert _build(["zzz"]).find_all("abcdef") == []

    def test_empty_text(self):
        assert _build(["a"]).find_all("") == []

    def test_unicode(self):
        automaton = _build(["naïve", "café"])
        assert len(automaton.find_all("a naïve café visit")) == 2

    def test_pattern_lookup(self):
        automaton = _build(["alpha", "beta"])
        match = automaton.find_all("beta")[0]
        assert automaton.pattern(match.pattern_id) == "beta"


class TestLifecycle:
    def test_add_after_build_rejected(self):
        automaton = _build(["a"])
        with pytest.raises(RuntimeError):
            automaton.add("b")

    def test_match_before_build_rejected(self):
        automaton = AhoCorasickAutomaton()
        automaton.add("a")
        with pytest.raises(RuntimeError):
            automaton.find_all("a")

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            AhoCorasickAutomaton().add("")

    def test_len_counts_patterns(self):
        assert len(_build(["a", "b", "c"])) == 3

    def test_memory_estimate_grows_with_patterns(self):
        small = _build(["ab"])
        large = _build([f"pattern{i}" for i in range(500)])
        assert large.approx_memory_bytes() > 50 * small.approx_memory_bytes()

    def test_node_count(self):
        automaton = _build(["ab", "ac"])
        # root + a + b + c
        assert automaton.n_nodes == 4


@given(st.lists(st.text(alphabet="ab", min_size=1, max_size=4),
                min_size=1, max_size=8, unique=True),
       st.text(alphabet="ab", max_size=60))
@settings(max_examples=200, deadline=None)
def test_property_equivalent_to_naive_search(patterns, text):
    automaton = _build(patterns)
    got = {(m.start, m.end, m.pattern_id)
           for m in automaton.find_all(text)}
    assert got == _naive(patterns, text)


@given(st.lists(st.text(alphabet="xyz ", min_size=1, max_size=6),
                min_size=1, max_size=10, unique=True))
@settings(max_examples=100, deadline=None)
def test_property_every_pattern_matches_itself(patterns):
    automaton = _build(patterns)
    for pattern_id, pattern in enumerate(patterns):
        matches = automaton.find_all(pattern)
        assert any(m.pattern_id == pattern_id
                   and (m.start, m.end) == (0, len(pattern))
                   for m in matches)
