"""Tests for the ML taggers, feature templates, and post-filters."""

import pytest

from repro.annotations import Document, EntityMention
from repro.ner.features import extract_features, sentence_features, token_shape
from repro.ner.postfilter import (
    filter_short_mentions, filter_tla_mentions, is_tla,
)


class TestFeatureTemplates:
    def test_token_shapes(self):
        assert token_shape("ABC") == "tla"
        assert token_shape("ABCD") == "allcaps"
        assert token_shape("Word") == "init_cap"
        assert token_shape("p53") == "alnum_mix"
        assert token_shape("42") == "digits"
        assert token_shape("...") == "punct"
        assert token_shape("gene-like") == "hyphenated"
        assert token_shape("plain") == "lower"

    def test_linear_features_present(self):
        features = extract_features(["the", "BRCA1", "gene"], 1)
        assert "w=brca1" in features
        assert "w-1=the" in features
        assert "w+1=gene" in features
        assert "bias" in features

    def test_boundary_positions(self):
        features = extract_features(["solo"], 0)
        assert "w-1=<bos>" in features
        assert "w+1=<eos>" in features

    def test_quadratic_context_scales(self):
        words = ["w"] * 12
        linear = extract_features(words, 5, quadratic_context=False)
        quadratic = extract_features(words, 5, quadratic_context=True)
        assert len(quadratic) >= len(linear) + len(words) - 1

    def test_sentence_features_shape(self):
        features = sentence_features(["a", "b", "c"])
        assert len(features) == 3


class TestMlTaggers:
    def test_trained_taggers_annotate(self, pipeline, relevant_generator):
        gold = relevant_generator.document(50)
        document = gold.document.copy_shallow()
        mentions = pipeline.ml_taggers["gene"].annotate(document)
        assert all(m.method == "ml" for m in mentions)
        assert all(m.entity_type == "gene" for m in mentions)

    def test_mention_offsets_valid(self, pipeline, relevant_generator):
        gold = relevant_generator.document(51)
        document = gold.document.copy_shallow()
        for tagger in pipeline.ml_taggers.values():
            for mention in tagger.annotate(document):
                assert document.text[mention.start:mention.end] == \
                    mention.text

    def test_ml_finds_novel_entities(self, pipeline, relevant_generator):
        """ML recall extends beyond the dictionary (the paper's key
        Table 4 contrast)."""
        found_novel = 0
        for i in range(60, 75):
            gold = relevant_generator.document(i)
            document = gold.document.copy_shallow()
            predicted = set()
            for tagger in pipeline.ml_taggers.values():
                predicted |= {(m.start, m.end)
                              for m in tagger.annotate(document)}
            for entity in gold.entities:
                if not entity.in_dictionary and \
                        (entity.mention.start, entity.mention.end) in predicted:
                    found_novel += 1
        assert found_novel > 0

    def test_startup_cost_small(self, pipeline):
        assert pipeline.ml_taggers["drug"].startup_seconds() < 5

    def test_annotate_many_matches_per_document(self, pipeline,
                                                relevant_generator):
        """Cross-document batch decode is equivalent to per-document
        annotate, mention for mention."""
        golds = [relevant_generator.document(i) for i in range(80, 88)]
        for tagger in pipeline.ml_taggers.values():
            singles = [tagger.annotate(g.document.copy_shallow())
                       for g in golds]
            batch_docs = [g.document.copy_shallow() for g in golds]
            batched = tagger.annotate_many(batch_docs)
            assert batched == singles
            for document, mentions in zip(batch_docs, batched):
                assert document.entities == mentions

    def test_annotate_many_empty_and_blank_documents(self, pipeline):
        tagger = pipeline.ml_taggers["disease"]
        assert tagger.annotate_many([]) == []
        blank = Document("blank", "")
        assert tagger.annotate_many([blank]) == [[]]
        assert blank.entities == []


class TestPostFilter:
    def test_is_tla(self):
        assert is_tla("ABC")
        assert not is_tla("ABCD")
        assert not is_tla("AB1")
        assert not is_tla("abc")

    def test_filter_drops_ml_gene_tlas(self):
        mentions = [
            EntityMention("ABC", 0, 3, "gene", method="ml"),
            EntityMention("ABC", 0, 3, "gene", method="dictionary"),
            EntityMention("ABC", 0, 3, "drug", method="ml"),
            EntityMention("BRCA1", 4, 9, "gene", method="ml"),
        ]
        kept = filter_tla_mentions(mentions)
        assert len(kept) == 3
        assert all(not (is_tla(m.text) and m.entity_type == "gene"
                        and m.method == "ml") for m in kept)

    def test_filter_short(self):
        mentions = [EntityMention("a", 0, 1, "gene"),
                    EntityMention("ab", 0, 2, "gene")]
        assert len(filter_short_mentions(mentions, min_length=2)) == 1

    def test_tla_pathology_reproduced(self, pipeline):
        """The ML gene tagger trained on Medline tags bare TLAs in web
        text (the paper's 5.5 M false-positive story)."""
        text = ("Each study shows QQJ in these patients. The report "
                "indicates ZBW with both groups. This analysis supports "
                "XKV in the community. Our review confirms VQR during "
                "meetings.")
        document = Document("d", text)
        mentions = pipeline.ml_taggers["gene"].annotate(document)
        tla_hits = [m for m in mentions if is_tla(m.text)]
        assert tla_hits, "expected TLA false positives from the gene tagger"
        assert not filter_tla_mentions(mentions) == mentions
