"""Regression: ``None`` vs ``[]`` annotation sentinels.

``document.sentences``/``sentence.tokens`` distinguish *never
computed* (``None``) from *computed, empty* (``[]``).  The lazy
consumers used to test truthiness, so a legitimately empty split or
token list was silently recomputed; these tests pin the contract:
``[]`` is trusted, only ``None`` triggers recomputation.
"""

import pytest

import repro.ner.taggers as taggers_module
from repro.annotations import Document, Sentence
from repro.nlp.sentence import split_sentences
from repro.nlp.tokenize import tokenize


@pytest.fixture
def gene_tagger(pipeline):
    return pipeline.ml_taggers["gene"]


def _forbid(monkeypatch, name):
    def boom(*args, **kwargs):
        raise AssertionError(f"{name} must not be called")
    monkeypatch.setattr(taggers_module, name, boom)


class TestMlTaggerSentinels:
    def test_empty_sentence_list_not_resplit(self, gene_tagger,
                                             monkeypatch):
        _forbid(monkeypatch, "split_sentences")
        document = Document("d", "BRCA1 binds TP53.", sentences=[])
        mentions = gene_tagger.annotate(document)
        assert mentions == []
        assert document.sentences == []

    def test_none_sentences_resplit(self, gene_tagger, monkeypatch):
        calls = []

        def counting(text):
            calls.append(text)
            return split_sentences(text)
        monkeypatch.setattr(taggers_module, "split_sentences", counting)
        document = Document("d", "BRCA1 binds TP53.")
        gene_tagger.annotate(document)
        assert len(calls) == 1
        # annotate() works off the transient split without persisting
        # it; the document still reads "never computed".
        assert document.sentences is None

    def test_empty_token_list_not_retokenized(self, gene_tagger,
                                              monkeypatch):
        _forbid(monkeypatch, "tokenize")
        document = Document(
            "d", "BRCA1.",
            sentences=[Sentence(0, 6, "BRCA1.", tokens=[])])
        mentions = gene_tagger.annotate(document)
        assert mentions == []
        assert document.sentences[0].tokens == []

    def test_none_tokens_retokenized(self, gene_tagger, monkeypatch):
        calls = []

        def counting(text, base_offset=0):
            calls.append(text)
            return tokenize(text, base_offset=base_offset)
        monkeypatch.setattr(taggers_module, "tokenize", counting)
        document = Document(
            "d", "BRCA1.", sentences=[Sentence(0, 6, "BRCA1.")])
        gene_tagger.annotate(document)
        assert calls == ["BRCA1."]


class TestPipelineSentinels:
    def test_analyze_trusts_empty_split(self, pipeline, monkeypatch):
        def boom(text):
            raise AssertionError("splitter must not run on []")
        monkeypatch.setattr(pipeline.splitter, "split", boom)
        document = Document("d", "BRCA1 binds TP53.", sentences=[])
        pipeline.analyze(document, methods=("ml",))
        assert document.sentences == []
        assert document.entities == []

    def test_analyze_batch_trusts_empty_split(self, pipeline,
                                              monkeypatch):
        def boom(text):
            raise AssertionError("splitter must not run on []")
        monkeypatch.setattr(pipeline.splitter, "split", boom)
        document = Document("d", "BRCA1 binds TP53.", sentences=[])
        pipeline.analyze_batch([document], methods=("ml",))
        assert document.sentences == []
        assert document.entities == []

    def test_analyze_splits_none(self, pipeline):
        document = Document("d", "BRCA1 binds TP53.")
        pipeline.analyze(document, methods=("ml",))
        assert document.sentences is not None
        assert document.sentences[0].tokens
