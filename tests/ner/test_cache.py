"""Tests for the persistent Aho-Corasick build cache."""

import pytest

from repro.ner.automaton import AhoCorasickAutomaton
from repro.ner.cache import AutomatonCache, content_key
from repro.ner.dictionary import EntityDictionary
from repro.corpora.vocabulary import TermEntry

PATTERNS = ["brca1", "brca2", "tp53", "tumor necrosis factor", "tnf"]


def _build(patterns):
    automaton = AhoCorasickAutomaton()
    automaton.add_all(patterns)
    automaton.build()
    return automaton


class TestContentKey:
    def test_deterministic(self):
        assert content_key(PATTERNS) == content_key(list(PATTERNS))

    def test_order_sensitive(self):
        assert content_key(PATTERNS) != content_key(PATTERNS[::-1])

    def test_any_change_changes_key(self):
        assert content_key(PATTERNS) != content_key(PATTERNS + ["egfr"])
        assert content_key(PATTERNS) != content_key(PATTERNS[:-1])

    def test_salt_separates_keys(self):
        assert content_key(PATTERNS) != content_key(PATTERNS, salt="v2")


class TestRoundTrip:
    def test_state_round_trip_preserves_matches(self):
        original = _build(PATTERNS)
        restored = AhoCorasickAutomaton.from_state(original.to_state())
        text = "brca1 and tp53 regulate tumor necrosis factor (tnf)"
        assert restored.find_all(text) == original.find_all(text)
        assert len(restored) == len(original)
        assert restored.n_nodes == original.n_nodes

    def test_to_state_requires_built(self):
        automaton = AhoCorasickAutomaton()
        automaton.add("abc")
        with pytest.raises(RuntimeError):
            automaton.to_state()

    def test_store_then_load(self, tmp_path):
        cache = AutomatonCache(tmp_path)
        key = content_key(PATTERNS)
        cache.store(key, _build(PATTERNS))
        loaded = AutomatonCache(tmp_path).load(key)
        assert loaded is not None
        assert loaded.find_all("tp53 near brca2") == \
            _build(PATTERNS).find_all("tp53 near brca2")


class TestGetOrBuild:
    def test_miss_then_hit(self, tmp_path):
        cache = AutomatonCache(tmp_path)
        first, hit1 = cache.get_or_build(PATTERNS)
        second, hit2 = cache.get_or_build(PATTERNS)
        assert (hit1, hit2) == (False, True)
        assert (cache.misses, cache.hits) == (1, 1)
        text = "tnf alpha and brca1"
        assert first.find_all(text) == second.find_all(text)

    def test_hit_across_cache_instances(self, tmp_path):
        AutomatonCache(tmp_path).get_or_build(PATTERNS)
        fresh = AutomatonCache(tmp_path)
        _, hit = fresh.get_or_build(PATTERNS)
        assert hit
        assert fresh.hits == 1

    def test_changed_dictionary_invalidates(self, tmp_path):
        cache = AutomatonCache(tmp_path)
        cache.get_or_build(PATTERNS)
        _, hit = cache.get_or_build(PATTERNS + ["egfr"])
        assert not hit
        assert cache.misses == 2

    def test_corrupt_file_rebuilds(self, tmp_path):
        cache = AutomatonCache(tmp_path)
        key = content_key(PATTERNS)
        cache.get_or_build(PATTERNS)
        cache.path_for(key).write_bytes(b"\x00garbage")
        fresh = AutomatonCache(tmp_path)
        automaton, hit = fresh.get_or_build(PATTERNS)
        assert not hit
        assert automaton.find_all("brca1") == _build(PATTERNS).find_all(
            "brca1")

    def test_clear_removes_entries(self, tmp_path):
        cache = AutomatonCache(tmp_path)
        cache.get_or_build(PATTERNS)
        assert cache.clear() == 1
        fresh = AutomatonCache(tmp_path)
        _, hit = fresh.get_or_build(PATTERNS)
        assert not hit


class TestDictionaryIntegration:
    @staticmethod
    def _entries():
        return [TermEntry(canonical=name, term_id=f"G{i}")
                for i, name in enumerate(["BRCA1", "TP53", "TNF-alpha"])]

    def test_cached_dictionary_identical_matches(self, tmp_path):
        cache = AutomatonCache(tmp_path)
        cold = EntityDictionary("gene", self._entries(), cache=cache)
        warm = EntityDictionary("gene", self._entries(),
                                cache=AutomatonCache(tmp_path))
        assert not cold.cache_hit
        assert warm.cache_hit
        from repro.annotations import Document

        for text in ("brca1 binds tp53", "tnf alpha or TNF-alpha levels"):
            doc_a = Document(doc_id="a", text=text)
            doc_b = Document(doc_id="a", text=text)
            cold_mentions = cold.annotate(doc_a)
            warm_mentions = warm.annotate(doc_b)
            assert cold_mentions == warm_mentions

    def test_uncached_dictionary_still_works(self):
        dictionary = EntityDictionary("gene", self._entries())
        assert not dictionary.cache_hit
        assert dictionary.build_seconds >= 0
