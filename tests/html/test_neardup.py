"""Tests for MinHash near-duplicate detection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.annotations import Document
from repro.html.neardup import (
    MinHasher, NearDuplicateFilter, jaccard, shingles,
)

BASE = ("the patients received treatment and the response improved "
        "significantly across the study cohort during the trial period")


class TestShingles:
    def test_identical_texts_identical_shingles(self):
        assert shingles(BASE) == shingles(BASE)

    def test_case_insensitive(self):
        assert shingles(BASE) == shingles(BASE.upper())

    def test_short_text(self):
        assert len(shingles("two words")) == 1

    def test_empty(self):
        assert shingles("") == set()

    def test_jaccard_bounds(self):
        a, b = shingles(BASE), shingles(BASE + " with extra words at end")
        assert 0.5 < jaccard(a, b) < 1.0
        assert jaccard(a, a) == 1.0
        assert jaccard(set(), set()) == 1.0


class TestMinHasher:
    def test_identical_signature(self):
        hasher = MinHasher(n_hashes=32)
        assert hasher.signature(shingles(BASE)) == \
            hasher.signature(shingles(BASE))

    def test_estimate_close_to_exact(self):
        hasher = MinHasher(n_hashes=128)
        other = BASE.replace("patients", "subjects")
        a, b = shingles(BASE), shingles(other)
        exact = jaccard(a, b)
        estimate = MinHasher.estimated_jaccard(hasher.signature(a),
                                               hasher.signature(b))
        assert abs(estimate - exact) < 0.25

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MinHasher.estimated_jaccard((1, 2), (1,))

    @given(st.text(alphabet="abcde ", min_size=10, max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_property_self_similarity_is_one(self, text):
        hasher = MinHasher(n_hashes=16)
        signature = hasher.signature(shingles(text))
        assert MinHasher.estimated_jaccard(signature, signature) == 1.0


class TestNearDuplicateFilter:
    def test_exact_duplicate_dropped(self):
        near_filter = NearDuplicateFilter()
        assert not near_filter.is_duplicate(BASE)
        assert near_filter.is_duplicate(BASE)
        assert near_filter.dropped == 1

    def test_near_duplicate_dropped(self):
        # One word changed out of ~20: exact Jaccard of the 4-shingle
        # sets is ~0.56, so a 0.45 threshold must catch it.
        near_filter = NearDuplicateFilter(threshold=0.45)
        assert not near_filter.is_duplicate(BASE)
        assert near_filter.is_duplicate(
            BASE.replace("significantly", "notably"))

    def test_distinct_text_kept(self):
        near_filter = NearDuplicateFilter()
        assert not near_filter.is_duplicate(BASE)
        assert not near_filter.is_duplicate(
            "completely different content about football matches and "
            "weather forecasts in the city yesterday evening")

    def test_filter_documents(self):
        documents = [Document("1", BASE), Document("2", BASE),
                     Document("3", "another unrelated text entirely "
                                    "about music concerts and tickets")]
        kept = NearDuplicateFilter().filter(documents)
        assert [d.doc_id for d in kept] == ["1", "3"]

    def test_bands_must_divide(self):
        with pytest.raises(ValueError):
            NearDuplicateFilter(n_hashes=64, bands=10)

    def test_operator_registered(self):
        from repro.dataflow.packages import make_operator

        operator = make_operator("dedup_near_duplicates", threshold=0.7)
        documents = [Document("1", BASE), Document("2", BASE)]
        assert len(list(operator.process(documents))) == 1


class TestEpochsAndCheckpointing:
    def _texts(self):
        return [f"document number {i} about topic {i % 3} with "
                f"plenty of distinct filler words item{i} value{i}"
                for i in range(8)]

    def test_state_round_trip_preserves_decisions(self):
        full = NearDuplicateFilter(n_hashes=32, bands=8)
        resumed = NearDuplicateFilter(n_hashes=32, bands=8)
        texts = self._texts() + self._texts()  # second half duplicates
        for text in texts[:8]:
            full.is_duplicate(text)
        resumed.load_state(full.state_dict())
        assert len(resumed) == len(full)
        for text in texts[8:]:
            assert resumed.is_duplicate(text) == full.is_duplicate(text)
        assert resumed.state_dict() == full.state_dict()

    def test_signature_width_mismatch_rejected(self):
        narrow = NearDuplicateFilter(n_hashes=32, bands=8)
        narrow.is_duplicate("some text to register here")
        wide = NearDuplicateFilter(n_hashes=64, bands=16)
        with pytest.raises(ValueError, match="length mismatch"):
            wide.load_state(narrow.state_dict())

    def test_begin_epoch_resets_store_but_not_lifetime_drops(self):
        filt = NearDuplicateFilter()
        assert not filt.is_duplicate(BASE)
        assert filt.is_duplicate(BASE)
        assert filt.dropped == 1
        filt.begin_epoch(1)
        assert len(filt) == 0
        assert filt.dropped == 1
        assert not filt.is_duplicate(BASE)  # dedups within the epoch

    def test_begin_epoch_carry_keeps_store(self):
        filt = NearDuplicateFilter()
        filt.is_duplicate(BASE)
        filt.begin_epoch(1, carry=True)
        assert filt.is_duplicate(BASE)

    def test_epoch_may_not_move_backwards(self):
        filt = NearDuplicateFilter()
        filt.begin_epoch(2)
        with pytest.raises(ValueError, match="backwards"):
            filt.begin_epoch(1)
