"""Tests for MIME sniffing."""

from repro.html.mime import is_textual, sniff_mime


class TestMagicBytes:
    def test_pdf(self):
        assert sniff_mime("%PDF-1.4 binary...") == "application/pdf"

    def test_ole(self):
        assert sniff_mime("\xd0\xcf\x11\xe0rest") == \
            "application/vnd.ms-powerpoint"

    def test_png(self):
        assert sniff_mime("\x89PNG\r\n") == "image/png"

    def test_zip(self):
        assert sniff_mime("PK\x03\x04data") == "application/zip"

    def test_magic_beats_declared(self):
        # Mislabeling servers: the paper's MIME pitfall.
        assert sniff_mime("%PDF-1.4", declared="text/html") == \
            "application/pdf"

    def test_magic_beats_extension(self):
        assert sniff_mime("%PDF-1.4", url="http://h/x.html") == \
            "application/pdf"


class TestHtmlMarkers:
    def test_doctype(self):
        assert sniff_mime("<!DOCTYPE html><html>") == "text/html"

    def test_html_tag_with_leading_space(self):
        assert sniff_mime("   \n<html><body>") == "text/html"

    def test_fragment(self):
        assert sniff_mime("<div><p>x</p></div>") == "text/html"


class TestFallbacks:
    def test_extension(self):
        assert sniff_mime("random words", url="http://h/a.pdf") == \
            "application/pdf"

    def test_declared_used_when_unknown(self):
        assert sniff_mime("random words here", url="http://h/a.xyz",
                          declared="application/x-custom; charset=x") == \
            "application/x-custom"

    def test_printable_text_fallback(self):
        assert sniff_mime("just some plain readable words") == "text/plain"

    def test_binary_fallback(self):
        blob = "".join(chr(i % 32) for i in range(100))
        assert sniff_mime(blob) == "application/octet-stream"


class TestIsTextual:
    def test_textual_types(self):
        assert is_textual("text/html")
        assert is_textual("text/plain")
        assert is_textual("text/css")

    def test_binary_types(self):
        assert not is_textual("application/pdf")
        assert not is_textual("image/png")
        assert not is_textual("application/octet-stream")
