"""Tests for markup detection and repair."""

from repro.html.repair import detect_markup_issues, repair_html, strip_markup
from repro.web.htmlgen import PageRenderer


class TestDetect:
    def test_clean_page_minimal_issues(self):
        html = ("<html><body><div><p>Hello there.</p></div>"
                "</body></html>")
        assert detect_markup_issues(html) == []

    def test_unquoted_attr_detected(self):
        issues = detect_markup_issues(
            "<html><body><a href=http://x>l</a></body></html>")
        assert "unquoted_attr" in issues

    def test_raw_ampersand_detected(self):
        issues = detect_markup_issues(
            "<html><body>bread & butter</body></html>")
        assert "raw_ampersand" in issues

    def test_entity_not_flagged(self):
        issues = detect_markup_issues(
            "<html><body>bread &amp; butter</body></html>")
        assert "raw_ampersand" not in issues

    def test_truncation_detected(self):
        issues = detect_markup_issues("<html><body><p>cut")
        assert "truncated" in issues

    def test_unbalanced_detected(self):
        issues = detect_markup_issues(
            "<html><body><div><div><p>x</p></div></body></html>")
        assert "unbalanced_tags" in issues

    def test_deprecated_tag_detected(self):
        issues = detect_markup_issues(
            "<html><body><font size=3>x</font></body></html>")
        assert "deprecated_tag" in issues


class TestRepair:
    def test_repaired_output_is_balanced(self):
        dirty = "<html><body><div><p>one<p>two</body>"
        repaired, report = repair_html(dirty)
        assert repaired.count("<p>") == repaired.count("</p>")
        assert repaired.count("<div") == repaired.count("</div>")
        assert report.defective

    def test_rendered_defect_pages_repairable(self):
        renderer = PageRenderer(seed=2, defect_rate=1.0)
        for i in range(20):
            html = renderer.render(f"http://h{i}.example.org/x.html",
                                   "Title", "Body text here. More text.",
                                   [], page_index=i)
            repaired, report = repair_html(html)
            if report.transcodable:
                assert detect_markup_issues(repaired).count(
                    "unbalanced_tags") == 0

    def test_untranscodable_flagged(self):
        # A long blob with no structure at all.
        repaired, report = repair_html("x" * 500)
        assert not report.transcodable
        assert "untranscodable" in report.issues

    def test_short_plain_text_is_fine(self):
        _repaired, report = repair_html("<p>tiny</p>")
        assert report.transcodable


class TestStripMarkup:
    def test_strips_all_tags(self):
        text = strip_markup("<div><p>a</p><p>b <b>c</b></p></div>")
        assert "<" not in text
        assert "a" in text and "c" in text

    def test_skips_script_bodies(self):
        text = strip_markup("<script>var x = 1;</script><p>keep</p>")
        assert "var x" in text or "keep" in text  # script text is a text node
        assert "keep" in text
