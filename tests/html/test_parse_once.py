"""The parse-once document path must match the parse-per-extractor one.

``extract_blocks(..., repaired=True)``, ``extract_blocks_from_tree``,
``extract_links_from_tree`` and ``extract_title_from_tree`` exist so
the crawler can repair a page once, parse it once, and feed the same
tree to every extractor.  Each shared-tree variant must produce
exactly what its standalone (re-parsing) counterpart produces.
"""

from __future__ import annotations

import pytest

from repro.crawler.parser import (
    extract_links, extract_links_from_tree, extract_title,
    extract_title_from_tree,
)
from repro.html.boilerplate import (
    BoilerplateDetector, extract_blocks, extract_blocks_from_tree,
)
from repro.html.dom import parse_html
from repro.html.repair import repair_document, repair_html
from repro.web.htmlgen import PageRenderer

BASE = "http://host0.example.org/page.html"

PAGES = [
    "<html><head><title>A Title</title></head><body><p>"
    + "word " * 40 + '</p><a href="/x.html">link</a></body></html>',
    # Malformed markup: unclosed tags, unquoted attributes.
    "<html><body><div><p>" + "text " * 30
    + '<a href=/rel.html>go</a><ul><li>one<li>two</body>',
    # No title, anchors with skippable schemes.
    '<html><body><a href="javascript:void(0)">x</a>'
    '<a href="mailto:a@b">m</a><a href="/ok.html">y</a>'
    "<p>" + "content " * 25 + "</p></body></html>",
    "",
]


def _rendered_pages():
    renderer = PageRenderer(seed=13)
    body = "Gene expression in tumor cells. " * 20
    return [renderer.render(f"http://host{i}.example.org/item{i}.html",
                            f"Title {i}", body,
                            [f"http://host{i}.example.org/item{i + 1}.html"],
                            page_index=i)
            for i in range(4)]


class TestSharedTreeEquivalence:
    @pytest.mark.parametrize("html", PAGES + _rendered_pages())
    def test_blocks_links_title_from_one_tree(self, html):
        repaired, _report = repair_html(html)
        tree = parse_html(repaired)
        assert (extract_blocks_from_tree(tree)
                == extract_blocks(repaired, repaired=True))
        assert (extract_links_from_tree(tree, BASE)
                == extract_links(repaired, BASE))
        assert extract_title_from_tree(tree) == extract_title(repaired)

    @pytest.mark.parametrize("html", PAGES + _rendered_pages())
    def test_detector_extract_from_tree(self, html):
        detector = BoilerplateDetector()
        repaired, _report = repair_html(html)
        assert (detector.extract_from_tree(parse_html(repaired))
                == detector.extract(repaired, repaired=True))

    def test_extract_repaired_flag_skips_second_repair(self):
        """On already-repaired markup the repaired=True fast path and
        the historical re-repairing path agree (repair is idempotent on
        its own output for content text)."""
        detector = BoilerplateDetector()
        for html in _rendered_pages():
            repaired, _report = repair_html(html)
            assert (detector.extract(repaired, repaired=True)
                    == detector.extract(repaired))

    def test_find_first_matches_find_all_head(self):
        tree = parse_html("<div><p>a</p><title>T1</title>"
                          "<title>T2</title></div>")
        assert tree.find_first("title") is tree.find_all("title")[0]
        assert tree.find_first("missing") is None


# Inputs chosen to hit every normalisation the serialize / re-parse
# round-trip performs: text-run merging across ignored closers and
# stray '<', entity handling in text and attributes, raw-text
# escaping, void elements, implicit closes, and the transcodability
# screen for long structureless input.
TRICKY = [
    "<p>a</nope>b</p>",                      # ignored closer: runs merge
    "a<b<c",                                  # stray '<' becomes text
    "<p>x &amp; y &lt;z&gt;</p>",             # entities in text
    '<p data-x="a &amp; b">t</p>',            # entities in attributes
    "<script>if (a < b && c) { run(); }</script>",   # raw text, escaped
    "<style>  .a { color: red }  </style>",   # raw text keeps whitespace
    "<div>foo<span>x</span>bar</div>",        # separate runs stay separate
    "<ul><li>one<li>two</ul>",                # implicit closes
    "<option>1<option>2",
    "<p>first<p>second",
    "<br><hr><img src=x>",                    # void elements
    "<div/>self<div>open",                    # self-closing non-void
    "  \n\t  ",                               # whitespace-only
    "",
    "x" * 500,                                # long, structureless
    "word " * 50,                             # long, structureless, spaces
    "<p>" + "word " * 50 + "</p>",            # long, structured
]

#: The adjacency re-serialization does NOT preserve: tr-under-tr built
#: via a single-level implicit close gets hoisted on re-parse, so
#: repair_document must fall back to the literal round-trip.
HAZARD = "<table><tr><td>x<tr><td>y</table>"


class TestRepairDocument:
    """``repair_document`` must equal the two-pass repair exactly:
    same tree as ``parse_html(repair_html(html)[0])``, same report."""

    @pytest.mark.parametrize("html",
                             PAGES + _rendered_pages() + TRICKY + [HAZARD])
    def test_matches_two_pass_repair(self, html):
        tree, report = repair_document(html)
        repaired, oracle_report = repair_html(html)
        assert tree == parse_html(repaired)
        assert report.issues == oracle_report.issues
        assert report.transcodable == oracle_report.transcodable

    def test_hazard_page_restructures_like_reparse(self):
        """The first parse nests the second row under the first; the
        re-parse (and therefore repair_document) hoists it to a
        sibling."""
        tree, _report = repair_document(HAZARD)
        table = tree.find_first("table")
        assert [child.tag for child in table.children] == ["tr", "tr"]

    def test_untranscodable_long_junk(self):
        tree, report = repair_document("x" * 500)
        assert not report.transcodable
        assert "untranscodable" in report.issues
        assert tree == parse_html("<html><body></body></html>")
