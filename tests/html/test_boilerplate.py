"""Tests for the Boilerpipe-style boilerplate detector."""

import statistics

from repro.corpora.goldstandard import build_boilerplate_gold
from repro.html.boilerplate import (
    BoilerplateDetector, TextBlock, evaluate_extraction, extract_blocks,
    extract_content,
)


def _page(body, nav="", ads=""):
    return (f"<html><body><div class='nav'>{nav}</div>"
            f"<div id='content'><p>{body}</p></div>"
            f"<div class='footer'>{ads}</div></body></html>")


LONG_BODY = ("This is a long article paragraph with many words that should "
             "easily clear the content thresholds of the shallow classifier "
             "because it contains far more than forty words in total and no "
             "links at all whatsoever anywhere in its running text, which "
             "keeps the link density at exactly zero while the word count "
             "comfortably exceeds every decision-tree threshold in use.")
NAV = ('<a href="/">Home</a> <a href="/a">About</a> <a href="/c">Contact</a>')


class TestBlocks:
    def test_segmentation_separates_nav_and_content(self):
        blocks = extract_blocks(_page(LONG_BODY, nav=NAV))
        assert len(blocks) >= 2

    def test_link_density_computed(self):
        blocks = extract_blocks(_page(LONG_BODY, nav=NAV))
        nav_block = max(blocks, key=lambda b: b.link_density)
        content_block = max(blocks, key=lambda b: b.n_words)
        assert nav_block.link_density > 0.9
        assert content_block.link_density == 0.0

    def test_text_density(self):
        block = TextBlock(text="w " * 200, n_words=200, n_anchor_words=0,
                          tag_path="div>p")
        assert block.text_density > 10

    def test_empty_page(self):
        assert extract_blocks("<html><body></body></html>") == []

    def test_heading_flag(self):
        blocks = extract_blocks("<h1>A headline here</h1><p>text</p>")
        assert any(b.is_heading for b in blocks)

    def test_list_flag(self):
        blocks = extract_blocks("<ul><li>short item</li></ul>")
        assert all(b.in_list for b in blocks)


class TestClassification:
    def test_content_recovered(self):
        extracted = extract_content(_page(LONG_BODY, nav=NAV,
                                          ads="Buy now! Click here."))
        assert "long article paragraph" in extracted

    def test_nav_dropped(self):
        extracted = extract_content(_page(LONG_BODY, nav=NAV))
        assert "Home" not in extracted

    def test_link_dense_block_is_boilerplate(self):
        detector = BoilerplateDetector()
        blocks = detector.classify(extract_blocks(_page(LONG_BODY, nav=NAV)))
        nav_block = max(blocks, key=lambda b: b.link_density)
        assert nav_block.is_content is False

    def test_short_list_items_lost(self):
        """The documented recall failure: lists fall below thresholds."""
        html = ("<html><body><div id='c'>"
                + "".join(f"<ul><li>item {i} value</li></ul>"
                          for i in range(6))
                + "</div></body></html>")
        extracted = extract_content(html)
        assert "item 3" not in extracted


class TestQualityOnGold:
    def test_precision_recall_band(self):
        """On the synthetic gold set, quality should sit near the
        paper's measurements (P=90 %/R=82 % gold, 98 %/72 % sample)."""
        pairs = build_boilerplate_gold(40, seed=5)
        detector = BoilerplateDetector()
        precisions, recalls = [], []
        for html, gold in pairs:
            extracted = detector.extract(html)
            precision, recall = evaluate_extraction(extracted, gold)
            precisions.append(precision)
            recalls.append(recall)
        assert statistics.mean(precisions) > 0.75
        assert statistics.mean(recalls) > 0.6

    def test_evaluate_extraction_bounds(self):
        precision, recall = evaluate_extraction("a b c", "a b d e")
        assert precision == 2 / 3
        assert recall == 0.5

    def test_evaluate_empty(self):
        assert evaluate_extraction("", "gold text") == (0.0, 0.0)
