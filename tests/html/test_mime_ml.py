"""Tests for the learned MIME detector (Section 5 gap)."""

import pytest

from repro.html.mime_ml import (
    MlMimeDetector, build_default_detector, extract_features,
    robust_is_textual,
)
from repro.util import seeded_rng


@pytest.fixture(scope="module")
def detector():
    return build_default_detector(n_examples=30)


def _binary(seed=1, length=1500):
    rng = seeded_rng("binblob", seed)
    return "".join(chr(rng.randint(0, 255)) for _ in range(length))


ENGLISH = ("The patients received the treatment and the response "
           "improved significantly across the cohort. ") * 20


class TestFeatures:
    def test_text_features_high_printability(self):
        features = extract_features(ENGLISH)
        assert features.printable_bucket >= 9
        assert features.high_byte_bucket == 0

    def test_binary_features_high_entropy(self):
        features = extract_features(_binary())
        assert features.entropy_bucket >= 8
        assert features.printable_bucket < 9

    def test_html_tag_density(self):
        html = "<div><p>x</p><p>y</p></div>" * 30
        assert extract_features(html).tag_density_bucket > \
            extract_features(ENGLISH).tag_density_bucket

    def test_empty_payload(self):
        features = extract_features("")
        assert features.printable_bucket == 0


class TestDetector:
    def test_untrained_raises(self):
        with pytest.raises(RuntimeError):
            MlMimeDetector().probability_textual("x")

    def test_classifies_text_and_binary(self, detector):
        assert detector.is_textual(ENGLISH)
        assert not detector.is_textual(_binary())

    def test_probability_bounds(self, detector):
        for payload in (ENGLISH, _binary(), "<html><body>x</body></html>"):
            assert 0.0 <= detector.probability_textual(payload) <= 1.0

    def test_accuracy_over_samples(self, detector):
        correct = total = 0
        for seed in range(20):
            total += 2
            correct += not detector.is_textual(_binary(seed))
            correct += detector.is_textual(ENGLISH[seed:] + ENGLISH)
        assert correct / total > 0.9


class TestRobustDetection:
    def test_catches_stripped_prefix_binary(self, detector):
        """The pitfall case: binary payload whose magic bytes are gone
        and whose server header lies — prefix sniffing calls it text,
        content statistics do not."""
        payload = "<html>" + _binary(7, 2500)
        from repro.html.mime import is_textual, sniff_mime

        assert is_textual(sniff_mime(payload, "http://h/x.html",
                                     "text/html"))  # fooled
        assert not robust_is_textual(payload, "http://h/x.html",
                                     "text/html", detector)

    def test_agrees_on_clean_cases(self, detector):
        assert robust_is_textual("<html><body>" + ENGLISH, "", "",
                                 detector)
        assert not robust_is_textual("%PDF-1.4" + _binary(3), "", "",
                                     detector)

    def test_without_detector_falls_back_to_prefix(self):
        assert robust_is_textual("<html><body>hello</body></html>")
