"""Tests for the tolerant HTML parser."""

from hypothesis import given, settings, strategies as st

from repro.html.dom import HtmlNode, iter_text, parse_html, serialize


class TestBasicParsing:
    def test_simple_tree(self):
        tree = parse_html("<html><body><p>hello</p></body></html>")
        paragraphs = tree.find_all("p")
        assert len(paragraphs) == 1
        assert paragraphs[0].get_text() == "hello"

    def test_attributes(self):
        tree = parse_html('<a href="http://x" class="big">link</a>')
        anchor = tree.find_all("a")[0]
        assert anchor.attrs["href"] == "http://x"
        assert anchor.class_names() == ["big"]

    def test_unquoted_attributes(self):
        tree = parse_html("<a href=http://x/y>link</a>")
        assert tree.find_all("a")[0].attrs["href"] == "http://x/y"

    def test_single_quoted_attributes(self):
        tree = parse_html("<a href='http://x'>l</a>")
        assert tree.find_all("a")[0].attrs["href"] == "http://x"

    def test_duplicate_attribute_first_wins(self):
        tree = parse_html('<div class="a" class="b">x</div>')
        assert tree.find_all("div")[0].attrs["class"] == "a"

    def test_void_elements_have_no_children(self):
        tree = parse_html("<p>a<br>b</p>")
        paragraph = tree.find_all("p")[0]
        assert paragraph.get_text() == "a b"
        assert not tree.find_all("br")[0].children

    def test_comments_stripped(self):
        tree = parse_html("<p>a<!-- hidden -->b</p>")
        assert "hidden" not in tree.get_text()

    def test_doctype_stripped(self):
        tree = parse_html("<!DOCTYPE html><html><p>x</p></html>")
        assert tree.find_all("p")

    def test_entities_unescaped(self):
        tree = parse_html("<p>a &amp; b &lt;c&gt;</p>")
        assert tree.get_text() == "a & b <c>"


class TestTolerance:
    def test_unclosed_tags_auto_closed(self):
        tree = parse_html("<div><p>one<p>two</div>")
        assert [p.get_text() for p in tree.find_all("p")] == ["one", "two"]

    def test_stray_closer_ignored(self):
        tree = parse_html("<p>a</div></p>")
        assert tree.find_all("p")[0].get_text() == "a"

    def test_misnested_closers(self):
        tree = parse_html("<div><ul><li>x</div></ul>")
        assert tree.find_all("li")[0].get_text() == "x"

    def test_truncated_document(self):
        tree = parse_html("<html><body><div><p>cut off in the midd")
        assert "cut off" in tree.get_text()

    def test_stray_less_than_as_text(self):
        tree = parse_html("<p>1 < 2</p>")
        assert "<" in tree.get_text()

    def test_never_raises_on_garbage(self):
        parse_html("><<<div li=<p no ></")

    def test_script_content_opaque(self):
        tree = parse_html('<script>if (a<b) { x("<p>"); }</script><p>t</p>')
        assert len(tree.find_all("p")) == 1
        assert tree.find_all("p")[0].get_text() == "t"

    def test_style_content_opaque(self):
        tree = parse_html("<style>p > a { color: red }</style><p>x</p>")
        assert tree.find_all("p")[0].get_text() == "x"

    def test_li_implicit_close(self):
        tree = parse_html("<ul><li>a<li>b<li>c</ul>")
        texts = [li.get_text() for li in tree.find_all("li")]
        assert texts == ["a", "b", "c"]


class TestSerialize:
    def test_round_trip_well_formed(self):
        html = '<div class="x"><p>hello <b>world</b></p></div>'
        tree = parse_html(html)
        assert serialize(tree) == html

    def test_serialize_escapes_text(self):
        node = HtmlNode("#text", text="a < b & c")
        assert serialize(node) == "a &lt; b &amp; c"

    def test_serialize_repairs_unclosed(self):
        repaired = serialize(parse_html("<div><p>a"))
        assert repaired == "<div><p>a</p></div>"

    def test_reparse_stable(self):
        dirty = "<div><ul><li>a<li>b</div></ul><p>done"
        once = serialize(parse_html(dirty))
        twice = serialize(parse_html(once))
        assert once == twice


class TestIterText:
    def test_document_order(self):
        tree = parse_html("<div><p>one</p><p>two</p>three</div>")
        assert list(iter_text(tree)) == ["one", "two", "three"]


@given(st.text(alphabet="<>/abp \"'=&", max_size=120))
@settings(max_examples=150, deadline=None)
def test_property_parser_never_raises(fragment):
    tree = parse_html(fragment)
    serialize(tree)  # round trip must also never raise


@given(st.lists(st.sampled_from(["<div>", "</div>", "<p>", "</p>", "text ",
                                 "<a href=x>", "</a>", "<br>", "&amp;"]),
                max_size=30))
@settings(max_examples=100, deadline=None)
def test_property_repair_idempotent(parts):
    html = "".join(parts)
    once = serialize(parse_html(html))
    assert serialize(parse_html(once)) == once
