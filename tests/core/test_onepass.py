"""One-pass annotation engine: parity with the reference path.

``pipeline.analyze`` is the one-step-at-a-time reference;
``pipeline.analyze_batch`` runs the fused engine.  Beyond the mention
equivalence covered in ``test_core``, these tests pin the two paths'
*cache* behavior (identical stored entries under identical keys) and
the serve layer's digest parity against the reference chain.
"""

import pytest

from repro.annotations import Document
from repro.nlp.anno_cache import AnnotationCache
from repro.serve.session import ExtractionSession


@pytest.fixture(scope="module")
def texts(relevant_generator):
    return [relevant_generator.document(i).text for i in range(4)]


def _cache_contents(cache):
    return {key: dict(entries)
            for key, entries in cache._shards.items() if entries}


class TestCacheParity:
    def test_fused_path_stores_same_entries_as_reference(
            self, pipeline, texts, tmp_path):
        reference_cache = AnnotationCache(tmp_path / "reference")
        session = ExtractionSession(pipeline,
                                    annotation_cache=reference_cache)
        try:
            for index, text in enumerate(texts):
                pipeline.analyze(Document(f"r{index}", text),
                                 with_pos=True)
        finally:
            session.close()

        fused_cache = AnnotationCache(tmp_path / "fused")
        session = ExtractionSession(pipeline,
                                    annotation_cache=fused_cache)
        try:
            pipeline.analyze_batch(
                [Document(f"f{index}", text)
                 for index, text in enumerate(texts)], with_pos=True)
            assert _cache_contents(fused_cache) == \
                _cache_contents(reference_cache)
            assert fused_cache.n_entries > 0
            # A second batch over the same texts is pure cache hits.
            misses_before = fused_cache.misses
            pipeline.analyze_batch(
                [Document(f"g{index}", text)
                 for index, text in enumerate(texts)], with_pos=True)
            assert fused_cache.misses == misses_before
            assert fused_cache.hits > 0
        finally:
            session.close()

    def test_warm_cache_results_identical_to_cold(self, pipeline,
                                                  texts, tmp_path):
        cold = [Document(f"c{i}", t) for i, t in enumerate(texts)]
        warm = [Document(f"w{i}", t) for i, t in enumerate(texts)]
        session = ExtractionSession(
            pipeline, annotation_cache=AnnotationCache(tmp_path / "a"))
        try:
            pipeline.analyze_batch(cold, with_pos=True)
            pipeline.analyze_batch(warm, with_pos=True)
        finally:
            session.close()
        for cold_doc, warm_doc in zip(cold, warm):
            assert warm_doc.entities == cold_doc.entities
            for cold_sent, warm_sent in zip(cold_doc.sentences,
                                            warm_doc.sentences):
                assert [t.pos for t in warm_sent.tokens] == \
                    [t.pos for t in cold_sent.tokens]


class TestServeDigestParity:
    def test_extract_batch_matches_reference_chain(self, pipeline,
                                                   texts):
        session = ExtractionSession(pipeline)
        outputs = session.run_batch([("extract", text)
                                     for text in texts])
        for text, output in zip(texts, outputs):
            reference = pipeline.analyze(Document("serve", text))
            expected = [{"text": m.text, "start": m.start,
                         "end": m.end, "type": m.entity_type,
                         "method": m.method}
                        for m in reference.entities]
            assert output["entities"] == expected
            assert output["sentences"] == len(reference.sentences)
        assert any(output["entities"] for output in outputs)

    def test_batched_equals_singletons(self, pipeline, texts):
        session = ExtractionSession(pipeline)
        batched = session.extract_batch(texts)
        singles = [session.extract_batch([text])[0] for text in texts]
        assert batched == singles


class TestEngineConstruction:
    def test_one_pass_annotator_memoized(self, pipeline):
        first = pipeline.one_pass_annotator()
        again = pipeline.one_pass_annotator()
        assert first is again
        with_pos = pipeline.one_pass_annotator(with_pos=True)
        assert with_pos is not first
        assert with_pos.pos_tagger is pipeline.pos_tagger
        assert first.pos_tagger is None

    def test_engines_share_one_merged_automaton(self, pipeline):
        plain = pipeline.one_pass_annotator()
        with_pos = pipeline.one_pass_annotator(with_pos=True)
        assert plain.merged is with_pos.merged

    def test_dictionary_only_engine(self, pipeline, texts):
        engine = pipeline.one_pass_annotator(methods=("dictionary",))
        document = Document("d", texts[0])
        engine.annotate(document)
        reference = pipeline.analyze(Document("d", texts[0]),
                                     methods=("dictionary",))
        assert document.entities == reference.entities

    def test_ml_only_engine_has_no_merged_dictionary(self, pipeline):
        engine = pipeline.one_pass_annotator(methods=("ml",))
        assert engine.merged is None
