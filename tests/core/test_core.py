"""Tests for the core pipeline, flows, and content analysis."""

import pytest

from repro.core.analysis import (
    analyze_corpus, compare_corpora, entity_overlap, jsd_between,
    jsd_table, overlap_fraction,
)
from repro.core.flows import (
    FIG2_METEOR_SCRIPT, build_entity_flow, build_fig2_flow,
    build_linguistic_flow,
)
from repro.dataflow.executor import LocalExecutor
from repro.dataflow.meteor import parse_meteor
from repro.dataflow.optimizer import SofaOptimizer
from repro.web.htmlgen import PageRenderer


@pytest.fixture(scope="module")
def web_documents(context):
    renderer = PageRenderer(seed=31)
    documents = context.corpus_documents("relevant")[:4]
    for index, document in enumerate(documents):
        url = f"http://host{index}.example.org/a.html"
        document.raw = renderer.render(url, "Title", document.text, [])
        document.meta["url"] = url
        document.meta["content_type"] = "text/html"
    return documents


@pytest.fixture(scope="module")
def stats(context):
    return context.corpus_stats()


class TestPipeline:
    def test_components_trained(self, pipeline):
        assert pipeline.classifier.trained
        assert pipeline.pos_tagger.tags
        assert set(pipeline.dictionary_taggers) == {"gene", "drug",
                                                    "disease"}
        assert set(pipeline.ml_taggers) == {"gene", "drug", "disease"}

    def test_analyze_fills_all_layers(self, pipeline, context):
        document = context.corpus_documents("medline")[0]
        pipeline.analyze(document, with_pos=True)
        assert document.sentences
        assert document.sentences[0].tokens
        assert document.sentences[0].tokens[0].pos
        assert document.linguistics is not None
        assert any(m.method == "dictionary" for m in document.entities)

    def test_analyze_method_selection(self, pipeline, context):
        document = context.corpus_documents("medline")[1]
        pipeline.analyze(document, methods=("dictionary",))
        assert all(m.method == "dictionary" for m in document.entities)

    def test_analyze_batch_matches_analyze(self, pipeline, context):
        """Cross-document batch analysis is equivalent per document:
        same entities in the same order, same POS tags, same meta."""
        originals = context.corpus_documents("relevant")[:5]
        singles = [pipeline.analyze(doc.copy_shallow(), with_pos=True)
                   for doc in originals]
        batched = pipeline.analyze_batch(
            [doc.copy_shallow() for doc in originals], with_pos=True)
        for single, batch in zip(singles, batched):
            assert batch.entities == single.entities
            assert batch.meta == single.meta
            for s_sent, b_sent in zip(single.sentences,
                                      batch.sentences):
                assert [t.pos for t in b_sent.tokens] == \
                    [t.pos for t in s_sent.tokens]

    def test_analyze_batch_counts_pos_crashes(self, pipeline):
        from repro.annotations import Document

        limit = pipeline.pos_tagger.crash_token_limit
        text = " ".join(["word"] * (limit + 1)) + "."
        batched = pipeline.analyze_batch([Document("long", text)],
                                         with_pos=True)[0]
        single = pipeline.analyze(Document("long", text),
                                  with_pos=True)
        assert batched.meta.get("pos_crashes") == \
            single.meta.get("pos_crashes")
        assert batched.meta.get("pos_crashes", 0) >= 1


class TestFlows:
    def test_fig2_operator_count(self, pipeline):
        # The paper's 38 elementary operators plus the relation-records
        # sink feeding the entity store.
        assert len(build_fig2_flow(pipeline)) == 39

    def test_fig2_executes_end_to_end(self, pipeline, web_documents):
        plan = build_fig2_flow(pipeline)
        outputs, _report = LocalExecutor().execute(
            plan, [d.copy_shallow() for d in web_documents])
        assert set(outputs) == {"sentences", "linguistics", "entities",
                                "entity_frequencies", "edges",
                                "relations"}
        assert outputs["sentences"]
        assert outputs["entities"]

    def test_fig2_optimizer_runs_and_preserves_sinks(self, pipeline,
                                                     web_documents):
        plan = build_fig2_flow(pipeline)
        baseline, _ = LocalExecutor().execute(
            plan, [d.copy_shallow() for d in web_documents])
        SofaOptimizer().optimize(plan)
        optimized, _ = LocalExecutor().execute(
            plan, [d.copy_shallow() for d in web_documents])
        assert len(optimized["entities"]) == len(baseline["entities"])

    def test_linguistic_flow(self, pipeline, web_documents):
        plan = build_linguistic_flow(pipeline)
        outputs, _ = LocalExecutor().execute(
            plan, [d.copy_shallow() for d in web_documents])
        categories = {r["category"] for r in outputs["linguistics"]}
        assert categories <= {"negation", "pronoun", "parenthesis"}
        assert categories

    def test_entity_flow_methods(self, pipeline, web_documents):
        plan = build_entity_flow(pipeline, methods=("dictionary",))
        outputs, _ = LocalExecutor().execute(
            plan, [d.copy_shallow() for d in web_documents])
        assert all(r["method"] == "dictionary"
                   for r in outputs["entities"])

    def test_fig2_meteor_script_parses_and_runs(self, pipeline,
                                                web_documents):
        plan = parse_meteor(FIG2_METEOR_SCRIPT, context={
            "pos_tagger": pipeline.pos_tagger,
            "gene_dict": pipeline.dictionary_taggers["gene"],
            "gene_ml": pipeline.ml_taggers["gene"],
        })
        outputs, _ = LocalExecutor().execute(
            plan, [d.copy_shallow() for d in web_documents])
        assert set(outputs) == {"linguistics", "entities"}


class TestContentAnalysis:
    def test_four_corpora_analyzed(self, stats):
        assert set(stats) == {"relevant", "irrelevant", "medline", "pmc"}
        for corpus in stats.values():
            assert corpus.n_docs > 0
            assert corpus.n_sentences > 0

    def test_doc_length_ordering(self, stats):
        assert stats["relevant"].mean_doc_chars > \
            stats["irrelevant"].mean_doc_chars
        assert stats["irrelevant"].mean_doc_chars > \
            stats["medline"].mean_doc_chars

    def test_sentence_length_ordering(self, stats):
        assert stats["pmc"].mean_sentence_tokens > \
            stats["medline"].mean_sentence_tokens

    def test_ml_finds_more_distinct_names_than_dict(self, stats):
        """Table 4's headline contrast (aggregate at unit-test scale;
        the per-type claim is asserted at benchmark scale)."""
        relevant = stats["relevant"]
        ml_total = sum(relevant.distinct_names(et, "ml")
                       for et in ("disease", "drug", "gene"))
        dict_total = sum(relevant.distinct_names(et, "dictionary")
                         for et in ("disease", "drug", "gene"))
        assert ml_total >= 0.9 * dict_total
        assert relevant.distinct_names("gene", "ml") >= \
            relevant.distinct_names("gene", "dictionary")

    def test_relevant_densities_dwarf_irrelevant(self, stats):
        """Fig. 7 basis: dictionary incidence — relevant >> irrelevant.
        (ML incidence on irrelevant text is inflated by the TLA
        false-positive pathology, exactly as in the paper.)"""
        for entity_type in ("disease", "drug", "gene"):
            assert stats["relevant"].per_1000_sentences(
                entity_type, "dictionary") > \
                3 * stats["irrelevant"].per_1000_sentences(
                    entity_type, "dictionary")

    def test_mww_significance(self, stats):
        p_values = compare_corpora(stats["relevant"], stats["medline"])
        assert p_values["doc_length"] < 0.01

    def test_jsd_ordering(self, stats):
        """Relevant is no farther from Medline than from irrelevant
        (the Section 4.3.2 ordering; exact magnitudes need the larger
        benchmark corpora)."""
        rel, irrel = stats["relevant"], stats["irrelevant"]
        medl = stats["medline"]
        assert jsd_between(rel, irrel, "drug") >= \
            jsd_between(rel, medl, "drug") - 0.15
        table = jsd_table(list(stats.values()))
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in table.values())

    def test_entity_overlap_regions_sum_to_100(self, stats):
        regions = entity_overlap(list(stats.values()), "drug")
        assert sum(regions.values()) == pytest.approx(100.0)

    def test_overlap_fraction_bounds(self, stats):
        fraction = overlap_fraction(stats["relevant"], stats["irrelevant"],
                                    "gene")
        assert 0.0 <= fraction <= 1.0

    def test_web_only_names_exist(self, stats):
        """The paper's punchline: the web holds entity names absent
        from the scientific literature."""
        relevant = set(stats["relevant"].name_frequencies[("drug", "ml")])
        literature = (set(stats["medline"].name_frequencies[("drug", "ml")])
                      | set(stats["pmc"].name_frequencies[("drug", "ml")]))
        assert relevant - literature

    def test_analyze_corpus_accumulates(self, pipeline, context):
        documents = context.corpus_documents("medline")[:3]
        corpus = analyze_corpus("mini", documents, pipeline)
        assert corpus.n_docs == 3
        assert len(corpus.doc_lengths) == 3


class TestExperimentContext:
    def test_default_context_memoized(self):
        from repro.core.experiment import default_context

        a = default_context(corpus_docs=8, n_training_docs=40,
                            crf_iterations=40, n_hosts=40,
                            crawl_pages=300)
        b = default_context(corpus_docs=8, n_training_docs=40,
                            crf_iterations=40, n_hosts=40,
                            crawl_pages=300)
        assert a is b

    def test_different_configs_different_contexts(self):
        from repro.core.experiment import default_context

        a = default_context(corpus_docs=8, n_training_docs=40,
                            crf_iterations=40, n_hosts=40,
                            crawl_pages=300)
        b = default_context(corpus_docs=9, n_training_docs=40,
                            crf_iterations=40, n_hosts=40,
                            crawl_pages=300)
        assert a is not b

    def test_corpus_documents_returns_fresh_copies(self, context):
        first = context.corpus_documents("medline")
        first[0].entities.append(None)
        second = context.corpus_documents("medline")
        assert second[0].entities == []

    def test_crawl_memoized(self, context):
        assert context.crawl() is context.crawl()
