"""Tests for persistence (repro.io) and the command-line interface."""

import json

import pytest

from repro.io import (
    FactDatabase, document_from_dict, document_to_dict, read_documents,
    write_documents,
)


@pytest.fixture()
def annotated_document(context):
    document = context.corpus_documents("medline")[0]
    context.pipeline.analyze(document)
    return document


class TestDocumentRoundTrip:
    def test_round_trip_preserves_everything(self, annotated_document):
        payload = document_to_dict(annotated_document)
        restored = document_from_dict(json.loads(json.dumps(payload)))
        assert restored.doc_id == annotated_document.doc_id
        assert restored.text == annotated_document.text
        assert len(restored.sentences) == len(annotated_document.sentences)
        assert restored.entities == annotated_document.entities
        assert restored.linguistics == annotated_document.linguistics
        assert (restored.sentences[0].tokens
                == annotated_document.sentences[0].tokens)

    def test_raw_optional(self, annotated_document):
        annotated_document.raw = "<html>x</html>"
        without = document_to_dict(annotated_document)
        with_raw = document_to_dict(annotated_document, include_raw=True)
        assert "raw" not in without
        assert with_raw["raw"] == "<html>x</html>"

    def test_jsonl_file_round_trip(self, tmp_path, context):
        documents = context.corpus_documents("medline")[:3]
        for document in documents:
            context.pipeline.analyze(document)
        path = tmp_path / "docs.jsonl"
        count = write_documents(path, documents)
        assert count == 3
        restored = list(read_documents(path))
        assert [d.doc_id for d in restored] == \
            [d.doc_id for d in documents]
        assert restored[1].entities == documents[1].entities


class TestFactDatabase:
    def test_accumulates_and_exports(self, tmp_path, annotated_document):
        database = FactDatabase()
        database.add_document(annotated_document)
        database.add_relations([{"relation_type": "drug-disease",
                                 "subject": "x", "object": "y"}])
        paths = database.export(tmp_path / "facts")
        assert paths["entities"].exists()
        assert paths["relations"].exists()
        assert paths["name_frequencies"].exists()
        lines = paths["entities"].read_text().strip().splitlines()
        assert len(lines) == len(annotated_document.entities)
        header = paths["name_frequencies"].read_text().splitlines()[0]
        assert header == "entity_type,method,name,frequency"

    def test_distinct_name_count(self, annotated_document):
        database = FactDatabase()
        database.add_document(annotated_document)
        assert database.n_distinct_names > 0
        rows = database.name_frequency_rows()
        assert all(row[3] >= 1 for row in rows)
        # Sorted by descending frequency.
        frequencies = [row[3] for row in rows]
        assert frequencies == sorted(frequencies, reverse=True)


class TestCli:
    def test_parser_subcommands(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["crawl", "--pages", "10"])
        assert args.command == "crawl" and args.pages == 10
        args = parser.parse_args(["--seed", "7", "seeds", "--scale", "40"])
        assert args.seed == 7 and args.scale == 40

    def test_requires_subcommand(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_seeds_command_runs(self, capsys):
        from repro.cli import main

        assert main(["--seed", "19", "seeds", "--scale", "40"]) == 0
        output = capsys.readouterr().out
        assert "seed URLs" in output
        assert "gene" in output

    def test_scalability_command_runs(self, capsys):
        from repro.cli import main

        assert main(["scalability"]) == 0
        output = capsys.readouterr().out
        assert "DoP" in output
        assert "infeasible" in output  # entity flow at DoP 1

    def test_facts_command_exports(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        out_dir = tmp_path / "facts"
        assert main(["--seed", "19", "facts", "--out", str(out_dir),
                     "--pages", "40"]) == 0
        assert (out_dir / "entities.jsonl").exists()
        output = capsys.readouterr().out
        assert "entity mentions" in output


class TestCliCrawlAnalyze:
    def test_crawl_and_analyze_commands(self, capsys):
        """Both commands share one memoized context (same seed/sizes),
        so the pipeline is trained once."""
        from repro.cli import main

        assert main(["--seed", "19", "crawl", "--pages", "60",
                     "--hosts", "40"]) == 0
        crawl_output = capsys.readouterr().out
        assert "harvest" in crawl_output
        assert main(["--seed", "19", "analyze", "--docs", "4"]) == 0
        analyze_output = capsys.readouterr().out
        assert "medline" in analyze_output
