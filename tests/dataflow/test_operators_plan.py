"""Tests for the operator model and logical plans."""

import pytest

from repro.dataflow.operators import (
    FilterOperator, FlatMapOperator, MapOperator, Operator, UdfOperator,
)
from repro.dataflow.plan import LogicalPlan


class TestOperatorModel:
    def test_map(self):
        operator = MapOperator("double", lambda x: x * 2)
        assert list(operator.process([1, 2, 3])) == [2, 4, 6]
        assert operator.records_in == 3
        assert operator.records_out == 3

    def test_filter(self):
        operator = FilterOperator("evens", lambda x: x % 2 == 0)
        assert list(operator.process(range(6))) == [0, 2, 4]
        assert operator.records_out == 3

    def test_flatmap(self):
        operator = FlatMapOperator("expand", lambda x: [x, x])
        assert list(operator.process([1, 2])) == [1, 1, 2, 2]

    def test_udf_stream_level(self):
        operator = UdfOperator("reverse", lambda records:
                               reversed(list(records)))
        assert list(operator.process([1, 2, 3])) == [3, 2, 1]
        assert not operator.parallelizable

    def test_reset_counters(self):
        operator = MapOperator("id", lambda x: x)
        list(operator.process([1]))
        operator.reset_counters()
        assert operator.records_in == 0

    def test_commutes_without_conflicts(self):
        a = Operator("a", reads={"x"}, writes={"y"})
        b = Operator("b", reads={"z"}, writes={"w"})
        assert a.commutes_with(b) and b.commutes_with(a)

    def test_write_read_conflict_blocks(self):
        a = Operator("a", writes={"text"})
        b = Operator("b", reads={"text"})
        assert not a.commutes_with(b)

    def test_write_write_conflict_blocks(self):
        a = Operator("a", writes={"text"})
        b = Operator("b", writes={"text"})
        assert not a.commutes_with(b)

    def test_non_reorderable_blocks(self):
        a = Operator("a", reorderable=False)
        b = Operator("b")
        assert not a.commutes_with(b)

    def test_rank_prefers_cheap_selective(self):
        cheap_filter = Operator("f", selectivity=0.1, cost_per_record=1)
        costly_map = Operator("m", selectivity=1.0, cost_per_record=50)
        assert cheap_filter.rank() < costly_map.rank()


class TestLogicalPlan:
    def _chain_plan(self):
        plan = LogicalPlan()
        tail = plan.chain([Operator("a"), Operator("b"), Operator("c")])
        plan.mark_sink("out", tail)
        return plan

    def test_chain_and_sinks(self):
        plan = self._chain_plan()
        assert len(plan) == 3
        assert "out" in plan.sinks

    def test_topological_order(self):
        plan = self._chain_plan()
        assert [n.name for n in plan.topological_order()] == ["a", "b", "c"]

    def test_branching(self):
        plan = LogicalPlan()
        root = plan.add(Operator("root"))
        left = plan.add(Operator("left"), root)
        right = plan.add(Operator("right"), root)
        order = [n.name for n in plan.topological_order()]
        assert order.index("root") < order.index("left")
        assert order.index("root") < order.index("right")

    def test_cycle_detection(self):
        plan = LogicalPlan()
        a = plan.add(Operator("a"))
        b = plan.add(Operator("b"), a)
        a.inputs.append(b)
        with pytest.raises(ValueError, match="cycle"):
            plan.topological_order()

    def test_linear_segments_on_chain(self):
        plan = self._chain_plan()
        segments = plan.linear_segments()
        assert len(segments) == 1
        assert [n.name for n in segments[0]] == ["a", "b", "c"]

    def test_linear_segments_split_at_branch(self):
        plan = LogicalPlan()
        root = plan.chain([Operator("a"), Operator("b")])
        plan.add(Operator("left"), root)
        plan.add(Operator("right"), root)
        segments = {tuple(n.name for n in s) for s in plan.linear_segments()}
        assert ("a", "b") in segments

    def test_describe_lists_all_nodes(self):
        description = self._chain_plan().describe()
        assert "a" in description and "<source>" in description

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            LogicalPlan().chain([])
