"""Tests for the SOFA-style optimizer and the local executor."""

import pytest

from repro.dataflow.executor import LocalExecutor
from repro.dataflow.operators import FilterOperator, MapOperator, Operator
from repro.dataflow.optimizer import SofaOptimizer, estimate_chain_cost
from repro.dataflow.plan import LogicalPlan


def _expensive_map():
    return MapOperator("expensive", lambda x: x, cost_per_record=100.0,
                       reads=frozenset({"a"}), writes=frozenset({"b"}))


def _cheap_filter():
    return FilterOperator("cheap_filter", lambda x: True, selectivity=0.1,
                          cost_per_record=1.0, reads=frozenset({"c"}))


class TestOptimizer:
    def test_filter_pushed_before_expensive_map(self):
        plan = LogicalPlan()
        tail = plan.chain([_expensive_map(), _cheap_filter()])
        plan.mark_sink("out", tail)
        report = SofaOptimizer().optimize(plan)
        assert report.n_swaps == 1
        assert [n.name for n in plan.topological_order()] == \
            ["cheap_filter", "expensive"]
        assert report.estimated_speedup > 1.0

    def test_conflicting_operators_not_swapped(self):
        writer = MapOperator("writer", lambda x: x, cost_per_record=100.0,
                             writes=frozenset({"text"}))
        reader = FilterOperator("reader", lambda x: True, selectivity=0.1,
                                reads=frozenset({"text"}))
        plan = LogicalPlan()
        plan.mark_sink("out", plan.chain([writer, reader]))
        report = SofaOptimizer().optimize(plan)
        assert report.n_swaps == 0
        assert [n.name for n in plan.topological_order()] == \
            ["writer", "reader"]

    def test_optimized_plan_same_results(self):
        """Truthful read/write sets guarantee reorder-equivalence."""
        def records():
            return [{"v": i, "u": i % 3} for i in range(8)]

        plan = LogicalPlan()
        tail = plan.chain([
            MapOperator("inc_v",
                        lambda r: {**r, "v": r["v"] + 1},
                        reads=frozenset({"v"}), writes=frozenset({"v"}),
                        cost_per_record=10),
            FilterOperator("u_zero", lambda r: r["u"] == 0,
                           selectivity=0.3, reads=frozenset({"u"})),
        ])
        plan.mark_sink("out", tail)
        before, _ = LocalExecutor().execute(plan, records())
        report = SofaOptimizer().optimize(plan)
        assert report.n_swaps == 1
        after, _ = LocalExecutor().execute(plan, records())
        key = lambda r: (r["v"], r["u"])  # noqa: E731
        assert sorted(before["out"], key=key) == sorted(after["out"],
                                                        key=key)

    def test_estimate_chain_cost(self):
        cost = estimate_chain_cost(
            [Operator("f", selectivity=0.5, cost_per_record=1.0),
             Operator("m", selectivity=1.0, cost_per_record=2.0)],
            input_records=100)
        assert cost == pytest.approx(100 * 1 + 50 * 2)

    def test_multiple_swaps_converge(self):
        plan = LogicalPlan()
        operators = [_expensive_map(), _expensive_map(), _cheap_filter()]
        operators[0].name, operators[1].name = "exp1", "exp2"
        plan.mark_sink("out", plan.chain(operators))
        SofaOptimizer().optimize(plan)
        assert [n.name for n in plan.topological_order()][0] == \
            "cheap_filter"


class TestExecutor:
    def _plan(self):
        plan = LogicalPlan()
        tail = plan.chain([
            MapOperator("inc", lambda x: x + 1),
            FilterOperator("even", lambda x: x % 2 == 0, selectivity=0.5),
        ])
        plan.mark_sink("out", tail)
        return plan

    def test_executes_chain(self):
        outputs, report = LocalExecutor().execute(self._plan(), range(10))
        assert outputs["out"] == [2, 4, 6, 8, 10]
        assert report.total_seconds >= 0

    def test_report_per_operator(self):
        _outputs, report = LocalExecutor().execute(self._plan(), range(10))
        names = [s.name for s in report.operator_stats]
        assert names == ["inc", "even"]
        assert report.operator_stats[0].records_in == 10
        assert report.operator_stats[1].records_out == 5

    def test_threaded_execution_same_result(self):
        sequential, _ = LocalExecutor().execute(self._plan(), range(50))
        threaded, report = LocalExecutor(dop=4, use_threads=True).execute(
            self._plan(), range(50))
        assert sorted(sequential["out"]) == sorted(threaded["out"])
        assert report.dop == 4

    def test_branching_plan(self):
        plan = LogicalPlan()
        root = plan.add(MapOperator("id", lambda x: x))
        plan.mark_sink("evens", plan.add(
            FilterOperator("evens", lambda x: x % 2 == 0), root))
        plan.mark_sink("odds", plan.add(
            FilterOperator("odds", lambda x: x % 2 == 1), root))
        outputs, _ = LocalExecutor().execute(plan, range(6))
        assert outputs["evens"] == [0, 2, 4]
        assert outputs["odds"] == [1, 3, 5]

    def test_leaf_sinks_inferred(self):
        plan = LogicalPlan()
        plan.chain([MapOperator("only", lambda x: x)])
        outputs, _ = LocalExecutor().execute(plan, [1, 2])
        assert outputs["only"] == [1, 2]

    def test_invalid_dop(self):
        with pytest.raises(ValueError):
            LocalExecutor(dop=0)

    def test_dominant_operators(self):
        _outputs, report = LocalExecutor().execute(self._plan(), range(100))
        dominant = report.dominant_operators(1)
        assert dominant[0][0] in ("inc", "even")
