"""Tests for the simulated cluster (scalability + war story)."""

import pytest

from repro.dataflow.cluster import (
    DEFAULT_COSTS, ENTITY_OPS, LINGUISTIC_OPS, PREPROCESSING_OPS,
    ClusterSpec, NodeSpec, SimulatedCluster, complete_flow, split_flow_plan,
    with_cost_override,
)

LING = PREPROCESSING_OPS + LINGUISTIC_OPS
ENTITY = PREPROCESSING_OPS + ENTITY_OPS


@pytest.fixture(scope="module")
def cluster():
    return SimulatedCluster()


class TestBasics:
    def test_paper_cluster_spec(self):
        spec = ClusterSpec()
        assert spec.n_nodes == 28
        assert spec.node.cores == 6
        assert spec.node.ram_gb == 24.0
        assert spec.max_dop == 168

    def test_invalid_dop(self, cluster):
        assert not cluster.run_flow(LING, 1, 0).feasible
        assert not cluster.run_flow(LING, 1, 9999).feasible

    def test_deterministic(self, cluster):
        a = cluster.run_flow(LING, 20, 8, colocated=False)
        b = cluster.run_flow(LING, 20, 8, colocated=False)
        assert a.seconds == b.seconds


class TestScaleOut:
    def test_linguistic_scales_to_full_cluster(self, cluster):
        assert cluster.max_feasible_dop(LING) == 168

    def test_entity_flow_memory_capped_at_28(self, cluster):
        """Dictionary taggers (6-20 GB/worker) permit one worker per
        24 GB node: DoP <= 28."""
        assert cluster.max_feasible_dop(ENTITY) == 28
        assert not cluster.run_flow(ENTITY, 20, 56, colocated=False).feasible

    def test_entity_flow_infeasible_below_dop4(self, cluster):
        """Excessive runtimes below DoP 4 (Section 4.2)."""
        assert not cluster.run_flow(ENTITY, 20, 1, colocated=False).feasible
        assert not cluster.run_flow(ENTITY, 20, 2, colocated=False).feasible
        assert cluster.run_flow(ENTITY, 20, 4, colocated=False).feasible

    def test_scale_out_monotone_then_plateau(self, cluster):
        reports = cluster.scale_out(LING, 20, [1, 2, 4, 8, 12, 16, 28])
        seconds = [r.seconds for r in reports]
        assert seconds[0] > seconds[1] > seconds[2]
        # Improvement from 16 to 28 is marginal vs 1 to 12.
        early_gain = seconds[0] - seconds[4]
        late_gain = seconds[5] - seconds[6]
        assert early_gain > 10 * late_gain

    def test_linguistic_decrease_band(self, cluster):
        """Paper: up to 95 % runtime decrease until DoP 12."""
        reports = cluster.scale_out(LING, 20, [1, 12])
        decrease = 1 - reports[1].seconds / reports[0].seconds
        assert decrease > 0.85

    def test_entity_decrease_band(self, cluster):
        """Paper: up to 72 % decrease until DoP 16."""
        reports = cluster.scale_out(ENTITY, 20, [4, 16])
        decrease = 1 - reports[1].seconds / reports[0].seconds
        assert 0.4 < decrease < 0.9

    def test_startup_is_hard_lower_bound(self, cluster):
        report = cluster.run_flow(ENTITY, 20, 28, colocated=False)
        gene_startup = DEFAULT_COSTS["dict_gene_tagger"].startup_seconds
        assert report.seconds > gene_startup


class TestScaleUp:
    def test_linguistic_near_ideal(self, cluster):
        reports = cluster.scale_up(LING, 1.0, [1, 8, 16, 28])
        assert reports[-1].seconds < 1.4 * reports[0].seconds

    def test_entity_sublinear(self, cluster):
        reports = cluster.scale_up(ENTITY, 1.0, [4, 16, 28])
        # grows, but stays bounded (sub-linear degradation).
        assert reports[-1].seconds > reports[0].seconds
        assert reports[-1].seconds < 2.0 * reports[0].seconds


class TestWarStory:
    def test_complete_flow_colocated_fails(self, cluster):
        report = cluster.run_flow(complete_flow(), 1024, 28, colocated=True)
        assert not report.feasible
        assert "version conflict" in report.reason

    def test_memory_failure_without_version_conflict(self, cluster):
        ops = [name for name in complete_flow()
               if name != "ml_disease_tagger"]
        report = cluster.run_flow(ops, 1024, 28, colocated=True)
        assert not report.feasible
        assert "GB per worker" in report.reason

    def test_complete_flow_memory_roughly_60gb(self):
        memory = sum(DEFAULT_COSTS[name].memory_gb
                     for name in complete_flow())
        assert 45 <= memory <= 65

    def test_split_flows_run(self, cluster):
        for name, ops in split_flow_plan().items():
            dop = cluster.max_feasible_dop(ops)
            assert dop > 0, name
            report = cluster.run_flow(ops, 50, dop, colocated=False,
                                      enforce_runtime_limit=False)
            assert report.feasible, name

    def test_disease_split_avoids_version_conflict(self, cluster):
        ops = split_flow_plan()["disease"]
        report = cluster.run_flow(ops, 50, 28, colocated=True,
                                  enforce_runtime_limit=False)
        assert report.feasible or "version" not in report.reason

    def test_network_congestion_crashes_big_runs(self, cluster):
        ops = split_flow_plan()["drug"]
        dop = cluster.max_feasible_dop(ops)
        whole = cluster.run_flow(ops, 1024, dop, colocated=False,
                                 enforce_runtime_limit=False)
        assert whole.crashed
        assert "congestion" in whole.crash_reason

    def test_chunking_mitigates_crashes(self, cluster):
        ops = split_flow_plan()["drug"]
        dop = cluster.max_feasible_dop(ops)
        chunked = cluster.run_flow(ops, 1024, dop, colocated=False,
                                   enforce_runtime_limit=False, chunk_gb=50)
        assert chunked.feasible and not chunked.crashed
        whole = cluster.run_flow(ops, 1024, dop, colocated=False,
                                 enforce_runtime_limit=False)
        # Chunking pays repeated startup: slower but safe.
        assert chunked.seconds > whole.seconds

    def test_big_memory_server_hosts_gene_flow(self):
        big = SimulatedCluster(ClusterSpec().big_memory_variant())
        report = big.run_flow(split_flow_plan()["gene"], 1024, 40,
                              colocated=False,
                              enforce_runtime_limit=False, chunk_gb=50)
        assert report.feasible and not report.crashed

    def test_cost_override(self):
        table = with_cost_override(DEFAULT_COSTS,
                                   ml_gene_tagger={"memory_gb": 1.0})
        assert table["ml_gene_tagger"].memory_gb == 1.0
        assert DEFAULT_COSTS["ml_gene_tagger"].memory_gb != 1.0


class TestCostCalibration:
    def test_entity_share_near_70_percent(self):
        total = sum(DEFAULT_COSTS[name].seconds_per_mb
                    for name in complete_flow())
        entity = sum(DEFAULT_COSTS[name].seconds_per_mb
                     for name in ENTITY_OPS if name != "annotate_pos")
        pos = DEFAULT_COSTS["annotate_pos"].seconds_per_mb
        assert 0.6 < entity / total < 0.8
        assert 0.08 < pos / total < 0.18

    def test_dictionary_memory_band(self):
        """Paper: dictionary taggers need 6-20 GB per worker."""
        for name in ("dict_gene_tagger", "dict_drug_tagger",
                     "dict_disease_tagger"):
            assert 6 <= DEFAULT_COSTS[name].memory_gb <= 20

    def test_gene_dictionary_startup_20_minutes(self):
        assert DEFAULT_COSTS["dict_gene_tagger"].startup_seconds == 1200
