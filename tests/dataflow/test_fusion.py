"""Tests for chain fusion and the streaming/parallel executors.

The load-bearing property is *mode equivalence*: every physical
execution mode (sequential, threads, fused, fused-threads,
fused-processes) must produce byte-identical sink outputs, including
record order — order-sensitive operators (prefix sums, sorts) make
any partition/merge mistake visible immediately.
"""

import json
import random

import pytest

from repro.core.flows import EXECUTION_MODES, make_executor, run_flow
from repro.dataflow.executor import (
    LocalExecutor, contiguous_partitions, estimate_records_bytes,
)
from repro.dataflow.fusion import (
    FusedPlan, StreamingExecutor, fuse_plan,
)
from repro.dataflow.operators import (
    FilterOperator, FlatMapOperator, MapOperator, UdfOperator,
)
from repro.dataflow.plan import LogicalPlan


def _inc(name="inc"):
    return MapOperator(name, lambda r: r + 1)


def _dup(name="dup"):
    return FlatMapOperator(name, lambda r: [r, r * 10])


def _drop3(name="drop3"):
    return FilterOperator(name, lambda r: r % 3 != 0)


def _prefix_sum(name="prefix_sum"):
    def fn(stream):
        total = 0
        for record in stream:
            total += record
            yield total
    return UdfOperator(name, fn)


def _linear_plan():
    plan = LogicalPlan()
    tail = plan.chain([_inc(), _dup(), _drop3()])
    plan.mark_sink("out", tail)
    return plan


class TestContiguousPartitions:
    def test_concatenation_restores_order(self):
        records = list(range(23))
        parts = contiguous_partitions(records, 4)
        assert [r for part in parts for r in part] == records

    def test_sizes_near_equal(self):
        parts = contiguous_partitions(list(range(10)), 3)
        assert sorted(len(p) for p in parts) == [3, 3, 4]

    def test_more_parts_than_records(self):
        parts = contiguous_partitions([1, 2], 5)
        assert [r for part in parts for r in part] == [1, 2]
        assert all(len(p) <= 1 for p in parts)


class TestFusePlan:
    def test_linear_chain_fuses_into_one_stage(self):
        fused = fuse_plan(_linear_plan())
        assert isinstance(fused, FusedPlan)
        assert len(fused.stages) == 1
        assert fused.n_fused == 1
        assert fused.stages[0].name == "fused[inc > dup > drop3]"
        assert list(fused.sinks) == ["out"]

    def test_parallelizability_change_breaks_stage(self):
        plan = LogicalPlan()
        tail = plan.chain([_inc(), _prefix_sum(), _dup()])
        plan.mark_sink("out", tail)
        fused = fuse_plan(plan)
        assert [stage.name for stage in fused.stages] == \
            ["inc", "prefix_sum", "dup"]
        assert [stage.parallel for stage in fused.stages] == \
            [True, False, True]

    def test_fan_out_breaks_stage(self):
        plan = LogicalPlan()
        head = plan.chain([_inc(), _dup()])
        left = plan.add(_drop3("left"), head)
        right = plan.add(MapOperator("right", lambda r: -r), head)
        plan.mark_sink("left", left)
        plan.mark_sink("right", right)
        fused = fuse_plan(plan)
        assert [stage.name for stage in fused.stages] == \
            ["fused[inc > dup]", "left", "right"]

    def test_sink_with_consumer_still_materializes(self):
        """A sink's output is a deliverable even when another stage
        consumes it downstream (Fig. 2: entities -> frequencies)."""
        plan = LogicalPlan()
        head = plan.chain([_inc(), _drop3()])
        tail = plan.add(_dup("downstream"), head)
        plan.mark_sink("mid", head)
        plan.mark_sink("final", tail)
        fused = fuse_plan(plan)
        assert [stage.name for stage in fused.stages] == \
            ["fused[inc > drop3]", "downstream"]
        outputs, _ = StreamingExecutor().execute(plan, list(range(10)))
        assert set(outputs) == {"mid", "final"}

    def test_fig2_flow_fuses(self, context):
        from repro.core.flows import build_fig2_flow

        fused = fuse_plan(build_fig2_flow(context.pipeline))
        assert fused.n_fused >= 3
        assert len(fused.stages) < sum(len(s.nodes) for s in fused.stages)
        assert set(fused.sinks) == {"sentences", "linguistics", "entities",
                                    "entity_frequencies", "edges",
                                    "relations"}


def _random_plan(rng):
    """A randomized mix of maps/filters/flatmaps/UDFs with branches."""
    plan = LogicalPlan()
    makers = [
        lambda i: MapOperator(f"add{i}", lambda r, k=i: r + k),
        lambda i: FilterOperator(f"mod{i}", lambda r, k=i: r % (k + 2) != 0),
        lambda i: FlatMapOperator(f"fan{i}",
                                  lambda r, k=i: [r] * (r % (k + 2))),
        lambda i: _prefix_sum(f"psum{i}"),
    ]
    head = plan.chain([makers[rng.randrange(4)](i)
                       for i in range(rng.randrange(2, 6))])
    plan.mark_sink("a", head)
    for branch in range(rng.randrange(1, 3)):
        tail = plan.chain([makers[rng.randrange(4)](10 * (branch + 1) + i)
                           for i in range(rng.randrange(1, 4))], after=head)
        plan.mark_sink(f"b{branch}", tail)
    return plan


class TestModeEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_all_modes_identical_on_random_plans(self, seed):
        rng = random.Random(seed)
        records = [rng.randrange(100) for _ in range(rng.randrange(5, 60))]
        reference = None
        for mode in EXECUTION_MODES:
            outputs, report = run_flow(_random_plan(random.Random(seed)),
                                       list(records), mode=mode, dop=3,
                                       batch_size=4)
            if reference is None:
                reference = outputs
            else:
                assert outputs == reference, mode
            assert report.mode in (mode, "fused-threads")

    def test_threaded_local_executor_preserves_order(self):
        plan = _linear_plan()
        sequential, _ = LocalExecutor().execute(plan, list(range(40)))
        threaded, _ = LocalExecutor(dop=4, use_threads=True).execute(
            _linear_plan(), list(range(40)))
        assert threaded["out"] == sequential["out"]

    def test_fused_processes_equivalence_with_closures(self):
        """Closure-carrying operators survive the fork boundary."""
        executor = StreamingExecutor(dop=2, use_processes=True,
                                     batch_size=8)
        outputs, report = executor.execute(_linear_plan(), list(range(50)))
        reference, _ = LocalExecutor().execute(_linear_plan(),
                                               list(range(50)))
        assert outputs["out"] == reference["out"]
        assert report.mode in ("fused-processes", "fused-threads")


class TestExecutorPools:
    def test_one_thread_pool_per_execute(self, monkeypatch):
        import repro.dataflow.executor as executor_module

        created = []
        real = executor_module.ThreadPoolExecutor

        def counting(*args, **kwargs):
            created.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(executor_module, "ThreadPoolExecutor", counting)
        LocalExecutor(dop=4, use_threads=True).execute(
            _linear_plan(), list(range(30)))
        assert len(created) == 1

    def test_sequential_local_executor_creates_no_pool(self, monkeypatch):
        import repro.dataflow.executor as executor_module

        created = []
        real = executor_module.ThreadPoolExecutor

        def counting(*args, **kwargs):
            created.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(executor_module, "ThreadPoolExecutor", counting)
        LocalExecutor().execute(_linear_plan(), list(range(10)))
        assert created == []


class TestSpawnFallback:
    def test_spawn_only_platform_degrades_to_threads(self, monkeypatch):
        """Windows-style platforms (no fork) must get fused-threads
        plus a warning, not a pickling crash."""
        import repro.dataflow.fusion as fusion_module

        monkeypatch.setattr(fusion_module.multiprocessing,
                            "get_all_start_methods", lambda: ["spawn"])
        with pytest.warns(RuntimeWarning, match="fork"):
            executor = StreamingExecutor(dop=2, use_processes=True)
        assert executor.mode == "fused-threads"
        outputs, report = executor.execute(_linear_plan(), list(range(30)))
        reference, _ = LocalExecutor().execute(_linear_plan(),
                                               list(range(30)))
        assert outputs["out"] == reference["out"]
        assert report.mode == "fused-threads"

    def test_pinned_spawn_method_degrades_to_threads(self, monkeypatch):
        """fork available on the platform, but the interpreter pinned
        spawn globally — still fall back."""
        import repro.dataflow.fusion as fusion_module

        monkeypatch.setattr(fusion_module.multiprocessing,
                            "get_start_method",
                            lambda allow_none=False: "spawn")
        with pytest.warns(RuntimeWarning, match="falling back"):
            executor = StreamingExecutor(dop=2, use_processes=True)
        assert executor.mode == "fused-threads"

    def test_fork_platform_keeps_processes(self):
        from repro.dataflow.fusion import fork_start_available

        if not fork_start_available():  # pragma: no cover
            pytest.skip("no fork on this platform")
        executor = StreamingExecutor(dop=2, use_processes=True)
        assert executor.mode == "fused-processes"

    def test_probe_does_not_pin_start_method(self):
        """fork_start_available must not fix the global start method as
        a side effect of asking."""
        import multiprocessing

        from repro.dataflow.fusion import fork_start_available

        before = multiprocessing.get_start_method(allow_none=True)
        fork_start_available()
        assert multiprocessing.get_start_method(allow_none=True) == before


class TestThroughputGuards:
    """Regression: sub-resolution timings and empty reports must yield
    0.0 throughput, never a ZeroDivisionError."""

    def test_operator_stats_zero_seconds(self):
        from repro.dataflow.executor import OperatorStats

        stats = OperatorStats(name="x", records_in=10, records_out=10,
                              seconds=0.0)
        assert stats.records_per_second == 0.0
        assert stats.to_dict()["records_per_second"] == 0.0

    def test_empty_report_share_and_total(self):
        from repro.dataflow.executor import ExecutionReport

        report = ExecutionReport()
        assert report.share_of("anything") == 0.0
        assert report.total_records_per_second == 0.0
        assert report.to_dict()["total_records_per_second"] == 0.0

    def test_zero_second_report_total(self):
        from repro.dataflow.executor import ExecutionReport, OperatorStats

        report = ExecutionReport(
            operator_stats=[OperatorStats("x", 5, 5, 0.0)],
            total_seconds=0.0)
        assert report.total_records_per_second == 0.0
        assert report.share_of("x") == 0.0


class TestReport:
    def test_report_throughput_and_json(self):
        outputs, report = StreamingExecutor().execute(_linear_plan(),
                                                      list(range(20)))
        assert report.mode == "fused"
        assert report.n_fused_stages == 1
        stats = report.operator_stats[0]
        assert stats.fused
        assert stats.operators == ("inc", "dup", "drop3")
        assert stats.records_in == 20
        assert stats.records_out == len(outputs["out"])
        assert stats.est_output_bytes > 0
        assert stats.records_per_second >= 0
        payload = json.loads(report.to_json())
        assert payload["mode"] == "fused"
        assert payload["stages"][0]["operators"] == ["inc", "dup", "drop3"]
        assert payload["total_records_per_second"] >= 0

    def test_estimate_records_bytes_scales(self):
        small = estimate_records_bytes(["x" * 10] * 4)
        large = estimate_records_bytes(["x" * 1000] * 4)
        assert large > small > 0

    def test_make_executor_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            make_executor("mapreduce")
