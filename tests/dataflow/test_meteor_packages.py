"""Tests for the Meteor front-end and the operator packages."""

import pytest

from repro.annotations import Document
from repro.dataflow.executor import LocalExecutor
from repro.dataflow.meteor import MeteorError, parse_meteor
from repro.dataflow.packages import (
    OPERATOR_REGISTRY, make_operator, operators_in_package,
)


class TestRegistry:
    def test_more_than_60_operators(self):
        """The paper's system ships >60 operators in four packages."""
        assert len(OPERATOR_REGISTRY) >= 57

    def test_four_packages(self):
        packages = {spec.package for spec in OPERATOR_REGISTRY.values()}
        assert packages == {"base", "ie", "wa", "dc"}

    def test_each_package_nonempty(self):
        for package in ("base", "ie", "wa", "dc"):
            assert len(operators_in_package(package)) >= 8

    def test_make_operator_unknown(self):
        with pytest.raises(KeyError, match="unknown operator"):
            make_operator("does_not_exist")

    def test_descriptions_present(self):
        for spec in OPERATOR_REGISTRY.values():
            assert spec.description


class TestBaseOperators:
    def test_projection(self):
        operator = make_operator("projection", fields=["a"])
        assert list(operator.process([{"a": 1, "b": 2}])) == [{"a": 1}]

    def test_distinct(self):
        operator = make_operator("distinct")
        assert list(operator.process([1, 2, 1, 3, 2])) == [1, 2, 3]

    def test_distinct_by_key(self):
        operator = make_operator("distinct", key=lambda r: r["k"])
        records = [{"k": 1, "v": "a"}, {"k": 1, "v": "b"}]
        assert len(list(operator.process(records))) == 1

    def test_limit(self):
        operator = make_operator("limit", n=2)
        assert list(operator.process(range(10))) == [0, 1]

    def test_sort(self):
        operator = make_operator("sort", key=lambda r: r, reverse=True)
        assert list(operator.process([1, 3, 2])) == [3, 2, 1]

    def test_count(self):
        operator = make_operator("count")
        assert list(operator.process(range(7))) == [{"count": 7}]

    def test_group_by(self):
        operator = make_operator("group_by", key=lambda r: r % 2)
        groups = {g["key"]: g["value"]
                  for g in operator.process(range(10))}
        assert groups == {0: 5, 1: 5}

    def test_join(self):
        tag_left = make_operator("tag_side", side="left")
        tag_right = make_operator("tag_side", side="right")
        left = list(tag_left.process([{"k": 1, "a": "x"}]))
        right = list(tag_right.process([{"k": 1, "b": "y"},
                                        {"k": 2, "b": "z"}]))
        join = make_operator("join", key=lambda r: r["k"])
        merged = list(join.process(left + right))
        assert merged == [{"k": 1, "a": "x", "b": "y"}]

    def test_explode(self):
        operator = make_operator("explode", field="items")
        out = list(operator.process([{"items": [1, 2]}]))
        assert [r["items"] for r in out] == [1, 2]

    def test_sample_rate(self):
        operator = make_operator("sample", rate=0.5, seed=1)
        kept = list(operator.process(range(1000)))
        assert 350 < len(kept) < 650


class TestWaDcOperators:
    def _web_doc(self):
        return Document(
            "d", "", raw=("<html><body><div id='c'><p>Net article text "
                          "with enough words to count as content for the "
                          "extraction thresholds used here, clearly more "
                          "than forty words of flowing prose that any "
                          "boilerplate detector should keep as the main "
                          "body of this little page we built.</p></div>"
                          '<a href="http://x.com/next.html">next</a>'
                          "</body></html>"),
            meta={"url": "http://h.com/page.html",
                  "content_type": "text/html"})

    def test_remove_markup(self):
        document = list(make_operator("remove_markup").process(
            [self._web_doc()]))[0]
        assert "<" not in document.text
        assert "Net article text" in document.text

    def test_remove_boilerplate(self):
        document = list(make_operator("remove_boilerplate").process(
            [self._web_doc()]))[0]
        assert "Net article text" in document.text

    def test_extract_links_into_meta(self):
        document = list(make_operator("extract_links").process(
            [self._web_doc()]))[0]
        assert document.meta["outlinks"] == ["http://x.com/next.html"]

    def test_mime_filter_drops_binary(self):
        binary = Document("b", "", raw="%PDF-1.4 xxxx",
                          meta={"url": "http://h/a.pdf",
                                "content_type": "text/html"})
        kept = list(make_operator("mime_filter").process(
            [self._web_doc(), binary]))
        assert len(kept) == 1

    def test_annotate_host(self):
        document = list(make_operator("annotate_host").process(
            [self._web_doc()]))[0]
        assert document.meta["host"] == "h.com"

    def test_dedup_content(self):
        a = Document("1", "same text")
        b = Document("2", "same text")
        c = Document("3", "other text")
        kept = list(make_operator("dedup_content").process([a, b, c]))
        assert [d.doc_id for d in kept] == ["1", "3"]

    def test_normalize_whitespace(self):
        document = Document("d", "a   b\t\tc ")
        out = list(make_operator("normalize_whitespace").process(
            [document]))[0]
        assert out.text == "a b c"

    def test_scrub_pii_preserves_length_budget(self):
        document = Document("d", "mail me at someone@example.com today")
        out = list(make_operator("scrub_pii").process([document]))[0]
        assert "someone@example.com" not in out.text
        assert "<EMAIL>" in out.text

    def test_truncate_documents(self):
        document = Document("d", "x" * 200)
        out = list(make_operator("truncate_documents",
                                 max_chars=50).process([document]))[0]
        assert len(out.text) == 50
        assert out.meta["truncated"] is True

    def test_validate_offsets_drops_stale(self):
        from repro.annotations import EntityMention

        document = Document("d", "hello world")
        document.entities = [
            EntityMention("hello", 0, 5, "gene"),
            EntityMention("bogus", 3, 8, "gene"),
        ]
        out = list(make_operator("validate_offsets").process([document]))[0]
        assert [m.text for m in out.entities] == ["hello"]


class TestIeOperators:
    def test_annotate_sentences_and_tokens(self):
        document = Document("d", "First one here. Second one there.")
        chain_ops = [make_operator("annotate_sentences"),
                     make_operator("annotate_tokens")]
        records = [document]
        for operator in chain_ops:
            records = list(operator.process(records))
        assert len(records[0].sentences) == 2
        assert records[0].sentences[0].tokens

    def test_annotate_linguistic_categories_compose(self):
        document = Document("d", "They did not come (sadly).")
        for name in ("annotate_negation", "annotate_pronouns",
                     "annotate_parentheses"):
            document = list(make_operator(name).process([document]))[0]
        categories = {m.category for m in document.linguistics}
        assert categories == {"negation", "pronoun", "parenthesis"}

    def test_entities_to_records(self, pipeline):
        document = Document("d", "Patients received kesumabtidine today.")
        document.sentences = pipeline.splitter.split(document.text)
        pipeline.dictionary_taggers["drug"].annotate(document)
        records = list(make_operator("entities_to_records").process(
            [document]))
        for record in records:
            assert record["doc_id"] == "d"
            assert record["entity_type"] == "drug"

    def test_merge_annotations_dedups(self):
        from repro.annotations import EntityMention

        document = Document("d", "BRCA1")
        mention = EntityMention("BRCA1", 0, 5, "gene", method="dictionary")
        document.entities = [mention, mention]
        out = list(make_operator("merge_annotations").process([document]))[0]
        assert len(out.entities) == 1


class TestMeteor:
    CONTEXT_SCRIPT = """
    -- tiny linguistic flow
    $docs = read();
    $sent = annotate_sentences($docs);
    $tok  = annotate_tokens($sent);
    $neg  = annotate_negation($tok);
    $out  = linguistics_to_records($neg);
    write($out, 'ling');
    """

    def test_parse_and_execute(self):
        plan = parse_meteor(self.CONTEXT_SCRIPT)
        documents = [Document("d", "They did not come. Nor did we.")]
        outputs, _report = LocalExecutor().execute(plan, documents)
        assert {r["category"] for r in outputs["ling"]} == {"negation"}

    def test_context_values(self, pipeline):
        script = """
        $docs = read();
        $sent = annotate_sentences($docs);
        $tok = annotate_tokens($sent);
        $genes = annotate_genes_dict($tok, tagger=@gene_dict);
        $out = entities_to_records($genes);
        write($out, 'genes');
        """
        plan = parse_meteor(script, context={
            "gene_dict": pipeline.dictionary_taggers["gene"]})
        gene = pipeline.vocabulary.genes[0].canonical
        outputs, _ = LocalExecutor().execute(
            plan, [Document("d", f"Expression of {gene} rose.")])
        assert outputs["genes"]

    def test_literal_parsing(self):
        script = """
        $docs = read();
        $cut = truncate_documents($docs, max_chars=7);
        write($cut, 'out');
        """
        plan = parse_meteor(script)
        outputs, _ = LocalExecutor().execute(plan, [Document("d", "x" * 50)])
        assert len(outputs["out"][0].text) == 7

    def test_missing_sink_rejected(self):
        with pytest.raises(MeteorError, match="no write"):
            parse_meteor("$docs = read();")

    def test_undefined_variable_rejected(self):
        with pytest.raises(MeteorError, match="undefined variable"):
            parse_meteor("$a = annotate_sentences($nope);\nwrite($a, 'x');")

    def test_unknown_operator_rejected(self):
        with pytest.raises(MeteorError, match="unknown operator"):
            parse_meteor("$d = read();\n$x = frobnicate($d);\n"
                         "write($x, 'x');")

    def test_missing_context_rejected(self):
        with pytest.raises(MeteorError, match="missing context value"):
            parse_meteor("$d = read();\n"
                         "$x = annotate_pos($d, tagger=@missing);\n"
                         "write($x, 'x');")

    def test_write_of_source_rejected(self):
        with pytest.raises(MeteorError, match="raw source"):
            parse_meteor("$d = read();\nwrite($d, 'x');")

    def test_comments_ignored(self):
        plan = parse_meteor("""
        -- comment line
        $d = read();  -- trailing comment
        $x = drop_empty_documents($d);
        write($x, 'out');
        """)
        assert len(plan) == 1
