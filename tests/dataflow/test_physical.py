"""Tests for physical plan compilation and pipelined execution."""

import pytest

from repro.dataflow.executor import LocalExecutor
from repro.dataflow.operators import (
    FilterOperator, MapOperator, UdfOperator,
)
from repro.dataflow.physical import (
    PhysicalExecutor, compile_chain, compile_physical,
)
from repro.dataflow.plan import LogicalPlan


def _inc():
    return MapOperator("inc", lambda x: x + 1)


def _evens():
    return FilterOperator("evens", lambda x: x % 2 == 0,
                          selectivity=0.5)


def _sort():
    return UdfOperator("sort", lambda records: sorted(records))


class TestCompile:
    def test_parallel_chain_fuses_into_one_stage(self):
        physical = compile_chain([_inc(), _evens(), _inc()], dop=4)
        assert len(physical) == 1
        assert physical.stages[0].pipelined
        assert physical.stages[0].dop == 4
        assert physical.stages[0].input_channel == "source"

    def test_barrier_splits_stages(self):
        physical = compile_chain([_inc(), _sort(), _inc()], dop=4)
        assert [s.input_channel for s in physical.stages] == \
            ["source", "gather", "forward"]
        assert [s.dop for s in physical.stages] == [4, 1, 4]

    def test_barrier_first(self):
        physical = compile_chain([_sort(), _inc()], dop=2)
        assert physical.stages[0].operators[0].name == "sort"
        assert physical.stages[0].dop == 1

    def test_compile_from_logical_plan(self):
        plan = LogicalPlan()
        plan.mark_sink("out", plan.chain([_inc(), _evens()]))
        physical = compile_physical(plan, dop=3)
        assert len(physical) == 1

    def test_branching_plan_rejected(self):
        plan = LogicalPlan()
        root = plan.add(_inc())
        plan.add(_evens(), root)
        left = plan.add(_inc(), root)
        plan.mark_sink("out", left)
        with pytest.raises(ValueError):
            compile_physical(plan)

    def test_describe_and_cost(self):
        physical = compile_chain([_inc(), _sort()], dop=2)
        description = physical.describe()
        assert "stage0" in description and "gather" in description
        assert physical.total_estimated_cost(100) > 0


class TestExecute:
    def test_matches_logical_executor(self):
        operators = [_inc(), _evens(), _inc(), _sort()]
        physical = compile_chain([_inc(), _evens(), _inc(), _sort()],
                                 dop=4)
        records, _report = PhysicalExecutor(dop=4).execute(
            physical, list(range(20)))
        plan = LogicalPlan()
        plan.mark_sink("out", plan.chain(operators))
        expected, _ = LocalExecutor().execute(plan, list(range(20)))
        assert records == sorted(expected["out"])

    def test_report_per_stage(self):
        physical = compile_chain([_inc(), _sort()], dop=2)
        _records, report = PhysicalExecutor(dop=2).execute(
            physical, list(range(10)))
        assert len(report.operator_stats) == len(physical)
        assert report.operator_stats[0].records_in == 10

    def test_partitioned_stage_preserves_multiset(self):
        physical = compile_chain([_inc()], dop=5)
        records, _ = PhysicalExecutor(dop=5).execute(physical,
                                                     list(range(23)))
        assert sorted(records) == list(range(1, 24))

    def test_invalid_dop(self):
        with pytest.raises(ValueError):
            PhysicalExecutor(dop=0)
