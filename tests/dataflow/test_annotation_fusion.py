"""One-pass annotation-stage substitution (fuse_annotation_stage).

Two properties carry the weight: the optimizer must substitute the
fused stage only where the engine's contract holds (structural tests),
and the substituted plan must produce byte-identical sink outputs in
every physical execution mode (equivalence tests).
"""

import pytest

from repro.annotations import Document
from repro.core.flows import (
    EXECUTION_MODES, FlowSession, build_entity_flow, build_fig2_flow,
    run_flow,
)
from repro.dataflow.optimizer import fuse_annotation_stage
from repro.dataflow.packages import make_operator
from repro.dataflow.plan import LogicalPlan


@pytest.fixture(scope="module")
def texts(relevant_generator):
    return [relevant_generator.document(i).text for i in range(5)]


def _documents(texts):
    return [Document(f"doc-{i}", text) for i, text in enumerate(texts)]


def _names(plan):
    return [node.operator.name for node in plan.nodes]


class TestSubstitution:
    def test_entity_flow_fuses_to_one_stage(self, pipeline):
        plan = build_entity_flow(pipeline, web_input=False)
        n_before = len(plan.nodes)
        fused = fuse_annotation_stage(plan)
        assert len(fused) == 1
        assert len(plan.nodes) == n_before - 8  # 9 ops -> 1
        names = _names(plan)
        assert "annotate_entities_fused" in names
        for elementary in ("annotate_sentences", "annotate_tokens",
                           "annotate_pos", "annotate_genes_dict",
                           "annotate_diseases_ml"):
            assert elementary not in names
        plan.topological_order()  # surgery left a valid DAG

    def test_harvested_annotator_configuration(self, pipeline):
        plan = build_entity_flow(pipeline, web_input=False)
        (node,) = fuse_annotation_stage(plan)
        annotator = node.operator.fused_annotator
        assert annotator.split == "always"
        assert annotator.retokenize is True
        assert annotator.pos_tagger is pipeline.pos_tagger
        expected = []
        for entity_type in ("gene", "drug", "disease"):
            expected.append(pipeline.dictionary_taggers[entity_type])
            expected.append(pipeline.ml_taggers[entity_type])
        assert annotator.steps == expected
        assert annotator.merged.entity_types == ("disease", "drug",
                                                 "gene")

    def test_cost_annotations_aggregate(self, pipeline):
        plan = build_entity_flow(pipeline, web_input=False)
        replaced = [node.operator for node in plan.nodes
                    if node.operator.name in
                    ("annotate_sentences", "annotate_tokens",
                     "annotate_pos")
                    or node.operator.name.startswith("annotate_")
                    and node.operator.name.endswith(("_dict", "_ml"))]
        assert len(replaced) == 9
        (node,) = fuse_annotation_stage(plan)
        fused = node.operator
        assert fused.cost_per_record == pytest.approx(
            sum(op.cost_per_record for op in replaced))
        assert fused.memory_mb == max(op.memory_mb for op in replaced)
        assert fused.startup_seconds == pytest.approx(
            sum(op.startup_seconds for op in replaced))
        assert frozenset({"sentences", "tokens", "pos"}) <= fused.writes

    def test_fig2_substitution_keeps_sinks_and_prefix(self, pipeline):
        plan = build_fig2_flow(pipeline)
        fused = fuse_annotation_stage(plan)
        # Fig. 2's sentences/tokens feed the linguistic branch at a
        # fan-out, so only the linear pos -> taggers run fuses.
        assert len(fused) == 1
        names = _names(plan)
        assert "annotate_sentences" in names
        assert "annotate_tokens" in names
        assert "annotate_pos" not in names
        assert set(plan.sinks) == {"sentences", "linguistics", "entities",
                                   "entity_frequencies", "edges",
                                   "relations"}
        plan.topological_order()
        annotator = fused[0].operator.fused_annotator
        assert annotator.split == "never"
        assert annotator.retokenize is False

    def test_short_runs_left_alone(self):
        plan = LogicalPlan()
        tail = plan.chain([make_operator("annotate_sentences"),
                           make_operator("annotate_tokens")])
        plan.mark_sink("out", tail)
        assert fuse_annotation_stage(plan) == []
        assert "annotate_entities_fused" not in _names(plan)

    def test_split_without_tokenize_not_fused(self, pipeline):
        """sentences -> pos without annotate_tokens would crash the
        elementary chain on untokenized sentences; the fused engine
        must not paper over it."""
        plan = LogicalPlan()
        tail = plan.chain([
            make_operator("annotate_sentences"),
            make_operator("annotate_pos", tagger=pipeline.pos_tagger),
        ])
        plan.mark_sink("out", tail)
        assert fuse_annotation_stage(plan) == []

    def test_interior_sink_splits_run(self, pipeline, texts):
        """A sink in mid-run closes the run after itself: the prefix
        up to the sink and the tagger tail fuse separately, and the
        sink still receives its records."""
        plan = LogicalPlan()
        pos = plan.chain([
            make_operator("annotate_sentences"),
            make_operator("annotate_tokens"),
            make_operator("annotate_pos", tagger=pipeline.pos_tagger),
        ])
        plan.mark_sink("tagged", pos)
        tail = plan.chain([
            make_operator("annotate_genes_dict",
                          tagger=pipeline.dictionary_taggers["gene"]),
            make_operator("annotate_genes_ml",
                          tagger=pipeline.ml_taggers["gene"]),
            make_operator("entities_to_records"),
        ], after=pos)
        plan.mark_sink("entities", tail)
        fused = fuse_annotation_stage(plan)
        assert len(fused) == 2
        outputs, _ = run_flow(plan, _documents(texts),
                              mode="sequential", fuse_annotators=False)
        assert set(outputs) == {"tagged", "entities"}
        assert outputs["entities"]

    def test_fused_stage_not_refused(self, pipeline):
        plan = build_entity_flow(pipeline, web_input=False)
        fuse_annotation_stage(plan)
        assert fuse_annotation_stage(plan) == []


class TestFlowEquivalence:
    def _run(self, pipeline, texts, mode, fuse, dop=1):
        plan = build_entity_flow(pipeline, web_input=False)
        outputs, _ = run_flow(plan, _documents(texts), mode=mode,
                              dop=dop, batch_size=2,
                              fuse_annotators=fuse)
        return outputs

    def test_all_modes_match_unfused_reference(self, pipeline, texts):
        reference = self._run(pipeline, texts, "sequential", fuse=False)
        assert reference["entities"]
        for mode in EXECUTION_MODES:
            fused = self._run(pipeline, texts, mode, fuse=True, dop=2)
            assert fused == reference, mode

    def test_fig2_fused_matches_reference(self, pipeline, texts):
        documents = _documents(texts)
        for document in documents:
            document.meta["content_type"] = "text/html"
            document.raw = f"<html><body>{document.text}</body></html>"
        reference, _ = run_flow(build_fig2_flow(pipeline),
                                [d.copy_shallow() for d in documents],
                                mode="sequential", fuse_annotators=False)
        fused, _ = run_flow(build_fig2_flow(pipeline),
                            [d.copy_shallow() for d in documents],
                            mode="sequential", fuse_annotators=True)
        assert fused == reference
        assert reference["entities"]

    def test_run_flow_leaves_caller_plan_untouched(self, pipeline,
                                                   texts):
        plan = build_entity_flow(pipeline, web_input=False)
        names_before = _names(plan)
        run_flow(plan, _documents(texts), mode="sequential")
        assert _names(plan) == names_before

    def test_flow_session_fuses_in_place(self, pipeline, texts):
        reference = self._run(pipeline, texts, "sequential", fuse=False)
        with FlowSession(pipeline, mode="sequential",
                         build=lambda p: build_entity_flow(
                             p, web_input=False)) as session:
            assert session.fused_stages == 1
            assert "annotate_entities_fused" in _names(session.plan)
            outputs, _ = session.run(_documents(texts))
            assert outputs == reference
        plain = FlowSession(pipeline, mode="sequential",
                            build=lambda p: build_entity_flow(
                                p, web_input=False),
                            fuse_annotators=False)
        assert plain.fused_stages == 0


class TestCategoryAnnotators:
    TEXT = ("He did not test it (the BRCA1 assay); she thought "
            "they would neither confirm nor deny it (twice).")

    def _apply(self, names, document):
        for name in names:
            document = make_operator(name).fn(document)
        return document

    def test_three_category_ops_match_full_analyzer(self):
        from repro.nlp.linguistics import LinguisticAnalyzer

        chained = self._apply(["annotate_negation", "annotate_pronouns",
                               "annotate_parentheses"],
                              Document("d", self.TEXT))
        reference = Document("d", self.TEXT)
        LinguisticAnalyzer().analyze(reference)
        # Equality includes mention order.
        assert chained.linguistics == reference.linguistics
        assert chained.linguistics

    def test_order_of_category_ops_is_irrelevant(self):
        orders = [
            ["annotate_negation", "annotate_pronouns",
             "annotate_parentheses"],
            ["annotate_parentheses", "annotate_negation",
             "annotate_pronouns"],
            ["annotate_pronouns", "annotate_parentheses",
             "annotate_negation"],
        ]
        results = [self._apply(order, Document("d", self.TEXT)).linguistics
                   for order in orders]
        assert results[0] == results[1] == results[2]

    def test_subset_yields_only_those_categories(self):
        document = self._apply(["annotate_negation"],
                               Document("d", self.TEXT))
        assert document.linguistics
        assert {m.category for m in document.linguistics} == {"negation"}

    def test_chain_shares_one_regex_pass(self):
        from repro.nlp.linguistics import analyze_text

        analyze_text.cache_clear()
        text = self.TEXT + " unique-to-the-sharing-test."
        self._apply(["annotate_negation", "annotate_pronouns",
                     "annotate_parentheses"], Document("d", text))
        info = analyze_text.cache_info()
        assert info.misses == 1
        assert info.hits == 2

    def test_rerun_of_same_category_replaces_not_duplicates(self):
        document = self._apply(["annotate_negation", "annotate_negation"],
                               Document("d", self.TEXT))
        once = self._apply(["annotate_negation"],
                           Document("d", self.TEXT))
        assert document.linguistics == once.linguistics
