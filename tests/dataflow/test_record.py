"""Tests for the Sopremo-style JSON record model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow.record import Record, parse_path


class TestParsePath:
    def test_simple(self):
        assert parse_path("a") == ["a"]

    def test_nested(self):
        assert parse_path("a.b.c") == ["a", "b", "c"]

    def test_index(self):
        assert parse_path("a[0].b[12]") == ["a", 0, "b", 12]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_path("")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_path("a..[x]")


class TestGetSet:
    def test_get_nested(self):
        record = Record({"meta": {"url": "http://x", "tags": ["a", "b"]}})
        assert record.get("meta.url") == "http://x"
        assert record.get("meta.tags[1]") == "b"

    def test_get_missing_default(self):
        record = Record({"a": 1})
        assert record.get("b.c", "fallback") == "fallback"
        assert record.get("a.b", 0) == 0  # scalar cannot be descended

    def test_has(self):
        record = Record({"a": {"b": None}})
        assert record.has("a.b")       # present even though None
        assert not record.has("a.c")

    def test_set_creates_intermediates(self):
        record = Record()
        record.set("meta.source.engine", "bing")
        assert record.value == {"meta": {"source": {"engine": "bing"}}}

    def test_set_list_index_pads(self):
        record = Record()
        record.set("items[2]", "x")
        assert record.value == {"items": [None, None, "x"]}

    def test_set_overwrites(self):
        record = Record({"a": 1})
        record.set("a", 2)
        assert record.get("a") == 2

    def test_set_type_error(self):
        record = Record({"a": {}})
        with pytest.raises(TypeError):
            record.set("a[0]", 1)

    def test_delete(self):
        record = Record({"a": {"b": 1, "c": 2}, "d": [1, 2]})
        assert record.delete("a.b")
        assert record.value["a"] == {"c": 2}
        assert record.delete("d[0]")
        assert record.value["d"] == [2]
        assert not record.delete("nope.deep")


class TestProjectFlatten:
    def test_project(self):
        record = Record({"a": 1, "b": {"c": 2, "d": 3}})
        projected = record.project(["a", "b.c", "missing"])
        assert projected.value == {"a": 1, "b": {"c": 2}}

    def test_flatten(self):
        record = Record({"a": 1, "b": {"c": [10, 20]}})
        assert dict(record.flatten()) == {"a": 1, "b.c[0]": 10,
                                          "b.c[1]": 20}

    def test_equality(self):
        assert Record({"x": 1}) == Record({"x": 1})
        assert Record({"x": 1}) != Record({"x": 2})


@given(st.dictionaries(st.sampled_from("abcd"),
                       st.integers(-5, 5), min_size=1, max_size=4),
       st.sampled_from("abcd"), st.integers(-5, 5))
@settings(max_examples=100, deadline=None)
def test_property_set_then_get(base, key, value):
    record = Record(dict(base))
    record.set(f"nested.{key}", value)
    assert record.get(f"nested.{key}") == value
    # Original top-level fields survive.
    for existing_key, existing_value in base.items():
        assert record.get(existing_key) == existing_value
