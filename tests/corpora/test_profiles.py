"""Tests for corpus profiles and their calibration targets."""

import pytest

from repro.corpora.profiles import IRRELEVANT, MEDLINE, PMC, PROFILES, RELEVANT


def test_all_four_corpora_present():
    assert set(PROFILES) == {"relevant", "irrelevant", "medline", "pmc"}


def test_doc_length_ordering_matches_paper():
    # Table 3: relevant (88K) > PMC (56K) > irrelevant (38K) > Medline
    # (865).  The PMC profile is per IMRaD *section*; full texts are
    # four sections long.
    pmc_article_chars = 4 * PMC.mean_doc_chars
    assert (RELEVANT.mean_doc_chars > pmc_article_chars
            > IRRELEVANT.mean_doc_chars > MEDLINE.mean_doc_chars)


def test_sentence_length_ordering():
    assert (PMC.mean_sentence_tokens > RELEVANT.mean_sentence_tokens
            > MEDLINE.mean_sentence_tokens > IRRELEVANT.mean_sentence_tokens)


def test_negation_ordering():
    # Fig 6c: PMC and irrelevant above relevant, relevant above Medline.
    assert PMC.negation_per_sentence > RELEVANT.negation_per_sentence
    assert IRRELEVANT.negation_per_sentence > RELEVANT.negation_per_sentence
    assert RELEVANT.negation_per_sentence > MEDLINE.negation_per_sentence


def test_parenthesis_ordering():
    assert (PMC.parenthesis_per_sentence > RELEVANT.parenthesis_per_sentence
            > MEDLINE.parenthesis_per_sentence
            > IRRELEVANT.parenthesis_per_sentence)


def test_pronoun_pmc_highest():
    assert PMC.pronoun_per_sentence > RELEVANT.pronoun_per_sentence
    assert PMC.pronoun_per_sentence > IRRELEVANT.pronoun_per_sentence


def test_entity_rates_match_paper_table():
    assert MEDLINE.gene_per_1000_sentences == pytest.approx(415.6)
    assert RELEVANT.disease_per_1000_sentences == pytest.approx(128.5)
    assert IRRELEVANT.drug_per_1000_sentences == pytest.approx(6.85)


def test_entity_rate_accessor():
    assert RELEVANT.entity_rate("gene") == pytest.approx(0.1282)
    with pytest.raises(KeyError):
        RELEVANT.entity_rate("protein")


def test_paper_reference_values_attached():
    for profile in PROFILES.values():
        assert profile.paper["n_docs"] > 0
        assert profile.paper["mean_chars"] > 0


def test_irrelevant_is_not_biomedical():
    assert not IRRELEVANT.biomedical
    assert RELEVANT.biomedical and MEDLINE.biomedical and PMC.biomedical
