"""Unit tests for the gold-standard set builders."""

from repro.corpora.goldstandard import (
    build_boilerplate_gold, build_classifier_gold, build_ner_gold,
)
from repro.corpora.profiles import MEDLINE


class TestClassifierGold:
    def test_balanced_and_labelled(self, vocabulary):
        pairs = build_classifier_gold(vocabulary, n_per_class=6)
        assert len(pairs) == 12
        labels = [label for _, label in pairs]
        assert labels.count(True) == labels.count(False) == 6
        assert all(isinstance(text, str) and text for text, _ in pairs)

    def test_deterministic_given_seed(self, vocabulary):
        first = build_classifier_gold(vocabulary, n_per_class=3, seed=23)
        second = build_classifier_gold(vocabulary, n_per_class=3, seed=23)
        assert first == second

    def test_seed_changes_texts(self, vocabulary):
        first = build_classifier_gold(vocabulary, n_per_class=3, seed=23)
        second = build_classifier_gold(vocabulary, n_per_class=3, seed=24)
        assert first != second

    def test_classes_differ(self, vocabulary):
        pairs = build_classifier_gold(vocabulary, n_per_class=4)
        relevant = " ".join(t for t, label in pairs if label)
        irrelevant = " ".join(t for t, label in pairs if not label)
        assert relevant != irrelevant


class TestBoilerplateGold:
    def test_pairs_wrap_gold_text_in_markup(self, vocabulary):
        pairs = build_boilerplate_gold(4, vocabulary=vocabulary)
        assert len(pairs) == 4
        for html, net_text in pairs:
            assert html != net_text
            assert "<" in html and net_text
            # The gold net text is embedded in the rendered page.
            assert net_text.split()[0] in html

    def test_deterministic_given_seed(self, vocabulary):
        assert build_boilerplate_gold(3, seed=29, vocabulary=vocabulary) \
            == build_boilerplate_gold(3, seed=29, vocabulary=vocabulary)

    def test_pages_vary(self, vocabulary):
        pairs = build_boilerplate_gold(4, vocabulary=vocabulary)
        assert len({net for _, net in pairs}) == len(pairs)


class TestNerGold:
    def test_documents_carry_gold_layers(self, vocabulary):
        gold = build_ner_gold(vocabulary, MEDLINE, n_docs=3)
        assert len(gold) == 3
        for document in gold:
            assert document.text
            assert document.sentences
            # The pipeline under test fills annotation layers; gold
            # documents must arrive with them empty.
            assert not document.document.sentences
            for entity in document.entities:
                mention = entity.mention
                assert document.text[mention.start:mention.end] == \
                    mention.text

    def test_deterministic_given_seed(self, vocabulary):
        first = build_ner_gold(vocabulary, MEDLINE, n_docs=2, seed=31)
        second = build_ner_gold(vocabulary, MEDLINE, n_docs=2, seed=31)
        assert [d.text for d in first] == [d.text for d in second]
        assert [d.tagged_sentences() for d in first] == \
            [d.tagged_sentences() for d in second]
