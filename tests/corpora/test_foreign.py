"""Unit tests for the non-English filler text generators."""

import random

import pytest

from repro.corpora.foreign import FOREIGN_WORDS, generate_foreign_text


class TestInventories:
    def test_three_languages(self):
        assert set(FOREIGN_WORDS) == {"de", "fr", "es"}

    def test_inventories_are_nontrivial_and_distinct(self):
        for words in FOREIGN_WORDS.values():
            assert len(words) >= 20
            assert len(set(words)) == len(words)
        assert set(FOREIGN_WORDS["de"]).isdisjoint(FOREIGN_WORDS["fr"])


class TestGenerateForeignText:
    @pytest.mark.parametrize("language", sorted(FOREIGN_WORDS))
    def test_uses_only_inventory_words(self, language):
        text = generate_foreign_text(language, 400, random.Random(1))
        lowered = {word.lower() for word in FOREIGN_WORDS[language]}
        for sentence in text.split("."):
            for word in sentence.split():
                assert word.lower() in lowered

    def test_approximate_length(self):
        text = generate_foreign_text("de", 500, random.Random(2))
        # At least the requested budget, overshooting by at most one
        # word + sentence punctuation per sentence.
        assert 500 <= len(text) <= 700

    def test_sentence_shape(self):
        text = generate_foreign_text("fr", 300, random.Random(3))
        sentences = [s for s in text.split(". ") if s]
        assert len(sentences) >= 2
        for sentence in sentences:
            assert sentence[0].isupper()

    def test_deterministic_given_rng(self):
        assert generate_foreign_text("es", 300, random.Random(4)) == \
            generate_foreign_text("es", 300, random.Random(4))

    def test_unknown_language_raises(self):
        with pytest.raises(ValueError):
            generate_foreign_text("tlh", 100, random.Random(5))
