"""Tests for the gold-annotated document generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpora.profiles import IRRELEVANT, MEDLINE, PMC, RELEVANT
from repro.corpora.textgen import (
    DocumentGenerator, PRONOUN_CLASSES, _vary_surface,
)
import random


@pytest.fixture(scope="module")
def gold_docs(medline_generator):
    return medline_generator.documents(12)


class TestDeterminism:
    def test_same_index_same_document(self, medline_generator):
        assert (medline_generator.document(5).text
                == medline_generator.document(5).text)

    def test_different_indices_differ(self, medline_generator):
        assert (medline_generator.document(1).text
                != medline_generator.document(2).text)


class TestGoldOffsets:
    def test_sentence_spans_match_text(self, gold_docs):
        for gold in gold_docs:
            for sentence in gold.sentences:
                assert gold.text[sentence.start:sentence.end] == sentence.text

    def test_token_spans_match_text(self, gold_docs):
        for gold in gold_docs:
            for sentence in gold.sentences:
                for token in sentence.tokens:
                    assert gold.text[token.start:token.end] == token.text

    def test_entity_spans_match_text(self, gold_docs):
        for gold in gold_docs:
            for entity in gold.entities:
                mention = entity.mention
                assert gold.text[mention.start:mention.end] == mention.text

    def test_every_token_has_pos(self, gold_docs):
        for gold in gold_docs:
            for sentence in gold.sentences:
                for token in sentence.tokens:
                    assert token.pos

    def test_sentences_are_ordered_and_disjoint(self, gold_docs):
        for gold in gold_docs:
            previous_end = -1
            for sentence in gold.sentences:
                assert sentence.start > previous_end
                previous_end = sentence.end

    def test_entities_inside_some_sentence(self, gold_docs):
        for gold in gold_docs:
            for entity in gold.entities:
                assert any(s.start <= entity.mention.start
                           and entity.mention.end <= s.end
                           for s in gold.sentences)


class TestProfiles:
    def test_document_length_ordering(self, vocabulary):
        from repro.corpora.pmc import PmcCorpusBuilder

        means = {}
        for profile in (RELEVANT, IRRELEVANT, MEDLINE):
            generator = DocumentGenerator(vocabulary, profile, seed=11)
            docs = generator.documents(30)
            means[profile.name] = sum(len(d.text) for d in docs) / len(docs)
        pmc_docs = PmcCorpusBuilder(vocabulary, seed=11).build(15)
        means["pmc"] = sum(len(d.text) for d in pmc_docs) / len(pmc_docs)
        assert means["relevant"] > means["pmc"] > means["irrelevant"] \
            > means["medline"]

    def test_sentence_length_ordering(self, vocabulary):
        means = {}
        for profile in (RELEVANT, IRRELEVANT, MEDLINE, PMC):
            generator = DocumentGenerator(vocabulary, profile, seed=11)
            lengths = [len(s.tokens) for d in generator.documents(20)
                       for s in d.sentences]
            means[profile.name] = sum(lengths) / len(lengths)
        assert means["pmc"] > means["relevant"] > means["medline"] \
            > means["irrelevant"]

    def test_entity_density_medline_exceeds_irrelevant(self, vocabulary):
        def density(profile):
            generator = DocumentGenerator(vocabulary, profile, seed=12)
            docs = generator.documents(20)
            mentions = sum(len(d.entities) for d in docs)
            sentences = sum(len(d.sentences) for d in docs)
            return mentions / max(1, sentences)
        assert density(MEDLINE) > 10 * density(IRRELEVANT)

    def test_tagged_sentences_format(self, medline_generator):
        tagged = medline_generator.document(0).tagged_sentences()
        assert tagged
        for sentence in tagged:
            for word, tag in sentence:
                assert isinstance(word, str) and isinstance(tag, str)

    def test_novel_entities_marked(self, vocabulary):
        generator = DocumentGenerator(vocabulary, RELEVANT, seed=13)
        entities = [e for d in generator.documents(25) for e in d.entities]
        assert any(not e.in_dictionary for e in entities)
        assert any(e.in_dictionary for e in entities)

    def test_novel_entities_not_in_dictionary(self, vocabulary):
        generator = DocumentGenerator(vocabulary, RELEVANT, seed=13)
        known = {n.lower() for n in (vocabulary.gene_names()
                                     + vocabulary.disease_names()
                                     + vocabulary.drug_names())}
        for doc in generator.documents(15):
            for entity in doc.entities:
                if not entity.in_dictionary and not entity.variant:
                    assert entity.mention.text.lower() not in known

    def test_biomedical_flag_in_meta(self, vocabulary):
        relevant = DocumentGenerator(vocabulary, RELEVANT, seed=1)
        irrelevant = DocumentGenerator(vocabulary, IRRELEVANT, seed=1)
        assert relevant.document(0).document.meta["biomedical"] is True
        assert irrelevant.document(0).document.meta["biomedical"] is False


class TestPathologicalDocuments:
    def test_pathological_fraction_produces_runons(self, vocabulary):
        generator = DocumentGenerator(vocabulary, RELEVANT, seed=9,
                                      pathological_fraction=1.0)
        gold = generator.document(0)
        assert gold.document.meta.get("pathological")
        assert "." not in gold.text
        assert len(gold.text) > 2000

    def test_zero_fraction_never_pathological(self, vocabulary):
        generator = DocumentGenerator(vocabulary, RELEVANT, seed=9)
        for i in range(10):
            assert not generator.document(i).document.meta.get(
                "pathological")


class TestSurfaceVariants:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_variant_is_nonempty_string(self, seed):
        rng = random.Random(seed)
        variant = _vary_surface(rng, "BRCA-1 alpha")
        assert variant and isinstance(variant, str)

    def test_variant_differs_usually(self):
        rng = random.Random(1)
        variants = {_vary_surface(rng, "Aspirin") for _ in range(50)}
        assert len(variants) > 1


def test_pronoun_classes_cover_six():
    assert len(PRONOUN_CLASSES) == 6


@given(st.integers(min_value=0, max_value=200))
@settings(max_examples=20, deadline=None)
def test_property_gold_offsets_always_consistent(vocabulary, index):
    generator = DocumentGenerator(vocabulary, MEDLINE, seed=21)
    gold = generator.document(index)
    for sentence in gold.sentences:
        assert gold.text[sentence.start:sentence.end] == sentence.text
        for token in sentence.tokens:
            assert gold.text[token.start:token.end] == token.text
    for entity in gold.entities:
        assert gold.text[entity.mention.start:entity.mention.end] \
            == entity.mention.text
