"""Tests for the Medline/PMC builders, gold standards, and helpers."""

import pytest

from repro.corpora.foreign import FOREIGN_WORDS, generate_foreign_text
from repro.corpora.goldstandard import (
    build_boilerplate_gold, build_classifier_gold, build_ner_gold,
)
from repro.corpora.markov import MarkovTextModel, default_filler_model
from repro.corpora.medline import MedlineCorpusBuilder
from repro.corpora.pmc import SECTIONS, PmcCorpusBuilder, concat_gold_documents
from repro.corpora.profiles import MEDLINE
import random


class TestMedlineBuilder:
    def test_metadata(self, vocabulary):
        builder = MedlineCorpusBuilder(vocabulary)
        abstract = builder.abstract(3)
        assert abstract.document.meta["source"] == "medline"
        assert abstract.document.meta["pmid"] == "10000003"
        assert abstract.document.meta["year"] <= 2013

    def test_build_count(self, vocabulary):
        builder = MedlineCorpusBuilder(vocabulary)
        assert len(builder.build(5)) == 5

    def test_abstracts_are_short(self, vocabulary):
        builder = MedlineCorpusBuilder(vocabulary)
        lengths = [len(a.text) for a in builder.build(20)]
        assert sum(lengths) / len(lengths) < 2500


class TestPmcBuilder:
    def test_article_has_sections_meta(self, vocabulary):
        builder = PmcCorpusBuilder(vocabulary)
        article = builder.article(0)
        assert article.document.meta["sections"] == list(SECTIONS)
        assert article.document.meta["pmcid"].startswith("PMC")

    def test_articles_longer_than_abstracts(self, vocabulary):
        pmc = PmcCorpusBuilder(vocabulary).build(5)
        medline = MedlineCorpusBuilder(vocabulary).build(5)
        assert (sum(len(a.text) for a in pmc)
                > 2 * sum(len(a.text) for a in medline))

    def test_offsets_survive_concatenation(self, vocabulary):
        article = PmcCorpusBuilder(vocabulary).article(1)
        for sentence in article.sentences:
            assert article.text[sentence.start:sentence.end] == sentence.text
            for token in sentence.tokens:
                assert article.text[token.start:token.end] == token.text
        for entity in article.entities:
            mention = entity.mention
            assert article.text[mention.start:mention.end] == mention.text


class TestConcatGoldDocuments:
    def test_empty_parts_rejected_by_usage(self, medline_generator):
        parts = [medline_generator.document(i) for i in range(3)]
        merged = concat_gold_documents(parts, doc_id="merged")
        assert merged.doc_id == "merged"
        assert len(merged.text) == (sum(len(p.text) for p in parts)
                                    + 2 * len("\n\n"))

    def test_entity_counts_preserved(self, medline_generator):
        parts = [medline_generator.document(i) for i in range(3)]
        merged = concat_gold_documents(parts, doc_id="m")
        assert len(merged.entities) == sum(len(p.entities) for p in parts)


class TestGoldStandards:
    def test_classifier_gold_balanced(self, vocabulary):
        gold = build_classifier_gold(vocabulary, 10)
        labels = [label for _t, label in gold]
        assert labels.count(True) == labels.count(False) == 10

    def test_classifier_gold_deterministic(self, vocabulary):
        assert (build_classifier_gold(vocabulary, 5)
                == build_classifier_gold(vocabulary, 5))

    def test_boilerplate_gold_pairs(self):
        pairs = build_boilerplate_gold(4, seed=1)
        for html, net_text in pairs:
            assert "<" in html
            assert net_text
            assert net_text not in ("", html)

    def test_ner_gold_is_gold_documents(self, vocabulary):
        docs = build_ner_gold(vocabulary, MEDLINE, 3)
        assert len(docs) == 3
        assert all(d.sentences for d in docs)


class TestForeignText:
    def test_languages_available(self):
        assert {"de", "fr", "es"} <= set(FOREIGN_WORDS)

    def test_generates_requested_length(self):
        text = generate_foreign_text("de", 500, random.Random(1))
        assert len(text) >= 500

    def test_unknown_language(self):
        with pytest.raises(ValueError):
            generate_foreign_text("xx", 100, random.Random(1))


class TestMarkov:
    def test_untrained_raises(self):
        with pytest.raises(ValueError):
            MarkovTextModel().sentence()

    def test_trained_generates(self):
        model = MarkovTextModel(seed=1)
        model.train([["hello", "world"], ["hello", "there"]])
        words = model.sentence()
        assert words[0] == "hello"

    def test_default_filler_text(self):
        model = default_filler_model(seed=2)
        text = model.text(3)
        assert text.count(".") >= 1

    def test_deterministic(self):
        a = default_filler_model(seed=3).text(5)
        b = default_filler_model(seed=3).text(5)
        assert a == b
