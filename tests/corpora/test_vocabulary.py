"""Tests for the synthetic biomedical nomenclature."""

import pytest

from repro.corpora.vocabulary import (
    BiomedicalVocabulary, TermEntry, _gene_symbol,
)
import random


class TestTermEntry:
    def test_all_names_includes_canonical_first(self):
        entry = TermEntry("BRCA1", ("BRCA1-alpha", "BRCA1 protein"))
        assert entry.all_names()[0] == "BRCA1"
        assert len(entry.all_names()) == 3

    def test_no_synonyms(self):
        assert TermEntry("aspirin").all_names() == ("aspirin",)


class TestBiomedicalVocabulary:
    def test_deterministic_given_seed(self):
        a = BiomedicalVocabulary(seed=42, n_genes=50, n_diseases=30,
                                 n_drugs=30)
        b = BiomedicalVocabulary(seed=42, n_genes=50, n_diseases=30,
                                 n_drugs=30)
        assert a.gene_names() == b.gene_names()
        assert a.disease_names() == b.disease_names()
        assert a.drug_names() == b.drug_names()

    def test_different_seeds_differ(self):
        a = BiomedicalVocabulary(seed=1, n_genes=50, n_diseases=30,
                                 n_drugs=30)
        b = BiomedicalVocabulary(seed=2, n_genes=50, n_diseases=30,
                                 n_drugs=30)
        assert a.gene_names() != b.gene_names()

    def test_requested_entry_counts(self):
        vocab = BiomedicalVocabulary(seed=3, n_genes=77, n_diseases=44,
                                     n_drugs=33)
        assert len(vocab.genes) == 77
        assert len(vocab.diseases) == 44
        assert len(vocab.drugs) == 33

    def test_default_scale_matches_paper_ratios(self):
        vocab = BiomedicalVocabulary(seed=3, scale=100)
        # Gene inventory is the largest, as in the paper (700K vs ~60K).
        assert len(vocab.gene_names()) > len(vocab.disease_names())
        assert len(vocab.gene_names()) > len(vocab.drug_names())

    def test_gene_names_unique(self, vocabulary):
        names = vocabulary.gene_names()
        assert len(names) == len(set(names))

    def test_gene_synonyms_present(self, vocabulary):
        # Paper: gene dictionary includes synonyms (~900K distinct names).
        assert any(e.synonyms for e in vocabulary.genes)

    def test_gene_shape_is_acronym_like(self, vocabulary):
        for entry in vocabulary.genes[:50]:
            symbol = entry.canonical
            head = symbol.split("-")[0]
            assert head[:2].isupper(), symbol

    def test_tla_genes_exist(self, vocabulary):
        # Three-letter all-caps symbols drive the BANNER FP pathology.
        tlas = [e.canonical for e in vocabulary.genes
                if len(e.canonical) == 3 and e.canonical.isalpha()]
        assert tlas

    def test_disease_morphology(self, vocabulary):
        suffixes = ("itis", "oma", "osis", "opathy", "emia", "algia",
                    "iasis", "ectasia", "omegaly", "plasia", "penia",
                    "rrhea", "syndrome", "disease", "disorder",
                    "deficiency", "dystrophy", "fever", "failure",
                    "infection", "lesion", "palsy")
        for entry in vocabulary.diseases[:50]:
            assert entry.canonical.endswith(suffixes), entry.canonical

    def test_drug_names_nonempty_and_unique(self, vocabulary):
        names = [e.canonical.lower() for e in vocabulary.drugs]
        assert len(names) == len(set(names))

    def test_entries_accessor(self, vocabulary):
        assert vocabulary.entries("gene") is vocabulary.genes
        assert vocabulary.entries("disease") is vocabulary.diseases
        assert vocabulary.entries("drug") is vocabulary.drugs

    def test_entries_rejects_unknown_type(self, vocabulary):
        with pytest.raises(ValueError, match="unknown entity type"):
            vocabulary.entries("protein")

    def test_term_ids_are_stable_and_typed(self, vocabulary):
        assert vocabulary.genes[0].term_id.startswith("GENE:")
        assert vocabulary.diseases[0].term_id.startswith("DIS:")
        assert vocabulary.drugs[0].term_id.startswith("DRUG:")


class TestSeedKeywords:
    def test_categories(self, vocabulary):
        for category in ("general", "disease", "drug", "gene"):
            terms = vocabulary.seed_keywords(category, 10)
            assert len(terms) == 10

    def test_deterministic(self, vocabulary):
        a = vocabulary.seed_keywords("disease", 15, seed=1)
        b = vocabulary.seed_keywords("disease", 15, seed=1)
        assert a == b

    def test_different_sample_seed_differs(self, vocabulary):
        a = vocabulary.seed_keywords("gene", 20, seed=1)
        b = vocabulary.seed_keywords("gene", 20, seed=2)
        assert a != b

    def test_count_capped_at_pool(self, vocabulary):
        terms = vocabulary.seed_keywords("drug", 10_000)
        assert len(terms) == len(vocabulary.drugs)

    def test_unknown_category(self, vocabulary):
        with pytest.raises(ValueError, match="unknown keyword category"):
            vocabulary.seed_keywords("animal", 5)

    def test_specific_terms_come_from_dictionary(self, vocabulary):
        canonical = {e.canonical for e in vocabulary.diseases}
        for term in vocabulary.seed_keywords("disease", 20):
            assert term in canonical


def test_gene_symbol_generator_shapes():
    rng = random.Random(0)
    for _ in range(200):
        symbol = _gene_symbol(rng)
        head = symbol.replace("-", "")
        assert 2 <= len(symbol) <= 9
        assert head[0].isupper()
