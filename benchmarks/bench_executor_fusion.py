"""Streaming fused execution + persistent dictionary cache benchmark.

The physical-execution half of the Section 4.2 war story, measured:

* **Dictionary cache** — the paper's "approximately 20 minutes (!)"
  gene-dictionary load, re-paid by every worker at every task start,
  against building once and re-loading the serialized automaton.
  Criterion: cache-warm tagger construction >= 10x faster than cold.
* **Execution engines** — the naive materialize-every-edge executor
  against the fused streaming engine (threads / fork processes).
  All modes must produce byte-identical sink outputs.
* **End-to-end** — cold-build + naive execution vs warm-cache + best
  fused execution on the Fig. 2 flow.  Criterion: >= 1.5x.

Artifacts: ``out/BENCH_executor.json`` (machine-readable reports per
mode) and ``out/executor_fusion.txt``.

``BENCH_SMOKE=1`` shrinks every size for CI smoke runs and skips the
ratio assertions (timings on loaded CI machines are noise); the
equivalence assertions always hold.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

from reporting import OUT_DIR, format_table, write_report

from repro.core.flows import EXECUTION_MODES, build_fig2_flow, make_executor
from repro.corpora.vocabulary import BiomedicalVocabulary
from repro.ner.cache import AutomatonCache
from repro.ner.taggers import build_dictionary_taggers
from repro.web.htmlgen import PageRenderer

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: Dictionary scale for the cache phase.  The build cost grows
#: superlinearly with vocabulary size (dict churn), the cached load
#: linearly — mirroring why the paper's full-size dictionaries hurt.
N_GENES = 800 if SMOKE else 12_000
N_OTHER = 300 if SMOKE else 4_000
N_DOCS = 6 if SMOKE else 30
DOP = max(2, os.cpu_count() or 2)


def _build_seconds(taggers) -> float:
    return sum(t.dictionary.build_seconds for t in taggers.values())


def _flow_documents(ctx):
    renderer = PageRenderer(seed=7)
    documents = []
    for index, document in enumerate(
            ctx.corpus_documents("relevant")[:N_DOCS]):
        url = f"http://bench{index}.example.org/doc.html"
        document.raw = renderer.render(url, "t", document.text, [])
        document.meta.update({"url": url, "content_type": "text/html"})
        documents.append(document)
    return documents


def test_executor_fusion_and_dictionary_cache(ctx, benchmark, tmp_path):
    vocabulary = BiomedicalVocabulary(seed=11, n_genes=N_GENES,
                                      n_diseases=N_OTHER, n_drugs=N_OTHER)
    cache_dir = tmp_path / "automata"

    # -- Phase 1: cold build vs cache-warm construction -----------------
    cache = AutomatonCache(cache_dir)
    started = time.perf_counter()
    cold_taggers = build_dictionary_taggers(vocabulary, cache=cache)
    cold_wall = time.perf_counter() - started
    cold_build = _build_seconds(cold_taggers)
    # Same-process warm: served by the cache's in-memory tier (the
    # paper's per-worker reuse).
    warm_taggers = build_dictionary_taggers(vocabulary, cache=cache)
    warm_build = _build_seconds(warm_taggers)
    # Fresh-process-style warm: a new cache instance must deserialize
    # from disk (the serialize-once-load-everywhere fix).
    disk_taggers = build_dictionary_taggers(vocabulary,
                                            cache=AutomatonCache(cache_dir))
    disk_build = _build_seconds(disk_taggers)
    assert cache.misses == 3 and cache.hits == 3
    n_patterns = sum(t.dictionary.n_patterns for t in cold_taggers.values())

    # -- Phase 2: execution engines on the Fig. 2 flow ------------------
    pipeline = dataclasses.replace(ctx.pipeline,
                                   dictionary_taggers=warm_taggers)
    documents = _flow_documents(ctx)
    mode_reports: dict[str, object] = {}
    mode_outputs = {}
    for mode in EXECUTION_MODES:
        executor = make_executor(mode, dop=DOP, batch_size=4)
        plan = build_fig2_flow(pipeline)
        copies = [d.copy_shallow() for d in documents]
        if mode == "fused":
            outputs, report = benchmark.pedantic(
                lambda: executor.execute(plan, copies),
                rounds=1, iterations=1)
        else:
            outputs, report = executor.execute(plan, copies)
        mode_outputs[mode] = outputs
        mode_reports[mode] = report
    reference = mode_outputs["sequential"]
    for mode, outputs in mode_outputs.items():
        assert outputs == reference, f"{mode} diverged from sequential"

    # -- Phase 3: end-to-end totals -------------------------------------
    naive_exec = mode_reports["sequential"].total_seconds
    best_mode = min(("fused", "fused-threads", "fused-processes"),
                    key=lambda m: mode_reports[m].total_seconds)
    best_exec = mode_reports[best_mode].total_seconds
    naive_total = cold_build + naive_exec
    cached_total = warm_build + best_exec
    speedup = naive_total / cached_total if cached_total else 0.0
    warm_ratio = cold_build / warm_build if warm_build else float("inf")
    disk_ratio = cold_build / disk_build if disk_build else float("inf")

    rows = [[mode, f"{mode_reports[mode].total_seconds:.2f}",
             mode_reports[mode].n_fused_stages,
             f"{mode_reports[mode].total_records_per_second:.1f}"]
            for mode in EXECUTION_MODES]
    lines = [
        f"dictionaries: {n_patterns} patterns "
        f"({N_GENES} genes, {N_OTHER} diseases, {N_OTHER} drugs)",
        f"cold build    {cold_build:8.2f} s   (wall {cold_wall:.2f} s)",
        f"warm (memory) {warm_build:8.4f} s   ({warm_ratio:.0f}x faster)",
        f"warm (disk)   {disk_build:8.2f} s   ({disk_ratio:.1f}x faster)",
        "",
        *format_table(["mode", "exec s", "fused stages", "docs/s"], rows),
        "",
        f"naive total   (cold build + sequential exec): {naive_total:.2f} s",
        f"cached total  (warm cache + {best_mode}): {cached_total:.2f} s",
        f"end-to-end speedup: {speedup:.2f}x",
    ]
    write_report("executor_fusion",
                 "Fused execution + dictionary cache (war story, local)",
                 lines)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_executor.json").write_text(json.dumps({
        "smoke": SMOKE,
        "n_patterns": n_patterns,
        "dop": DOP,
        "dictionary_cache": {
            "cold_build_seconds": cold_build,
            "warm_memory_seconds": warm_build,
            "warm_disk_seconds": disk_build,
            "warm_ratio": warm_ratio,
            "disk_ratio": disk_ratio,
        },
        "modes": {mode: report.to_dict()
                  for mode, report in mode_reports.items()},
        "end_to_end": {
            "naive_total_seconds": naive_total,
            "cached_total_seconds": cached_total,
            "best_mode": best_mode,
            "speedup": speedup,
        },
    }, indent=2))

    if not SMOKE:
        assert warm_ratio >= 10.0, (
            f"cache-warm construction only {warm_ratio:.1f}x faster")
        assert speedup >= 1.5, (
            f"fused+cached only {speedup:.2f}x over naive cold run")
