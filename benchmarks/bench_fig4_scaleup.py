"""Fig. 4: scale-up — input grows with the degree of parallelism.

The linguistic flow stays near the ideal (flat) line; the entity flow
degrades sub-linearly at large DoPs and input sizes.
"""

from reporting import format_table, write_report

from repro.dataflow.cluster import (
    ENTITY_OPS, LINGUISTIC_OPS, PREPROCESSING_OPS, SimulatedCluster,
)

DOPS = [1, 2, 4, 8, 12, 16, 20, 24, 28]
LING = PREPROCESSING_OPS + LINGUISTIC_OPS
ENTITY = PREPROCESSING_OPS + ENTITY_OPS


def test_fig4_scale_up(benchmark):
    cluster = SimulatedCluster()
    ling_reports = benchmark.pedantic(
        lambda: cluster.scale_up(LING, 1.0, DOPS), rounds=1, iterations=1)
    entity_reports = cluster.scale_up(ENTITY, 1.0, DOPS)
    rows = []
    for dop, ling, entity in zip(DOPS, ling_reports, entity_reports):
        rows.append([
            f"{dop}/{dop} GB", f"{ling.seconds:.0f} s",
            f"{entity.seconds:.0f} s" if entity.feasible else "infeasible",
        ])
    lines = format_table(["DoP/input", "linguistic flow", "entity flow"],
                         rows)
    lines.append("")
    lines.append("paper Fig 4: linguistic flow exhibits an almost ideal "
                 "(flat) scale-up; entity flow scales sub-linearly for "
                 "large DoPs and input sizes")
    write_report("fig4_scaleup", "Fig. 4 — scale-up", lines)
    # Ideal scale-up = flat curve. Linguistic: <40% drift over 28x.
    assert ling_reports[-1].seconds < 1.4 * ling_reports[0].seconds
    # Entity: grows (sub-linear scaling) but far less than input growth.
    feasible = [r for r in entity_reports if r.feasible]
    assert feasible[-1].seconds > 1.1 * feasible[0].seconds
    assert feasible[-1].seconds < 3.0 * feasible[0].seconds
    # Entity flow is the slower of the two everywhere.
    for ling, entity in zip(ling_reports, entity_reports):
        if entity.feasible:
            assert entity.seconds > ling.seconds
