"""Benchmark fixtures: a shared reproduction context at bench scale.

Benchmarks both *time* the relevant kernels (pytest-benchmark) and
*regenerate* the paper's tables/figures, writing each as a text report
under ``benchmarks/out/`` and asserting the paper's qualitative shape.
"""

from __future__ import annotations

import pytest

from repro.core.experiment import default_context


@pytest.fixture(scope="session")
def ctx():
    """Bench-scale context: larger corpora than the unit-test one."""
    return default_context(corpus_docs=30, n_training_docs=50,
                           crf_iterations=40, n_hosts=70,
                           crawl_pages=1200, seed_scale=15)


@pytest.fixture(scope="session")
def stats(ctx):
    return ctx.corpus_stats()
