"""Self-training ablation: incremental classifier updates during the
crawl.

The paper picked Naïve Bayes partly for "its ability to update its
model incrementally, although we currently don't use this feature".
This bench turns the feature on and measures whether self-training on
confidently classified pages helps or drifts.
"""

import copy
import functools

from reporting import format_table, write_report

from repro.crawler.crawl import CrawlConfig, FocusedCrawler


def _corpus_precision(ctx, documents):
    graph = ctx.webgraph
    correct = total = 0
    for document in documents:
        page = graph.page(document.doc_id.split("?ref=r")[0])
        if page is not None:
            total += 1
            correct += page.biomedical
    return correct / total if total else 0.0


def test_online_learning_ablation(ctx, benchmark):
    seeds = ctx.seed_batch("second").urls
    rows = []
    outcomes = {}
    for label, online, confidence in (
            ("static model (paper)", False, 0.0),
            ("self-training @0.98", True, 0.98),
            ("self-training @0.80", True, 0.80)):
        classifier = copy.deepcopy(ctx.pipeline.classifier)
        crawler = FocusedCrawler(ctx.web, classifier,
                                 ctx.build_filter_chain(),
                                 CrawlConfig(max_pages=900,
                                             online_learning=online,
                                             online_confidence=confidence))
        run = functools.partial(crawler.crawl, seeds)
        result = (benchmark.pedantic(run, rounds=1, iterations=1)
                  if label.startswith("static") else run())
        outcomes[label] = result
        rows.append([label, len(result.relevant),
                     f"{result.harvest_rate:.0%}",
                     f"{_corpus_precision(ctx, result.relevant):.0%}",
                     result.stop_reason])
    lines = format_table(
        ["strategy", "relevant yield", "harvest", "corpus precision",
         "stop"], rows)
    lines.append("")
    lines.append("paper Sect. 2.1: Naïve Bayes chosen for robustness to "
                 "class imbalance and incremental updates ('although we "
                 "currently don't use this feature') — measured here: "
                 "conservative self-training is safe; aggressive "
                 "thresholds risk drift")
    write_report("ablation_online_learning",
                 "Ablation — self-training during the crawl", lines)
    static = outcomes["static model (paper)"]
    conservative = outcomes["self-training @0.98"]
    # Conservative self-training must not collapse the corpus quality.
    assert _corpus_precision(ctx, conservative.relevant) > 0.6
    assert len(conservative.relevant) > 0.5 * len(static.relevant)
