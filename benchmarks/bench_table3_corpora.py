"""Table 3: summary of the four analyzed data sets."""

from reporting import format_table, write_report

from repro.corpora.profiles import PROFILES


def test_table3_corpus_summary(ctx, benchmark):
    corpora = benchmark.pedantic(ctx.corpora, rounds=1, iterations=1)
    rows = []
    for name in ("relevant", "irrelevant", "medline", "pmc"):
        documents = corpora[name]
        total_chars = sum(len(d.text) for d in documents)
        mean_chars = total_chars / len(documents)
        paper = PROFILES[name].paper
        rows.append([
            name, f"{paper['size_gb']} GB", f"{paper['n_docs']:,}",
            f"{paper['mean_chars']:,}", len(documents),
            f"{total_chars / 1024:.0f} KB", f"{mean_chars:,.0f}",
        ])
    lines = format_table(
        ["data set", "paper size", "paper #docs", "paper mean chars",
         "repro #docs", "repro size", "repro mean chars"], rows)
    lines.append("")
    lines.append("repro scale preserves the orderings, not absolute "
                 "sizes (see DESIGN.md substitutions)")
    write_report("table3_corpora", "Table 3 — data set summary", lines)

    means = {row[0]: float(str(row[6]).replace(",", "")) for row in rows}
    # Paper ordering: relevant > pmc > irrelevant > medline.
    assert means["relevant"] > means["pmc"] > means["irrelevant"] \
        > means["medline"]
    counts = {name: len(corpora[name]) for name in corpora}
    # Medline has the most documents relative to its size, as in the
    # paper (21M abstracts vs 250K full texts).
    assert counts["medline"] > counts["pmc"]
