"""Fused one-pass annotation stage vs the reference operator chain.

End-to-end document throughput of the entity flow (Section 4.2's
scalability subject: POS + six entity taggers), executed two ways over
identical inputs: the elementary ``annotate_sentences → annotate_tokens
→ annotate_pos → taggers`` chain, and the plan with the fused
``annotate_entities_fused`` stage substituted
(:func:`repro.dataflow.optimizer.fuse_annotation_stage`).  Runs are
interleaved (reference, fused, reference, ...) so drift hits both arms
equally, timed min-of-3, with annotation caches cold (the bench
pipeline attaches none) and the sink-output digest asserted identical
on every round.

Artifacts: repo-root ``BENCH_flow.json`` (machine-readable timings and
digests) and ``out/flow_throughput.txt``.

``BENCH_SMOKE=1`` shrinks the corpus and skips the ratio gate (CI
timings are noise); the digest-equality assertions always hold.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

from reporting import format_table, write_report

from repro.annotations import Document
from repro.core.flows import build_entity_flow, run_flow

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_DOCS = 6 if SMOKE else 24
ROUNDS = 3

#: The gate the fused stage must clear on end-to-end throughput.
TARGET_SPEEDUP = 1.5

REPO_ROOT = Path(__file__).resolve().parent.parent


def _digest(outputs: dict) -> str:
    payload = json.dumps(outputs, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def test_flow_throughput(ctx):
    pipeline = ctx.pipeline
    texts = [document.text
             for document in ctx.corpus_documents("relevant")[:N_DOCS]]

    def run(fuse: bool) -> tuple[float, str, int]:
        plan = build_entity_flow(pipeline, web_input=False)
        documents = [Document(f"doc-{index}", text)
                     for index, text in enumerate(texts)]
        started = time.perf_counter()
        outputs, _report = run_flow(plan, documents, mode="sequential",
                                    fuse_annotators=fuse)
        seconds = time.perf_counter() - started
        return seconds, _digest(outputs), len(outputs["entities"])

    # One untimed warmup per arm compiles every lazy kernel (frozen
    # CRF weights, merged automaton, numpy buffers) for both paths.
    run(False)
    run(True)

    reference_times: list[float] = []
    fused_times: list[float] = []
    n_mentions = 0
    for _round in range(ROUNDS):
        seconds, reference_digest, n_mentions = run(False)
        reference_times.append(seconds)
        seconds, fused_digest, n_fused = run(True)
        fused_times.append(seconds)
        assert fused_digest == reference_digest, \
            "fused stage diverged from the reference chain"
        assert n_fused == n_mentions

    reference_best = min(reference_times)
    fused_best = min(fused_times)
    speedup = reference_best / fused_best if fused_best else 0.0
    rows = [
        ["reference", f"{reference_best:.3f}",
         f"{N_DOCS / reference_best:.1f}"],
        ["fused", f"{fused_best:.3f}", f"{N_DOCS / fused_best:.1f}"],
    ]
    write_report(
        "flow_throughput",
        "One-pass fused annotation stage vs reference chain",
        [f"{N_DOCS} documents, {n_mentions} mentions, "
         f"min of {ROUNDS} interleaved rounds, caches cold",
         "",
         *format_table(["chain", "seconds", "docs/s"], rows),
         "",
         f"speedup: {speedup:.2f}x (gate {TARGET_SPEEDUP}x"
         f"{', skipped: smoke' if SMOKE else ''})"])
    (REPO_ROOT / "BENCH_flow.json").write_text(json.dumps({
        "smoke": SMOKE,
        "n_documents": N_DOCS,
        "n_mentions": n_mentions,
        "rounds": ROUNDS,
        "reference_seconds": reference_times,
        "fused_seconds": fused_times,
        "reference_best_seconds": reference_best,
        "fused_best_seconds": fused_best,
        "reference_docs_per_second": N_DOCS / reference_best,
        "fused_docs_per_second": N_DOCS / fused_best,
        "speedup": speedup,
        "digest": reference_digest,
        "digests_identical": True,
    }, indent=2) + "\n")

    if not SMOKE:
        assert speedup >= TARGET_SPEEDUP, (
            f"fused stage only {speedup:.2f}x over the reference chain")
