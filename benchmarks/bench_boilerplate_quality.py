"""Section 4.1: boilerplate-detection quality on the gold set (paper:
1,906 pages, P=90 %/R=82 %) and on crawled pages (P=98 %/R=72 %)."""

import statistics

from reporting import format_table, write_report

from repro.corpora.goldstandard import build_boilerplate_gold
from repro.html.boilerplate import BoilerplateDetector, evaluate_extraction


def test_boilerplate_on_gold_set(ctx, benchmark):
    pairs = build_boilerplate_gold(200, seed=5, vocabulary=ctx.vocabulary)
    detector = BoilerplateDetector()

    def run():
        precisions, recalls = [], []
        for html, gold in pairs:
            extracted = detector.extract(html)
            precision, recall = evaluate_extraction(extracted, gold)
            precisions.append(precision)
            recalls.append(recall)
        return statistics.mean(precisions), statistics.mean(recalls)

    precision, recall = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = format_table(
        ["evaluation", "paper P", "paper R", "repro P", "repro R"],
        [["gold set (paper n=1,906; repro n=200)", "90 %", "82 %",
          f"{precision:.0%}", f"{recall:.0%}"]])
    write_report("boilerplate_gold",
                 "Section 4.1 — boilerplate detection, gold set", lines)
    assert precision > 0.75
    assert recall > 0.6


def test_boilerplate_on_crawled_pages(ctx, benchmark):
    """On real crawled pages (markup defects, lists): precision holds,
    recall drops — the tables-and-lists failure the paper reports."""
    graph = ctx.webgraph
    web = ctx.web
    detector = BoilerplateDetector()
    benchmark.pedantic(
        lambda: detector.extract(web.fetch(next(
            u for u, p in graph.pages.items()
            if p.kind == 'article' and p.language == 'en'
            and not p.content_type.startswith('application/'))).body),
        rounds=1, iterations=1)
    precisions, recalls = [], []
    n = 0
    for url, page in graph.pages.items():
        if (page.kind != "article" or page.language != "en"
                or page.content_type.startswith("application/")
                or page.length_class != "normal"):
            continue
        fetch = web.fetch(url)
        if not fetch.ok:
            continue
        extracted = detector.extract(fetch.body)
        precision, recall = evaluate_extraction(extracted,
                                                graph.body_text(url))
        precisions.append(precision)
        recalls.append(recall)
        n += 1
        if n >= 120:
            break
    precision = statistics.mean(precisions)
    recall = statistics.mean(recalls)
    lines = format_table(
        ["evaluation", "paper P", "paper R", "repro P", "repro R"],
        [[f"crawled pages (n={n})", "98 %", "72 %",
          f"{precision:.0%}", f"{recall:.0%}"]])
    lines.append("")
    lines.append("paper: tables and lists, which often contain valuable "
                 "facts, are not recognized properly")
    write_report("boilerplate_crawl",
                 "Section 4.1 — boilerplate detection on crawl", lines)
    assert precision > 0.7
    assert recall > 0.5
