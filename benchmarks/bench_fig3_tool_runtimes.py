"""Fig. 3: runtimes of IE tools vs. input length.

(a) POS tagging: linear in sentence length with large fluctuations and
crashes on pathological sentences; (b) entity annotation: dictionary
matching is essentially linear, CRF tagging is far slower — orders of
magnitude apart — and the BANNER-style quadratic feature set grows
superlinearly.

``test_kernel_throughput`` additionally measures the frozen annotator
kernels (docs/performance.md) against their reference implementations
and writes the numbers to repo-root ``BENCH_nlp.json``.
"""

import json
import os
import tempfile
import time
from pathlib import Path

import pytest
from reporting import format_table, write_report

from repro.annotations import Document
from repro.corpora.goldstandard import build_ner_gold
from repro.corpora.profiles import MEDLINE
from repro.ner.features import sentence_features
from repro.ner.taggers import MlEntityTagger
from repro.nlp.anno_cache import AnnotationCache
from repro.nlp.pos_hmm import TaggerCrash

BENCH_NLP_PATH = Path(__file__).resolve().parent.parent / "BENCH_nlp.json"


def _sentence_of(words: int) -> list[str]:
    base = ["the", "study", "shows", "a", "significant", "response",
            "in", "these", "patients", "with"]
    return [base[i % len(base)] for i in range(words)]


def test_fig3a_pos_runtime_vs_length(ctx, benchmark):
    tagger = ctx.pipeline.pos_tagger
    lengths = [10, 20, 40, 80, 160, 320, 500]
    rows = []
    timings = {}
    for length in lengths:
        words = _sentence_of(length)
        started = time.perf_counter()
        for _ in range(5):
            tagger.tag(words)
        elapsed = (time.perf_counter() - started) / 5
        timings[length] = elapsed
        rows.append([length, f"{elapsed * 1000:.2f} ms"])
    benchmark.pedantic(lambda: tagger.tag(_sentence_of(100)),
                       rounds=3, iterations=1)
    crashed = False
    try:
        tagger.tag(_sentence_of(700))
    except TaggerCrash:
        crashed = True
    rows.append([700, "CRASH (TaggerCrash)" if crashed else "ok"])
    lines = format_table(["sentence tokens", "tagging time"], rows)
    lines.append("")
    lines.append("paper Fig 3a: runtime linear in length with large "
                 "fluctuations; occasional crashes on very long "
                 "(>2000 char) sentences")
    write_report("fig3a_pos_runtime", "Fig. 3a — POS tagging runtime",
                 lines)
    # Linear-ish growth: 16x tokens => between 4x and 120x time.
    ratio = timings[320] / timings[20]
    assert 4 < ratio < 120
    assert crashed


def test_fig3b_dict_vs_ml_runtime(ctx, benchmark):
    """Dictionary automaton vs. the BANNER-analog CRF (quadratic
    feature machinery) on growing inputs."""
    pipeline = ctx.pipeline
    banner_like = MlEntityTagger.train(
        "gene", build_ner_gold(ctx.vocabulary, MEDLINE, 10, seed=6),
        quadratic_context=True, max_iterations=8)
    document_sizes = [1, 2, 4, 8]
    base = ctx.corpus_documents("medline")
    rows = []
    gap_at_max = None
    for size in document_sizes:
        text = " ".join(d.text for d in base[:size])
        dict_doc = Document("d", text)
        started = time.perf_counter()
        pipeline.dictionary_taggers["gene"].annotate(dict_doc)
        dict_seconds = time.perf_counter() - started
        ml_doc = Document("m", text)
        pipeline.preprocess(ml_doc)
        started = time.perf_counter()
        banner_like.annotate(ml_doc)
        ml_seconds = time.perf_counter() - started
        rows.append([f"{len(text):,}", f"{dict_seconds * 1000:.1f} ms",
                     f"{ml_seconds * 1000:.1f} ms",
                     f"{ml_seconds / max(dict_seconds, 1e-9):.0f}x"])
        gap_at_max = ml_seconds / max(dict_seconds, 1e-9)
    benchmark.pedantic(
        lambda: pipeline.dictionary_taggers["gene"].annotate(
            Document("b", base[0].text)), rounds=3, iterations=1)
    lines = format_table(
        ["text chars", "dictionary", "ML (CRF)", "gap"], rows)
    lines.append("")
    lines.append("paper Fig 3b: dictionary- and ML-based methods differ "
                 "in runtime by up to three orders of magnitude")
    write_report("fig3b_ner_runtime",
                 "Fig. 3b — entity annotation runtime", lines)
    # ML decisively slower, growing with input. The paper measured
    # unoptimized tools; the frozen CRF kernel narrows the gap ~3x,
    # so the bound is correspondingly lower than three orders of
    # magnitude.
    assert gap_at_max > 8


@pytest.mark.slow
def test_fig3b_quadratic_feature_growth(ctx, benchmark):
    """BANNER-style quadratic context features: per-sentence tagging
    cost grows superlinearly with sentence length."""
    training = build_ner_gold(ctx.vocabulary, MEDLINE, 10, seed=5)
    tagger = benchmark.pedantic(
        lambda: MlEntityTagger.train("gene", training,
                                     quadratic_context=True,
                                     max_iterations=8),
        rounds=1, iterations=1)

    def time_tagging(n_words: int) -> float:
        text = " ".join(_sentence_of(n_words)) + "."
        document = Document("q", text)
        started = time.perf_counter()
        tagger.annotate(document)
        return time.perf_counter() - started

    short = min(time_tagging(25) for _ in range(3))
    long = min(time_tagging(100) for _ in range(3))
    lines = [
        f"25-token sentence:  {short * 1000:.1f} ms",
        f"100-token sentence: {long * 1000:.1f} ms",
        f"4x tokens -> {long / short:.1f}x time "
        "(superlinear: quadratic feature extraction)",
    ]
    write_report("fig3b_quadratic",
                 "Fig. 3b — quadratic CRF feature growth", lines)
    assert long / short > 6.0


def _best_seconds(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _bench_sentences(ctx, max_sentences: int) -> list[list[str]]:
    """Tokenized medline sentences (realistic mix of known words and
    unknown entity names for the POS shape path)."""
    sentences: list[list[str]] = []
    for document in ctx.corpus_documents("medline"):
        ctx.pipeline.preprocess(document)
        for sentence in document.sentences:
            words = [t.text for t in sentence.tokens]
            if words:
                sentences.append(words)
            if len(sentences) >= max_sentences:
                return sentences
    return sentences


def test_kernel_throughput(ctx, benchmark):
    """Frozen vs. reference annotator kernels: POS (array Viterbi) and
    CRF decode (dense trellis), cold and annotation-cache-warm.

    Writes repo-root BENCH_nlp.json — the committed evidence for the
    >=3x POS / >=2x CRF kernel speedups (asserted here outside smoke
    mode; BENCH_SMOKE=1 shrinks the workload below timer stability and
    only checks that the harness runs end to end).
    """
    smoke = os.environ.get("BENCH_SMOKE") == "1"
    rounds = 2 if smoke else 4
    sentences = _bench_sentences(ctx, 40 if smoke else 400)
    n_tokens = sum(len(words) for words in sentences)
    tagger = ctx.pipeline.pos_tagger
    assert tagger.frozen  # pipeline.build freezes after training

    # -- POS: reference dict Viterbi vs. frozen kernel vs. cache ----------
    pos_reference = _best_seconds(
        lambda: [tagger.tag_reference(words) for words in sentences],
        rounds)
    pos_frozen = _best_seconds(
        lambda: [tagger.tag(words) for words in sentences], rounds)
    with tempfile.TemporaryDirectory() as cache_dir:
        try:
            tagger.annotation_cache = AnnotationCache(cache_dir)
            for words in sentences:  # prime
                tagger.tag(words)
            pos_warm = _best_seconds(
                lambda: [tagger.tag(words) for words in sentences], rounds)
        finally:
            tagger.annotation_cache = None

    # -- CRF decode: per-sentence reference vs. vectorized batch ----------
    crf = ctx.pipeline.ml_taggers["disease"].crf
    features = [sentence_features(words, quadratic_context=False)
                for words in sentences]
    crf_reference = _best_seconds(
        lambda: [crf.predict_reference(sentence) for sentence in features],
        rounds)
    crf_frozen = _best_seconds(lambda: crf.predict_batch(features), rounds)
    with tempfile.TemporaryDirectory() as cache_dir:
        cache = AnnotationCache(cache_dir)
        fingerprint = crf.fingerprint()
        for words, labels in zip(sentences, crf.predict_batch(features)):
            cache.store(fingerprint, words, labels)
        crf_warm = _best_seconds(
            lambda: [cache.lookup(fingerprint, words)
                     for words in sentences], rounds)

    benchmark.pedantic(lambda: [tagger.tag(words) for words in sentences],
                       rounds=2, iterations=1)

    def tokens_per_second(seconds: float) -> float:
        return n_tokens / seconds if seconds > 0 else float("inf")

    results = {
        "config": {"n_sentences": len(sentences), "n_tokens": n_tokens,
                   "rounds": rounds, "smoke": smoke},
        "pos": {
            "reference_tokens_per_sec": tokens_per_second(pos_reference),
            "frozen_tokens_per_sec": tokens_per_second(pos_frozen),
            "cache_warm_tokens_per_sec": tokens_per_second(pos_warm),
            "speedup_frozen": pos_reference / pos_frozen,
            "speedup_cache_warm": pos_reference / pos_warm,
        },
        "crf_decode": {
            "reference_tokens_per_sec": tokens_per_second(crf_reference),
            "frozen_tokens_per_sec": tokens_per_second(crf_frozen),
            "cache_warm_tokens_per_sec": tokens_per_second(crf_warm),
            "speedup_frozen": crf_reference / crf_frozen,
            "speedup_cache_warm": crf_reference / crf_warm,
        },
    }
    # Smoke runs (CI) keep their tiny-input numbers out of the
    # committed repo-root artifact.
    out_path = (Path(__file__).resolve().parent / "out" / "BENCH_nlp.json"
                if smoke else BENCH_NLP_PATH)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    lines = format_table(
        ["kernel", "reference", "frozen", "cache-warm"],
        [["POS (tokens/s)",
          f"{results['pos']['reference_tokens_per_sec']:,.0f}",
          f"{results['pos']['frozen_tokens_per_sec']:,.0f}",
          f"{results['pos']['cache_warm_tokens_per_sec']:,.0f}"],
         ["CRF decode (tokens/s)",
          f"{results['crf_decode']['reference_tokens_per_sec']:,.0f}",
          f"{results['crf_decode']['frozen_tokens_per_sec']:,.0f}",
          f"{results['crf_decode']['cache_warm_tokens_per_sec']:,.0f}"]])
    write_report("kernel_throughput",
                 "Frozen annotator kernel throughput", lines)
    if not smoke:
        assert results["pos"]["speedup_frozen"] >= 3.0
        assert results["crf_decode"]["speedup_frozen"] >= 2.0
        assert results["pos"]["speedup_cache_warm"] > \
            results["pos"]["speedup_frozen"]


def test_component_runtime_shares(ctx, benchmark):
    """Section 4.2: entity extraction ~70 % and POS ~12 % of the
    complete flow's runtime (measured on a 10k-document sample there;
    a smaller sample here)."""
    from repro.core.flows import build_fig2_flow
    from repro.dataflow.executor import LocalExecutor
    from repro.web.htmlgen import PageRenderer

    renderer = PageRenderer(seed=77)
    documents = []
    for index, document in enumerate(ctx.corpus_documents("relevant")[:6]):
        url = f"http://bench{index}.example.org/a.html"
        document.raw = renderer.render(url, "t", document.text, [])
        document.meta.update({"url": url, "content_type": "text/html"})
        documents.append(document)
    plan = build_fig2_flow(ctx.pipeline)
    _outputs, report = benchmark.pedantic(
        lambda: LocalExecutor().execute(
            plan, [d.copy_shallow() for d in documents]),
        rounds=1, iterations=1)
    total = sum(s.seconds for s in report.operator_stats)
    entity = sum(s.seconds for s in report.operator_stats
                 if "_dict" in s.name or "_ml" in s.name)
    pos = report.seconds_of("annotate_pos")
    lines = format_table(
        ["component", "paper share", "repro share"],
        [["entity extraction", "70 %", f"{entity / total:.0%}"],
         ["POS tagging", "12 %", f"{pos / total:.0%}"],
         ["everything else", "18 %",
          f"{(total - entity - pos) / total:.0%}"]])
    lines.append("")
    lines.append("note: our pure-Python HMM is slow relative to the "
                 "3-label CRFs, so the POS/entity split shifts versus "
                 "the paper's Java tools; the calibrated cluster cost "
                 "model (repro.dataflow.cluster.DEFAULT_COSTS) encodes "
                 "the paper's measured 70 % / 12 % split and drives the "
                 "Fig. 4/5 reproduction")
    write_report("component_shares",
                 "Section 4.2 — component runtime shares", lines)
    # The two ML-heavy stages jointly dominate the flow, and entity
    # extraction is the single largest component, as in the paper.
    assert (entity + pos) / total > 0.5
    assert entity / total > 0.3
    assert entity > pos
