"""Generative vs discriminative relevance models.

The paper justifies Naïve Bayes by class-imbalance robustness and
incremental updates; this bench quantifies the comparison against a
streaming logistic-regression model on the same gold data and under
class imbalance.
"""

import functools

from reporting import format_table, write_report

from repro.classify.evaluation import cross_validate, mean_precision_recall
from repro.classify.logistic import LogisticTextClassifier
from repro.classify.naive_bayes import NaiveBayesClassifier
from repro.corpora.goldstandard import build_classifier_gold


def test_nb_vs_logistic(ctx, benchmark):
    gold = build_classifier_gold(ctx.vocabulary, 150)
    nb_factory = functools.partial(NaiveBayesClassifier,
                                   decision_threshold=0.5)
    lr_factory = functools.partial(LogisticTextClassifier, epochs=4)
    nb_reports = benchmark.pedantic(
        lambda: cross_validate(nb_factory, gold, folds=5),
        rounds=1, iterations=1)
    lr_reports = cross_validate(lr_factory, gold, folds=5)
    nb_p, nb_r = mean_precision_recall(nb_reports)
    lr_p, lr_r = mean_precision_recall(lr_reports)

    # Class imbalance: 1 relevant to 5 irrelevant (no rational prior on
    # the biomedical share of a crawl, per the paper).
    relevant = [ex for ex in gold if ex[1]][:25]
    irrelevant = [ex for ex in gold if not ex[1]][:125]
    imbalanced = [pair for group in zip(relevant, irrelevant[::5])
                  for pair in group] + irrelevant
    nb_ip, nb_ir = mean_precision_recall(
        cross_validate(nb_factory, imbalanced, folds=5))
    lr_ip, lr_ir = mean_precision_recall(
        cross_validate(lr_factory, imbalanced, folds=5))

    rows = [
        ["Naive Bayes (paper)", "balanced", f"{nb_p:.0%}", f"{nb_r:.0%}"],
        ["logistic regression", "balanced", f"{lr_p:.0%}", f"{lr_r:.0%}"],
        ["Naive Bayes (paper)", "1:5 imbalance", f"{nb_ip:.0%}",
         f"{nb_ir:.0%}"],
        ["logistic regression", "1:5 imbalance", f"{lr_ip:.0%}",
         f"{lr_ir:.0%}"],
    ]
    lines = format_table(["model", "class balance", "precision",
                          "recall"], rows)
    lines.append("")
    lines.append("paper Sect. 2.1: NB chosen 'due to its robustness "
                 "with respect to class imbalance … and its ability to "
                 "update its model incrementally'")
    write_report("classifier_comparison",
                 "Classifier comparison — NB vs logistic", lines)
    # Both models are usable; NB holds up under imbalance (the paper's
    # selection criterion).
    assert nb_p > 0.8 and lr_p > 0.7
    assert nb_ir > 0.4  # NB recall survives imbalance
