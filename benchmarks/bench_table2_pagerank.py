"""Table 2: top-ranked domains of the crawl by PageRank."""

from reporting import format_table, write_report

from repro.crawler.pagerank import top_ranked
from repro.web.webgraph import AUTHORITY_HOSTS_BIO


def test_table2_top_domains(ctx, benchmark):
    result = ctx.crawl()
    graph = result.linkdb.domain_graph()
    top = benchmark.pedantic(lambda: top_ranked(graph, k=30),
                             rounds=1, iterations=1)
    rows = [[rank + 1, domain, f"{score:.4f}"]
            for rank, (domain, score) in enumerate(top)]
    lines = format_table(["rank", "domain", "pagerank"], rows)
    lines.append("")
    lines.append("paper Table 2: nih.gov, cancer.org, biomedcentral.com, "
                 "healthline.com, wikipedia.org, arxiv.org, blogger.com, "
                 "statcounter.com, ... (mixture of biomedical "
                 "authorities, publishers whose APIs seeded the crawl, "
                 "and generic platforms/trackers)")
    write_report("table2_pagerank", "Table 2 — top domains by PageRank",
                 lines)
    top_domains = {domain for domain, _s in top}
    # Shape 1: biomedical authorities rank in the top 30.
    bio_hits = sum(1 for host in AUTHORITY_HOSTS_BIO
                   if host in top_domains)
    assert bio_hits >= 3
    # Shape 2: seed-source publisher domains appear (arxiv/nature),
    # because their search APIs only return their own content.
    assert any("arxiv" in domain or "nature" in domain
               for domain in top_domains)
    # Shape 3: generic platforms/trackers sneak in too.
    assert any(domain.startswith(("ads.", "wikipedia", "blogger",
                                  "statcounter", "wordpress", "disqus"))
               for domain in top_domains)
