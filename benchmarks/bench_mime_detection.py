"""Section 5 gap: reliable MIME-type detection.

Compares three detectors on a corpus of clean and adversarial
payloads (mislabeled binaries, stripped magic bytes, binary-prefixed
text): server-declared type, magic-byte + extension sniffing (the
Tika-style state of the art the paper used), and the learned
content-statistics detector.
"""

from reporting import format_table, write_report

from repro.html.mime import is_textual, sniff_mime
from repro.html.mime_ml import build_default_detector, robust_is_textual
from repro.util import seeded_rng


def _binary(rng, length=2000):
    return "".join(chr(rng.randint(0, 255)) for _ in range(length))


def _cases(ctx):
    """(payload, url, declared, truly_textual) test cases."""
    rng = seeded_rng("mime-bench", 7)
    renderer_pages = []
    graph = ctx.webgraph
    for url, page in graph.pages.items():
        if (page.kind == "article" and page.language == "en"
                and not page.content_type.startswith("application/")):
            renderer_pages.append(url)
        if len(renderer_pages) >= 25:
            break
    cases = []
    for url in renderer_pages:
        fetch = ctx.web.fetch(url)
        if fetch.ok:
            cases.append((fetch.body, url, fetch.content_type, True))
    for i in range(25):
        # Honest binary with magic bytes.
        cases.append(("%PDF-1.4" + _binary(rng), f"http://b{i}/f.pdf",
                      "application/pdf", False))
        # Mislabeling server, magic bytes intact (the common case the
        # paper's Tika-style sniffing handles).
        cases.append(("%PDF-1.4" + _binary(rng), f"http://b{i}/doc.html",
                      "text/html", False))
        # Mislabeled binary, magic bytes stripped by a broken proxy.
        cases.append((_binary(rng), f"http://b{i}/page.html",
                      "text/html", False))
        # Binary with a forged HTML prefix.
        cases.append(("<html>" + _binary(rng), f"http://b{i}/x.html",
                      "text/html", False))
    return cases


def test_mime_detector_comparison(ctx, benchmark):
    detector = benchmark.pedantic(
        lambda: build_default_detector(n_examples=40),
        rounds=1, iterations=1)
    cases = _cases(ctx)
    methods = {
        "server-declared": lambda body, url, declared:
            declared.startswith("text/"),
        "magic bytes + extension (paper)": lambda body, url, declared:
            is_textual(sniff_mime(body, url, declared)),
        "content statistics (learned)": lambda body, url, declared:
            robust_is_textual(body, url, declared, detector),
    }
    rows = []
    accuracies = {}
    for name, method in methods.items():
        correct = sum(method(body, url, declared) == truth
                      for body, url, declared, truth in cases)
        accuracy = correct / len(cases)
        accuracies[name] = accuracy
        rows.append([name, f"{accuracy:.0%}"])
    lines = format_table(["detector", f"accuracy (n={len(cases)})"],
                         rows)
    lines.append("")
    lines.append("paper Sect. 5: 'we are not aware of any robust tools "
                 "or ongoing research for reliable MIME-type detection' "
                 "— whole-payload content statistics close the gap the "
                 "prefix-sniffing approach leaves on adversarial cases")
    write_report("mime_detection",
                 "Section 5 gap — MIME-type detection", lines)
    assert accuracies["magic bytes + extension (paper)"] > \
        accuracies["server-declared"]
    assert accuracies["content statistics (learned)"] >= \
        accuracies["magic bytes + extension (paper)"]
    assert accuracies["content statistics (learned)"] > 0.9
