"""Crawl throughput: pre-change pipeline vs parse-once vs parallel.

Times a ~2000-page focused crawl of the simulated web in four modes —
the preserved pre-change per-page pipeline (``legacy_pipeline``, four
tokenizer passes per page, reference language/Naïve-Bayes scoring),
the current sequential parse-once pipeline, and the process-parallel
document stage at 2 and 4 workers — and asserts what the crawl loop
guarantees:

* every mode produces the *same crawl* (byte-identical results across
  worker counts; identical modulo the ``title`` metadata for the
  legacy pipeline, which never extracted titles);
* the per-stage page counters are deterministic across modes;
* enabling the observability subsystem (metrics + tracing,
  docs/observability.md) never changes the crawl output, and outside
  smoke mode costs <= 5% wall-clock;
* outside smoke mode, both the sequential and the 4-worker crawl beat
  the pre-change pipeline by >= 2x wall-clock.

Writes repo-root ``BENCH_crawl.json`` — the committed evidence for the
speedup.  ``BENCH_SMOKE=1`` shrinks the crawl for CI, writes the
artifact under ``benchmarks/out/`` instead, and skips the ratio
assertions (smoke boxes are too noisy to gate on wall-clock).
"""

import json
import os
import time
from pathlib import Path

import pytest
from legacy_pipeline import legacy_process_document
from reporting import format_table, write_report

import repro.crawler.crawl as crawl_module
from repro.core.experiment import default_context
from repro.crawler.checkpoint import result_to_dict
from repro.crawler.crawl import CrawlConfig, FocusedCrawler
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.web.server import SimulatedClock, SimulatedWeb

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
WEB_SEED = 29
BATCH_SIZE = 40
MAX_PAGES = 100 if SMOKE else 2400
WORKER_COUNTS = (2,) if SMOKE else (2, 4)
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_crawl.json"


@pytest.fixture(scope="module")
def crawl_ctx(ctx):
    """A web large enough that the crawl fetches >= 2000 pages (smoke
    mode reuses the shared bench context instead)."""
    if SMOKE:
        return ctx
    return default_context(corpus_docs=30, n_training_docs=50,
                           crf_iterations=40, n_hosts=200,
                           crawl_pages=4000, seed_scale=15)


def _run_crawl(context, seeds, workers, legacy=False, observed=False):
    """One timed crawl; returns (result, wall_seconds).

    The legacy mode swaps the preserved pre-change document stage into
    the coordinator (sequential only — the old pipeline predates the
    worker pool).  ``observed`` attaches the full observability
    subsystem (metrics registry + simulated-clock tracer).  Web,
    frontier, and filter chain are rebuilt per run so no state leaks
    between modes.
    """
    web = SimulatedWeb(context.webgraph, seed=WEB_SEED)
    config = CrawlConfig(max_pages=MAX_PAGES, batch_size=BATCH_SIZE,
                         parallel_workers=workers)
    clock = SimulatedClock()
    metrics = MetricsRegistry() if observed else None
    tracer = Tracer(clock=lambda: clock.now) if observed else None
    crawler = FocusedCrawler(web, context.pipeline.classifier,
                             context.build_filter_chain(), config,
                             clock=clock, metrics=metrics, tracer=tracer)
    original = crawl_module.process_document
    if legacy:
        crawl_module.process_document = legacy_process_document
    try:
        started = time.perf_counter()
        result = crawler.crawl(list(seeds))
        wall = time.perf_counter() - started
    finally:
        crawl_module.process_document = original
    return result, wall


def _strip_titles(result):
    """Checkpoint payload with document titles removed — the one field
    the pre-change pipeline never produced."""
    payload = result_to_dict(result)
    for bucket in ("relevant", "irrelevant"):
        for document in payload.get(bucket, []):
            if isinstance(document, dict) and "meta" in document:
                document["meta"].pop("title", None)
    return payload


def test_crawl_throughput(crawl_ctx, benchmark):
    seeds = crawl_ctx.seed_batch("second").urls
    crawl_ctx.pipeline.classifier.precompute()
    modes = [("legacy", 1, True, False), ("sequential", 1, False, False)]
    modes += [(f"workers{n}", n, False, False) for n in WORKER_COUNTS]
    modes += [("sequential+obs", 1, False, True)]
    modes += [(f"workers{n}+obs", n, False, True)
              for n in WORKER_COUNTS]
    runs = {}

    def sweep():
        for name, workers, legacy, observed in modes:
            runs[name] = _run_crawl(crawl_ctx, seeds, workers, legacy,
                                    observed)
        return runs

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    legacy_result, legacy_wall = runs["legacy"]
    sequential_result, _ = runs["sequential"]
    if not SMOKE:
        assert sequential_result.pages_fetched >= 2000

    # Parallelism never changes the crawl, only the wall-clock — and
    # neither does enabling metrics/tracing, at any worker count.
    sequential_payload = result_to_dict(sequential_result)
    for n in WORKER_COUNTS:
        assert result_to_dict(runs[f"workers{n}"][0]) == sequential_payload
    assert result_to_dict(runs["sequential+obs"][0]) == sequential_payload
    for n in WORKER_COUNTS:
        assert (result_to_dict(runs[f"workers{n}+obs"][0])
                == sequential_payload)
    # The pre-change pipeline computed the same crawl, minus titles.
    assert _strip_titles(legacy_result) == _strip_titles(sequential_result)
    # Per-stage page counters are deterministic; wall-time per stage is
    # observability only and differs per mode.
    assert sequential_result.stage_pages["repair"] > 0
    for n in WORKER_COUNTS:
        assert (runs[f"workers{n}"][0].stage_pages
                == sequential_result.stage_pages)

    results = {"config": {
        "max_pages": MAX_PAGES, "batch_size": BATCH_SIZE,
        "n_seeds": len(seeds), "web_seed": WEB_SEED, "smoke": SMOKE,
        "pages_fetched": sequential_result.pages_fetched,
    }, "modes": {}}
    rows = []
    for name, _workers, _legacy, _observed in modes:
        result, wall = runs[name]
        speedup = legacy_wall / wall
        results["modes"][name] = {
            "wall_seconds": round(wall, 3),
            "pages_per_sec": round(result.pages_fetched / wall, 1),
            "speedup_vs_legacy": round(speedup, 2),
            "stage_seconds": {stage: round(seconds, 3) for stage, seconds
                              in sorted(result.stage_seconds.items())},
            "stage_pages": dict(sorted(result.stage_pages.items())),
        }
        rows.append([name, f"{wall:.2f} s",
                     f"{result.pages_fetched / wall:,.0f}",
                     f"{speedup:.2f}x"])

    overheads = {
        base: round(runs[f"{base}+obs"][1] / runs[base][1], 3)
        for base in ["sequential"] + [f"workers{n}" for n in WORKER_COUNTS]}
    results["observability_overhead"] = overheads

    out_path = (Path(__file__).resolve().parent / "out" / "BENCH_crawl.json"
                if SMOKE else BENCH_PATH)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    lines = format_table(["mode", "wall", "pages/s", "vs legacy"], rows)
    lines.append("")
    lines.append("identical crawl output in every mode "
                 "(legacy modulo titles); per-stage breakdown in "
                 f"{out_path.name}")
    lines.append("observability overhead (metrics+trace on / off): "
                 + ", ".join(f"{base} {ratio:.3f}x"
                             for base, ratio in overheads.items()))
    write_report("crawl_throughput", "Crawl throughput — legacy vs "
                 "parse-once vs parallel workers", lines)

    if not SMOKE:
        assert results["modes"]["sequential"]["speedup_vs_legacy"] >= 2.0
        assert results["modes"]["workers4"]["speedup_vs_legacy"] >= 2.0
        # Observability must stay within the <= 5% overhead budget.
        assert overheads["sequential"] <= 1.05
        assert overheads["workers4"] <= 1.05
