"""Crawl throughput: pre-change pipeline vs parse-once vs parallel.

Times a ~2400-page focused crawl of the simulated web — the preserved
pre-change per-page pipeline (``legacy_pipeline``, four tokenizer
passes per page, reference language/Naïve-Bayes scoring), the current
sequential parse-once pipeline, the pipelined process-pool document
stage at 2 and 4 workers, and the host-sharded executor at 2 forked
shards — and asserts what the crawl loop guarantees:

* every pooled mode produces the *same crawl* (byte-identical results
  across worker counts; identical modulo the ``title`` metadata for
  the legacy pipeline, which never extracted titles).  The sharded
  mode runs its own deterministic superstep schedule (invariant in
  the shard count, not equal to the single-coordinator crawl — that
  equality is covered by tests/crawler/test_shard_crawl.py);
* the per-stage page counters are deterministic across pooled modes;
* enabling the observability subsystem (metrics + tracing,
  docs/observability.md) never changes the crawl output, and outside
  smoke mode costs <= 5% wall-clock;
* parallelism actually pays: every pooled mode must beat the
  sequential loop on pages/s (gated in smoke mode too — that is the
  regression the pipelined executor exists to prevent), and outside
  smoke mode the sharded run must beat the best pooled one.  Both
  gates are hardware-aware: on a single-core box the pool runs its
  inline plan and scale-out is held to a tax bound (>= 0.8x) instead
  of a strict win, since separate processes have nothing to overlap
  on.

Every mode runs ``ROUNDS`` times with the rounds interleaved, and the
reported wall is the best round — single-shot timings on a busy box
penalize whichever mode happens to collide with a noisy neighbour.

Writes repo-root ``BENCH_crawl.json`` — the committed evidence for the
speedup.  ``BENCH_SMOKE=1`` shrinks the crawl for CI, writes the
artifact under ``benchmarks/out/`` instead, and skips the wall-clock
ratio assertions that need the full-size run (smoke keeps only the
pooled-beats-sequential gate).
"""

import gc
import hashlib
import json
import os
import time
from pathlib import Path

import pytest
from legacy_pipeline import legacy_process_document
from reporting import format_table, write_report

import repro.crawler.crawl as crawl_module
from repro.core.experiment import default_context
from repro.crawler.checkpoint import result_to_dict
from repro.crawler.crawl import CrawlConfig, FocusedCrawler
from repro.crawler.shard import ShardCrawler, ShardedCrawl
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.web.server import SimulatedClock, SimulatedWeb

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
WEB_SEED = 29
BATCH_SIZE = 40
MAX_PAGES = 300 if SMOKE else 2400
WORKER_COUNTS = (2,) if SMOKE else (2, 4)
N_SHARDS = 2
ROUNDS = 3
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_crawl.json"


@pytest.fixture(scope="module")
def crawl_ctx(ctx):
    """A web large enough that the crawl fetches >= 2000 pages (smoke
    mode reuses the shared bench context instead)."""
    if SMOKE:
        return ctx
    return default_context(corpus_docs=30, n_training_docs=50,
                           crf_iterations=40, n_hosts=200,
                           crawl_pages=4000, seed_scale=15)


def _run_crawl(context, seeds, workers, legacy=False, observed=False):
    """One timed crawl; returns (result, wall_seconds).

    The legacy mode swaps the preserved pre-change document stage into
    the coordinator (sequential only — the old pipeline predates the
    worker pool).  ``observed`` attaches the full observability
    subsystem (metrics registry + simulated-clock tracer).  Web,
    frontier, and filter chain are rebuilt per run so no state leaks
    between modes.
    """
    web = SimulatedWeb(context.webgraph, seed=WEB_SEED)
    config = CrawlConfig(max_pages=MAX_PAGES, batch_size=BATCH_SIZE,
                         parallel_workers=workers)
    clock = SimulatedClock()
    metrics = MetricsRegistry() if observed else None
    tracer = Tracer(clock=lambda: clock.now) if observed else None
    crawler = FocusedCrawler(web, context.pipeline.classifier,
                             context.build_filter_chain(), config,
                             clock=clock, metrics=metrics, tracer=tracer)
    original = crawl_module.process_document
    if legacy:
        crawl_module.process_document = legacy_process_document
    try:
        started = time.perf_counter()
        result = crawler.crawl(list(seeds))
        wall = time.perf_counter() - started
    finally:
        crawl_module.process_document = original
    return result, wall


def _run_sharded(context, seeds):
    """One timed host-sharded crawl (forked coordinator processes)."""
    config = CrawlConfig(max_pages=MAX_PAGES, batch_size=BATCH_SIZE)

    def factory(shard_id):
        web = SimulatedWeb(context.webgraph, seed=WEB_SEED)
        return ShardCrawler(shard_id, N_SHARDS, web,
                            context.pipeline.classifier,
                            context.build_filter_chain(), config,
                            clock=SimulatedClock())

    driver = ShardedCrawl(factory, N_SHARDS, MAX_PAGES, processes=True)
    started = time.perf_counter()
    result = driver.run(list(seeds))
    wall = time.perf_counter() - started
    return result, wall


def _fingerprint(payload) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


def _record(result, wall):
    """Digest + small metadata for one run.

    Only fingerprints of the full checkpoint payload are retained —
    holding every mode's 2 400-document result alive would grow the
    coordinator heap round over round and tax the fork/GC cost of
    every later pooled mode, skewing the comparison.  ``titleless``
    drops document titles, the one field the pre-change pipeline never
    produced.
    """
    payload = result_to_dict(result)
    digest = _fingerprint(payload)
    for bucket in ("relevant", "irrelevant"):
        for document in payload.get(bucket, []):
            if isinstance(document, dict) and "meta" in document:
                document["meta"].pop("title", None)
    return {
        "wall": wall,
        "digest": digest,
        "titleless": _fingerprint(payload),
        "pages_fetched": result.pages_fetched,
        "stage_pages": dict(sorted(result.stage_pages.items())),
        "stage_seconds": {stage: round(seconds, 3) for stage, seconds
                          in sorted(result.stage_seconds.items())},
    }


def test_crawl_throughput(crawl_ctx, benchmark):
    seeds = crawl_ctx.seed_batch("second").urls
    crawl_ctx.pipeline.classifier.precompute()
    modes = [("legacy", 1, True, False), ("sequential", 1, False, False)]
    modes += [(f"workers{n}", n, False, False) for n in WORKER_COUNTS]
    modes += [(f"shards{N_SHARDS}", 0, False, False)]
    modes += [("sequential+obs", 1, False, True)]
    modes += [(f"workers{n}+obs", n, False, True)
              for n in WORKER_COUNTS]
    runs = {}

    def sweep():
        for _round in range(ROUNDS):
            for name, workers, legacy, observed in modes:
                if workers == 0:
                    result, wall = _run_sharded(crawl_ctx, seeds)
                else:
                    result, wall = _run_crawl(crawl_ctx, seeds, workers,
                                              legacy, observed)
                record = _record(result, wall)
                del result
                # Keep the heap flat between modes: a mode must not
                # inherit garbage (or GC debt) from the previous one.
                gc.collect()
                if name not in runs:
                    runs[name] = record
                else:
                    # Rounds must reproduce each other exactly.
                    assert record["digest"] == runs[name]["digest"]
                    runs[name]["wall"] = min(runs[name]["wall"],
                                             record["wall"])
        return runs

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    legacy = runs["legacy"]
    sequential = runs["sequential"]
    sharded = runs[f"shards{N_SHARDS}"]
    if not SMOKE:
        assert sequential["pages_fetched"] >= 2000
        # The sharded schedule explores the graph per-host, so its
        # reachable set (and final page count) differs from the
        # single-coordinator crawl — it must still be a full-size run.
        assert sharded["pages_fetched"] >= 2000
    else:
        assert sharded["pages_fetched"] >= MAX_PAGES

    # Parallelism never changes the crawl, only the wall-clock — and
    # neither does enabling metrics/tracing, at any worker count.
    for n in WORKER_COUNTS:
        assert runs[f"workers{n}"]["digest"] == sequential["digest"]
        assert runs[f"workers{n}+obs"]["digest"] == sequential["digest"]
    assert runs["sequential+obs"]["digest"] == sequential["digest"]
    # The pre-change pipeline computed the same crawl, minus titles.
    assert legacy["titleless"] == sequential["titleless"]
    # Per-stage page counters are deterministic; wall-time per stage is
    # observability only and differs per mode.
    assert sequential["stage_pages"]["repair"] > 0
    for n in WORKER_COUNTS:
        assert (runs[f"workers{n}"]["stage_pages"]
                == sequential["stage_pages"])

    sequential_rate = sequential["pages_fetched"] / sequential["wall"]
    results = {"config": {
        "max_pages": MAX_PAGES, "batch_size": BATCH_SIZE,
        "n_seeds": len(seeds), "web_seed": WEB_SEED, "smoke": SMOKE,
        "rounds": ROUNDS, "n_shards": N_SHARDS,
        "pages_fetched": sequential["pages_fetched"],
    }, "modes": {}}
    rows = []
    for name, _workers, _legacy, _observed in modes:
        record = runs[name]
        wall = record["wall"]
        rate = record["pages_fetched"] / wall
        results["modes"][name] = {
            "wall_seconds": round(wall, 3),
            "pages_per_sec": round(rate, 1),
            "speedup_vs_legacy": round(legacy["wall"] / wall, 2),
            "speedup_vs_sequential": round(rate / sequential_rate, 2),
            "stage_seconds": record["stage_seconds"],
            "stage_pages": record["stage_pages"],
        }
        rows.append([name, f"{wall:.2f} s", f"{rate:,.0f}",
                     f"{rate / sequential_rate:.2f}x"])

    overheads = {
        base: round(runs[f"{base}+obs"]["wall"] / runs[base]["wall"], 3)
        for base in ["sequential"] + [f"workers{n}" for n in WORKER_COUNTS]}
    results["observability_overhead"] = overheads

    out_path = (Path(__file__).resolve().parent / "out" / "BENCH_crawl.json"
                if SMOKE else BENCH_PATH)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    lines = format_table(["mode", "wall", "pages/s", "vs sequential"], rows)
    lines.append("")
    lines.append("identical crawl output in every pooled mode (legacy "
                 "modulo titles; shards run their own deterministic "
                 "schedule); per-stage breakdown in "
                 f"{out_path.name}")
    lines.append("observability overhead (metrics+trace on / off): "
                 + ", ".join(f"{base} {ratio:.3f}x"
                             for base, ratio in overheads.items()))
    write_report("crawl_throughput", "Crawl throughput — legacy vs "
                 "parse-once vs pooled workers vs shards", lines)

    # The gate this benchmark exists for: a pooled mode slower than
    # the sequential loop means the parallel executor is a net loss.
    # On a single-core box the pool cannot overlap anything and its
    # fixed startup cost dominates a smoke-sized crawl, so the strict
    # gate applies where a pool can actually run side by side with the
    # coordinator; on one core it degrades to a tax bound (the pooled
    # run may trail by at most the startup cost, never collapse).
    floor = 1.0 if (os.cpu_count() or 1) >= 2 else 0.8
    for n in WORKER_COUNTS:
        pooled = results["modes"][f"workers{n}"]
        assert pooled["speedup_vs_sequential"] >= floor, (
            f"workers{n} is slower than sequential "
            f"({pooled['pages_per_sec']} vs "
            f"{results['modes']['sequential']['pages_per_sec']} pages/s)")
    if not SMOKE:
        assert results["modes"]["sequential"]["speedup_vs_legacy"] >= 2.0
        assert results["modes"]["workers4"]["speedup_vs_legacy"] >= 2.0
        # Scale-out must beat scale-up where there are cores to scale
        # onto: the sharded run carries its whole pipeline (fetch
        # included) in parallel, not just the document stage.  On one
        # core the shard coordinators are genuinely separate processes
        # (nothing to overlap, fork + barrier tax is unavoidable) while
        # the pooled executor switches to its inline plan, so scale-out
        # is held to the same tax bound as the pool instead.
        best_pooled = max(
            results["modes"][f"workers{n}"]["pages_per_sec"]
            for n in WORKER_COUNTS)
        sharded = results["modes"][f"shards{N_SHARDS}"]
        if (os.cpu_count() or 1) >= 2:
            assert sharded["pages_per_sec"] > best_pooled
        else:
            assert sharded["pages_per_sec"] >= 0.8 * best_pooled
        # Observability must stay within the <= 5% overhead budget.
        # Each ratio divides two independently noisy walls (the obs-off
        # run is not re-timed alongside the obs-on one), so a single
        # mode can read a few points high or low on a shared box; the
        # budget is asserted on the mean across modes, with a hard
        # per-mode bound that still catches a real regression.
        assert sum(overheads.values()) / len(overheads) <= 1.05
        for ratio in overheads.values():
            assert ratio <= 1.10
