"""The pre-optimisation per-page document pipeline, preserved verbatim.

This module snapshots the crawler's document stage exactly as it stood
before the single-parse refactor and the DOM/segmenter/URL
optimisations: the HTML tokenizer with its per-call unescapes and
per-tag helper calls, the recursive serializer, the recursive
boilerplate segmenter with unconditional flushes, uncached URL
resolution, and a document path that repairs once, re-repairs inside
boilerplate extraction, and re-parses for outlink extraction — four
tokenizer passes per page, and no title extraction.

It is the *measured baseline* of ``bench_crawl_throughput.py``: the
benchmark swaps :func:`legacy_process_document` into the crawl loop to
time the pre-change pipeline on the same simulated web, and asserts it
produces byte-identical crawl results (modulo the ``title`` metadata
the old path never extracted).  Model-level scoring goes through the
``*_reference`` oracles kept in the package
(``LanguageIdentifier.detect_reference``,
``NaiveBayesClassifier.log_odds_reference``), which are the pre-change
implementations by construction.

Nothing here is exported for production use — the live pipeline lives
in :mod:`repro.crawler.parallel`.
"""

from __future__ import annotations

import math
import re
import time
from dataclasses import dataclass, field
from html import unescape
from typing import Iterator
from urllib.parse import urljoin, urlsplit, urlunsplit

from repro.crawler.parallel import DocumentOutcome, ProcessingContext
from repro.html.boilerplate import TextBlock

# -- DOM (pre-optimisation tokenizer and serializer) --------------------------

VOID_ELEMENTS = frozenset({
    "area", "base", "br", "col", "embed", "hr", "img", "input",
    "link", "meta", "param", "source", "track", "wbr",
})
RAW_TEXT_ELEMENTS = frozenset({"script", "style"})
BLOCK_ELEMENTS = frozenset({
    "address", "article", "aside", "blockquote", "body", "center",
    "dd", "div", "dl", "dt", "fieldset", "figure", "footer", "form",
    "h1", "h2", "h3", "h4", "h5", "h6", "header", "hr", "html", "li",
    "main", "nav", "ol", "p", "pre", "section", "table", "td", "th",
    "tr", "ul",
})

_TAG_RE = re.compile(
    r"<(?P<close>/)?(?P<name>[a-zA-Z][a-zA-Z0-9-]*)(?P<attrs>[^<>]*?)"
    r"(?P<self>/)?>",
    re.DOTALL)
_ATTR_RE = re.compile(
    r"""(?P<name>[a-zA-Z][a-zA-Z0-9_:.-]*)\s*(?:=\s*(?P<value>"[^"]*"|'[^']*'|[^\s"'>]+))?""")
_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_DOCTYPE_RE = re.compile(r"<!DOCTYPE[^>]*>", re.IGNORECASE)


@dataclass
class HtmlNode:
    tag: str
    attrs: dict[str, str] = field(default_factory=dict)
    children: list["HtmlNode"] = field(default_factory=list)
    text: str = ""
    parent: "HtmlNode | None" = field(default=None, repr=False, compare=False)

    @property
    def is_text(self) -> bool:
        return self.tag == "#text"

    def append(self, node: "HtmlNode") -> None:
        node.parent = self
        self.children.append(node)

    def find_all(self, tag: str) -> list["HtmlNode"]:
        found = []
        for node in self.walk():
            if node.tag == tag:
                found.append(node)
        return found

    def walk(self) -> Iterator["HtmlNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def get_text(self, separator: str = " ") -> str:
        parts = [n.text for n in self.walk() if n.is_text and n.text.strip()]
        return separator.join(p.strip() for p in parts)


def parse_attrs(raw: str) -> dict[str, str]:
    attrs: dict[str, str] = {}
    for match in _ATTR_RE.finditer(raw):
        name = match.group("name").lower()
        value = match.group("value") or ""
        if value[:1] in ("'", '"') and value[-1:] == value[:1]:
            value = value[1:-1]
        if name not in attrs:
            attrs[name] = unescape(value)
    return attrs


def parse_html(html: str) -> HtmlNode:
    html = _COMMENT_RE.sub("", html)
    html = _DOCTYPE_RE.sub("", html)
    root = HtmlNode("#root")
    stack = [root]
    position = 0
    raw_until: str | None = None
    while position < len(html):
        if raw_until is not None:
            closer = html.lower().find(f"</{raw_until}", position)
            if closer < 0:
                closer = len(html)
            text = html[position:closer]
            if text:
                stack[-1].append(HtmlNode("#text", text=text))
            end = html.find(">", closer)
            position = (end + 1) if end >= 0 else len(html)
            if stack[-1].tag == raw_until and len(stack) > 1:
                stack.pop()
            raw_until = None
            continue
        lt = html.find("<", position)
        if lt < 0:
            _append_text(stack[-1], html[position:])
            break
        if lt > position:
            _append_text(stack[-1], html[position:lt])
        match = _TAG_RE.match(html, lt)
        if match is None:
            _append_text(stack[-1], "<")
            position = lt + 1
            continue
        position = match.end()
        name = match.group("name").lower()
        if match.group("close"):
            _close_tag(stack, name)
            continue
        node = HtmlNode(name, attrs=parse_attrs(match.group("attrs") or ""))
        _implicit_close(stack, name)
        stack[-1].append(node)
        if name in RAW_TEXT_ELEMENTS:
            stack.append(node)
            raw_until = name
        elif name not in VOID_ELEMENTS and not match.group("self"):
            stack.append(node)
    return root


def _append_text(parent: HtmlNode, raw: str) -> None:
    text = unescape(raw)
    if text.strip():
        parent.append(HtmlNode("#text", text=text))


def _close_tag(stack: list[HtmlNode], name: str) -> None:
    for depth in range(len(stack) - 1, 0, -1):
        if stack[depth].tag == name:
            del stack[depth:]
            return


def _implicit_close(stack: list[HtmlNode], name: str) -> None:
    auto_close = {
        "p": {"p"},
        "li": {"li"},
        "tr": {"tr", "td", "th"},
        "td": {"td", "th"},
        "th": {"td", "th"},
        "option": {"option"},
    }
    closes = auto_close.get(name)
    if not closes:
        return
    if len(stack) > 1 and stack[-1].tag in closes:
        stack.pop()


def serialize(node: HtmlNode) -> str:
    if node.is_text:
        return _escape_text(node.text)
    inner = "".join(serialize(child) for child in node.children)
    if node.tag == "#root":
        return inner
    attrs = "".join(f' {k}="{_escape_attr(v)}"' for k, v in node.attrs.items())
    if node.tag in VOID_ELEMENTS:
        return f"<{node.tag}{attrs}>"
    return f"<{node.tag}{attrs}>{inner}</{node.tag}>"


def _escape_text(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attr(value: str) -> str:
    return _escape_text(value).replace('"', "&quot;")


# -- markup repair ------------------------------------------------------------

_UNQUOTED_ATTR_RE = re.compile(
    r"<[a-zA-Z][^<>]*?\s[a-zA-Z-]+=(?![\"'])[^\s<>\"']+")
_RAW_AMP_RE = re.compile(r"&(?![a-zA-Z]{2,8};|#\d{1,6};|#x[0-9a-fA-F]{1,6};)")
_DEPRECATED_RE = re.compile(r"<(font|center|marquee|blink)\b", re.IGNORECASE)


@dataclass
class RepairReport:
    issues: list[str] = field(default_factory=list)
    transcodable: bool = True


def detect_markup_issues(html: str) -> list[str]:
    issues: list[str] = []
    if _UNQUOTED_ATTR_RE.search(html):
        issues.append("unquoted_attr")
    if _RAW_AMP_RE.search(html):
        issues.append("raw_ampersand")
    if _DEPRECATED_RE.search(html):
        issues.append("deprecated_tag")
    if not re.search(r"</html\s*>\s*$", html.strip(), re.IGNORECASE):
        issues.append("truncated")
    opens = len(re.findall(r"<(?:div|p|li|ul|span|td|tr)\b", html))
    closes = len(re.findall(r"</(?:div|p|li|ul|span|td|tr)\s*>", html))
    if opens != closes:
        issues.append("unbalanced_tags")
    return issues


def repair_html(html: str) -> tuple[str, RepairReport]:
    """Repair markup; returns (well-formed HTML, report)."""
    report = RepairReport(issues=detect_markup_issues(html))
    try:
        tree = parse_html(html)
    except RecursionError:
        report.transcodable = False
        report.issues.append("untranscodable")
        return "<html><body></body></html>", report
    n_elements = sum(1 for node in tree.walk() if not node.is_text)
    if n_elements <= 1 and len(html) > 200:
        report.transcodable = False
        report.issues.append("untranscodable")
        return "<html><body></body></html>", report
    return serialize(tree), report


# -- URL resolution (uncached) ------------------------------------------------

def normalize(url: str) -> str:
    scheme, netloc, path, query, _fragment = urlsplit(url)
    scheme = scheme.lower()
    netloc = netloc.lower()
    if netloc.endswith(":80") and scheme == "http":
        netloc = netloc[:-3]
    if netloc.endswith(":443") and scheme == "https":
        netloc = netloc[:-4]
    if path == "":
        path = "/"
    return urlunsplit((scheme, netloc, path, query, ""))


def resolve(base: str, link: str) -> str:
    return normalize(urljoin(base, link))


# -- outlink extraction (re-parses the repaired page) -------------------------

def extract_links(html: str, base_url: str) -> list[str]:
    tree = parse_html(html)
    base = normalize(base_url)
    links: list[str] = []
    seen: set[str] = set()
    for anchor in tree.find_all("a"):
        href = anchor.attrs.get("href", "").strip()
        if not href or href.startswith("#"):
            continue
        lowered = href.lower()
        if lowered.startswith(("javascript:", "mailto:", "tel:")):
            continue
        resolved = resolve(base, href)
        if not resolved.startswith(("http://", "https://")):
            continue
        if resolved == base or resolved in seen:
            continue
        seen.add(resolved)
        links.append(resolved)
    return links


# -- boilerplate segmentation (recursive walk, re-repairs its input) ----------

class _Segmenter:
    def __init__(self) -> None:
        self.blocks: list[TextBlock] = []
        self._words: list[str] = []
        self._anchor_words = 0
        self._path: list[str] = []
        self._anchor_depth = 0

    def walk(self, node: HtmlNode) -> None:
        if node.is_text:
            words = node.text.split()
            self._words.extend(words)
            if self._anchor_depth > 0:
                self._anchor_words += len(words)
            return
        is_block = node.tag in BLOCK_ELEMENTS
        if is_block:
            self.flush()
            self._path.append(node.tag)
        if node.tag == "a":
            self._anchor_depth += 1
        if node.tag not in ("script", "style"):
            for child in node.children:
                self.walk(child)
        if node.tag == "a":
            self._anchor_depth -= 1
        if is_block:
            self.flush()
            self._path.pop()

    def flush(self) -> None:
        if not self._words:
            self._anchor_words = 0
            return
        text = " ".join(self._words)
        path = ">".join(self._path)
        tag = self._path[-1] if self._path else ""
        self.blocks.append(TextBlock(
            text=text, n_words=len(self._words),
            n_anchor_words=self._anchor_words, tag_path=path,
            is_heading=tag.startswith("h") and len(tag) == 2,
            in_list=any(t in ("ul", "ol", "li", "table") for t in self._path)))
        self._words = []
        self._anchor_words = 0


def extract_net_text(html: str, detector) -> str:
    """The old ``BoilerplateDetector.extract``: always re-repairs, then
    segments with the recursive walk and classifies with the (shared,
    unchanged) NumWordsRules detector."""
    repaired, _report = repair_html(html)
    segmenter = _Segmenter()
    segmenter.walk(parse_html(repaired))
    segmenter.flush()
    return detector.join_content(detector.classify(segmenter.blocks))


# -- the pre-change per-page document stage -----------------------------------

def legacy_process_document(url: str, body: str, content_type: str,
                            context: ProcessingContext) -> DocumentOutcome:
    """Drop-in replacement for ``repro.crawler.parallel
    .process_document`` running the pre-change pipeline: repair, then
    re-repair + parse inside boilerplate extraction, then a third
    parse for outlinks, reference-implementation language detection
    and Naïve Bayes scoring, and no title extraction."""
    timings: dict[str, float] = {}
    started = time.perf_counter()
    mime_ok = context.filters.decide_payload(body, url, content_type)
    timings["filters"] = time.perf_counter() - started
    if not mime_ok:
        return DocumentOutcome(mime_ok=False, stage_seconds=timings)

    started = time.perf_counter()
    repaired, report = repair_html(body)
    timings["repair"] = time.perf_counter() - started
    if not report.transcodable:
        return DocumentOutcome(mime_ok=True, stage_seconds=timings)

    started = time.perf_counter()
    net_text = extract_net_text(repaired, context.boilerplate)
    timings["boilerplate"] = time.perf_counter() - started

    started = time.perf_counter()
    outlinks = extract_links(repaired, url)
    timings["parse"] = time.perf_counter() - started

    started = time.perf_counter()
    language = context.filters.language
    if language.identifier.detect_reference(net_text) != language.target:
        rejected_by = "language"
    elif not context.filters.length.accept(net_text):
        rejected_by = "length"
    else:
        rejected_by = ""
    timings["filters"] += time.perf_counter() - started
    outcome = DocumentOutcome(
        mime_ok=True, transcodable=True, net_text=net_text, title="",
        outlinks=outlinks, rejected_by=rejected_by, stage_seconds=timings)
    if rejected_by:
        return outcome

    started = time.perf_counter()
    odds = context.classifier.log_odds_reference(net_text)
    if odds > 500:
        probability = 1.0
    elif odds < -500:
        probability = 0.0
    else:
        probability = 1.0 / (1.0 + math.exp(-odds))
    outcome.relevant = probability >= context.classifier.decision_threshold
    timings["classify"] = time.perf_counter() - started
    return outcome
