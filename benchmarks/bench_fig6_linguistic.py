"""Fig. 6 + Section 4.3.1: linguistic properties of the four corpora —
document lengths, sentence lengths, negation, pronouns, parentheses —
with Mann-Whitney-Wilcoxon significance tests."""

from reporting import format_table, write_report

from repro.core.analysis import compare_corpora
from repro.nlp.stats import mean

ORDER = ("relevant", "irrelevant", "medline", "pmc")


def test_fig6_linguistic_properties(ctx, stats, benchmark):
    benchmark.pedantic(lambda: compare_corpora(stats["relevant"],
                                               stats["medline"]),
                       rounds=1, iterations=1)
    rows = []
    for name in ORDER:
        corpus = stats[name]
        rows.append([
            name,
            f"{corpus.mean_doc_chars:,.0f}",
            f"{corpus.mean_sentence_tokens:.1f}",
            f"{mean(corpus.negation_per_1000_chars()):.2f}",
            f"{mean(corpus.coreference_pronouns_per_doc()):.1f}",
            f"{mean(corpus.parentheses_per_doc):.1f}",
        ])
    lines = format_table(
        ["corpus", "mean doc chars", "mean sent tokens",
         "negation/1000 chars", "coref pronouns/doc", "parens/doc"],
        rows)
    lines.append("")
    pair_lines = []
    for a, b in (("relevant", "irrelevant"), ("relevant", "medline"),
                 ("relevant", "pmc"), ("medline", "pmc")):
        p_values = compare_corpora(stats[a], stats[b])
        pair_lines.append(
            f"MWW p-values {a} vs {b}: "
            + ", ".join(f"{k}={v:.2g}" for k, v in p_values.items()))
    lines.extend(pair_lines)
    lines.append("")
    lines.append("paper Fig 6: all pairwise differences significant at "
                 "P < 0.01; doc length relevant > pmc > irrelevant > "
                 "medline; sentence length pmc longest, abstracts short; "
                 "negation pmc/irrelevant > relevant > medline")
    write_report("fig6_linguistic", "Fig. 6 — linguistic properties",
                 lines)

    # Fig 6a ordering (document length).
    doc_means = {name: stats[name].mean_doc_chars for name in ORDER}
    assert doc_means["relevant"] > doc_means["pmc"] \
        > doc_means["irrelevant"] > doc_means["medline"]
    # Fig 6b ordering (sentence length).
    sent_means = {name: stats[name].mean_sentence_tokens for name in ORDER}
    assert sent_means["pmc"] > sent_means["relevant"] \
        > sent_means["medline"] > sent_means["irrelevant"]
    # Fig 6c ordering (negation, relative to document length).
    neg = {name: mean(stats[name].negation_per_1000_chars())
           for name in ORDER}
    assert neg["relevant"] > neg["medline"]
    assert neg["irrelevant"] > neg["relevant"]
    # Significance: big pairs significant at P < 0.01.
    p_values = compare_corpora(stats["relevant"], stats["medline"])
    assert p_values["doc_length"] < 0.01
    p_values = compare_corpora(stats["relevant"], stats["irrelevant"])
    assert p_values["doc_length"] < 0.01


def test_pronoun_and_parenthesis_incidence(stats, benchmark):
    """Section 4.3.1 (data not shown in the paper's figures): PMC has
    the highest incidence of coreference pronouns and parentheses;
    parentheses lowest in irrelevant documents."""
    benchmark.pedantic(
        lambda: {name: mean(stats[name].parentheses_per_doc)
                 for name in ORDER}, rounds=1, iterations=1)
    paren_per_char = {
        name: sum(stats[name].parentheses_per_doc)
        / max(1, sum(stats[name].doc_lengths)) for name in ORDER}
    pron_per_char = {
        name: sum(stats[name].coreference_pronouns_per_doc())
        / max(1, sum(stats[name].doc_lengths)) for name in ORDER}
    lines = format_table(
        ["corpus", "coref pronouns /1000 chars", "parens /1000 chars"],
        [[name, f"{pron_per_char[name] * 1000:.2f}",
          f"{paren_per_char[name] * 1000:.2f}"] for name in ORDER])
    lines.append("")
    lines.append("paper: coreference pronoun incidence significantly "
                 "lower in web texts than PMC; parentheses highest in "
                 "PMC, lowest in irrelevant documents")
    write_report("fig6_pronouns_parens",
                 "Section 4.3.1 — pronouns and parentheses", lines)
    assert pron_per_char["pmc"] > pron_per_char["relevant"]
    assert pron_per_char["pmc"] > pron_per_char["irrelevant"]
    assert paren_per_char["pmc"] > paren_per_char["relevant"]
    assert paren_per_char["relevant"] > paren_per_char["irrelevant"]
