"""Fig. 5: scale-out — fixed 20 GB sample, varying DoP.

Entity flow: infeasible below DoP 4 (excessive runtimes), capped at
DoP 28 by dictionary-tagger memory, plateaus past DoP 16 because the
20-minute gene-dictionary load is a hard lower bound.  Linguistic
flow: scales across the whole DoP range, plateau past DoP ~12.
"""

from reporting import format_table, write_report

from repro.dataflow.cluster import (
    DEFAULT_COSTS, ENTITY_OPS, LINGUISTIC_OPS, PREPROCESSING_OPS,
    SimulatedCluster,
)

DOPS = [1, 2, 4, 8, 12, 16, 20, 24, 28, 56, 84, 140, 156]
LING = PREPROCESSING_OPS + LINGUISTIC_OPS
ENTITY = PREPROCESSING_OPS + ENTITY_OPS


def test_fig5_scale_out(benchmark):
    cluster = SimulatedCluster()
    ling_reports = benchmark.pedantic(
        lambda: cluster.scale_out(LING, 20.0, DOPS), rounds=1,
        iterations=1)
    entity_reports = cluster.scale_out(ENTITY, 20.0, DOPS)
    rows = []
    for dop, ling, entity in zip(DOPS, ling_reports, entity_reports):
        entity_cell = (f"{entity.seconds:.0f} s" if entity.feasible
                       else entity.reason.split("(")[0][:46])
        rows.append([dop, f"{ling.seconds:.0f} s", entity_cell])
    lines = format_table(["DoP", "linguistic flow", "entity flow"], rows)
    lines.append("")
    lines.append("paper Fig 5: entity flow not executable below DoP 4 "
                 "(excessive runtimes) nor above DoP 28 (dictionary "
                 "taggers need 6-20 GB per worker on 24 GB nodes); "
                 "scale-out satisfactory until DoP 16 (entity, -72 %) "
                 "and DoP 12 (linguistic, -95 %), marginal beyond")
    write_report("fig5_scaleout", "Fig. 5 — scale-out", lines)

    by_dop = dict(zip(DOPS, entity_reports))
    # Who wins / where the cliffs are:
    assert not by_dop[1].feasible and not by_dop[2].feasible
    assert by_dop[4].feasible
    assert not by_dop[56].feasible  # memory cap at 28
    # Decrease bands.
    ling_by_dop = dict(zip(DOPS, ling_reports))
    ling_drop = 1 - ling_by_dop[12].seconds / ling_by_dop[1].seconds
    entity_drop = 1 - by_dop[16].seconds / by_dop[4].seconds
    assert ling_drop > 0.85          # paper: up to 95 %
    assert 0.4 < entity_drop < 0.9   # paper: up to 72 %
    # Startup lower bound: gene dictionary load dominates the plateau.
    assert by_dop[28].seconds > \
        DEFAULT_COSTS["dict_gene_tagger"].startup_seconds


def test_fig5_executor_parallel_speedup(ctx, benchmark):
    """Sanity on the *real* executor: partitioned execution with
    threads preserves results (speedups are GIL-bound, as startup
    costs bound them on the paper's cluster)."""
    from repro.core.flows import build_linguistic_flow
    from repro.dataflow.executor import LocalExecutor

    documents = ctx.corpus_documents("relevant")[:8]
    plan = build_linguistic_flow(ctx.pipeline, web_input=False)
    sequential, _ = LocalExecutor().execute(
        plan, [d.copy_shallow() for d in documents])
    threaded, _ = benchmark.pedantic(
        lambda: LocalExecutor(dop=4, use_threads=True).execute(
            plan, [d.copy_shallow() for d in documents]),
        rounds=1, iterations=1)
    assert len(threaded["linguistics"]) == len(sequential["linguistics"])
