"""Table 1 + Section 2.2: seed keyword inventories and the two seed
rounds (small round starves the frontier; large round sustains a much
bigger crawl)."""

from reporting import format_table, write_report

from repro.crawler.seeds import PAPER_TERM_COUNTS


def test_table1_seed_categories(ctx, benchmark):
    generator_batch = benchmark.pedantic(
        lambda: ctx.seed_batch("second"), rounds=1, iterations=1)
    batch = generator_batch
    rows = []
    for category, n_terms, examples in batch.table1_rows():
        paper_full, paper_subset = PAPER_TERM_COUNTS[category]
        rows.append([category, paper_full, paper_subset, n_terms,
                     examples])
    lines = format_table(
        ["category", "paper#terms", "paper#round1", "repro#terms",
         "examples"], rows)
    lines.append("")
    lines.append(f"paper: 15,000 queries -> 485,462 seeds (round 2)")
    lines.append(f"repro: {batch.queries_issued} queries -> "
                 f"{batch.n_seeds} seeds (round 2, scale 1/15)")
    write_report("table1_seeds", "Table 1 — seed keyword categories",
                 lines)
    # Shape: gene inventory biggest, general smallest (as in Table 1).
    counts = {category: n for category, n, _e in
              [(r[0], r[3], None) for r in rows]}
    assert counts["gene"] >= counts["drug"]
    assert counts["general"] <= counts["disease"]
    assert batch.n_seeds > 100


def test_seed_round_comparison(ctx, benchmark):
    """Round 1 vs round 2: the larger inventory sustains a larger
    crawl before the frontier empties (Section 2.2)."""
    first = ctx.seed_batch("first")
    second = ctx.seed_batch("second")
    crawl_first = benchmark.pedantic(
        lambda: ctx.run_crawl(max_pages=4000, seeds=first.urls),
        rounds=1, iterations=1)
    crawl_second = ctx.run_crawl(max_pages=4000, seeds=second.urls)
    lines = format_table(
        ["round", "seeds", "fetched", "relevant", "stop reason"],
        [["1 (subset terms)", first.n_seeds, crawl_first.pages_fetched,
          len(crawl_first.relevant), crawl_first.stop_reason],
         ["2 (full terms)", second.n_seeds, crawl_second.pages_fetched,
          len(crawl_second.relevant), crawl_second.stop_reason]])
    lines.append("")
    lines.append("paper: round 1 (45,227 seeds) terminated quickly on an "
                 "emptied CrawlDB; round 2 (485,462 seeds) sustained the "
                 "1 TB crawl")
    write_report("seed_rounds", "Section 2.2 — seed rounds", lines)
    assert second.n_seeds > first.n_seeds
    assert crawl_second.pages_fetched >= crawl_first.pages_fetched
    assert len(crawl_second.relevant) >= len(crawl_first.relevant)
