"""Section 4.1: relevance-classifier quality — 10-fold CV on the
training corpus and the 200-page manually-judged crawl sample."""

import functools

from reporting import format_table, write_report

from repro.classify.evaluation import cross_validate, mean_precision_recall
from repro.classify.naive_bayes import NaiveBayesClassifier
from repro.corpora.goldstandard import build_classifier_gold


def test_classifier_cross_validation(ctx, benchmark):
    gold = build_classifier_gold(ctx.vocabulary, 200)
    factory = functools.partial(NaiveBayesClassifier,
                                decision_threshold=0.9)
    reports = benchmark.pedantic(
        lambda: cross_validate(factory, gold, folds=10),
        rounds=1, iterations=1)
    precision, recall = mean_precision_recall(reports)
    lines = format_table(
        ["evaluation", "paper P", "paper R", "repro P", "repro R"],
        [["10-fold CV (training corpus)", "98 %", "83 %",
          f"{precision:.0%}", f"{recall:.0%}"]])
    write_report("classifier_cv",
                 "Section 4.1 — classifier cross-validation", lines)
    assert precision > 0.85
    assert 0.6 < recall <= 1.0
    assert precision > recall


def test_classifier_on_crawl_sample(ctx, benchmark):
    """The 200-page manual check: sample crawled pages whose true
    topic the web graph knows, compare with classifier output."""
    result = benchmark.pedantic(ctx.crawl, rounds=1, iterations=1)
    graph = ctx.webgraph
    sample = (result.relevant + result.irrelevant)[:200]
    tp = fp = fn = tn = 0
    for document in sample:
        url = document.doc_id.split("?ref=r")[0]
        page = graph.page(url)
        if page is None:
            continue
        truth = page.biomedical
        predicted = document.meta["relevant"]
        if predicted and truth:
            tp += 1
        elif predicted and not truth:
            fp += 1
        elif truth:
            fn += 1
        else:
            tn += 1
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    lines = format_table(
        ["evaluation", "paper P", "paper R", "repro P", "repro R"],
        [[f"crawl sample (n={tp+fp+fn+tn})", "94 %", "90 %",
          f"{precision:.0%}", f"{recall:.0%}"]])
    lines.append("")
    lines.append("paper: false positives sit at the fringe of the "
                 "domain (body-builder chemistry, medical devices)")
    write_report("classifier_sample",
                 "Section 4.1 — classifier on crawl sample", lines)
    assert precision > 0.7
    assert recall > 0.5
