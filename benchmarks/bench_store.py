"""Entity-store ingest, aggregation, persistence, and query timings.

The store's determinism contract is cheap to state (sets + order-free
aggregation) but must stay cheap to *run*: this bench times each
stage of the store lifecycle — ingesting analyzed documents, the
snapshot aggregation (union-find + fact grouping), the atomic save,
the typed load, and corroboration-ranked queries — over a bench-scale
analyzed corpus, asserting the byte-identity invariant (forward vs
reversed ingest order, save → load → save) on every round.

Artifacts: repo-root ``BENCH_store.json`` and
``out/entity_store.txt``.  ``BENCH_SMOKE=1`` shrinks the corpus and
skips the throughput gate (CI timings are noise); the byte-identity
assertions always hold.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from reporting import format_table, write_report

from repro.store import EntityStore, QueryEngine, ingest_documents

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_DOCS = 10 if SMOKE else 30
ROUNDS = 3
N_QUERIES = 50

#: Ingest must not dominate extraction: analyzed documents should
#: enter the store at hundreds per second even on one core.
MIN_INGEST_DOCS_PER_S = 50.0

REPO_ROOT = Path(__file__).resolve().parent.parent


def _analyzed_documents(ctx):
    documents = []
    for index, document in enumerate(
            ctx.corpus_documents("relevant")[:N_DOCS]):
        copy = document.copy_shallow()
        copy.meta["url"] = f"http://host{index % 7}.example.org/p{index}"
        ctx.pipeline.analyze(copy)
        documents.append(copy)
    return documents


def test_store_lifecycle(ctx, tmp_path):
    documents = _analyzed_documents(ctx)
    vocabulary = ctx.vocabulary

    timings = {"ingest": [], "snapshot": [], "save": [], "load": [],
               "query": []}
    reference_bytes = None
    n_facts = n_entities = 0

    for round_ in range(ROUNDS):
        store = EntityStore(vocabulary=vocabulary)
        started = time.perf_counter()
        ingest_documents(store, documents)
        timings["ingest"].append(time.perf_counter() - started)

        started = time.perf_counter()
        snapshot = store.snapshot()
        timings["snapshot"].append(time.perf_counter() - started)
        n_facts, n_entities = snapshot.n_facts, snapshot.n_entities

        target = tmp_path / f"round{round_}.json"
        started = time.perf_counter()
        store.save(target)
        timings["save"].append(time.perf_counter() - started)

        started = time.perf_counter()
        loaded = EntityStore.load(target)
        timings["load"].append(time.perf_counter() - started)

        # Invariants, every round: reversed ingest order and the
        # save -> load -> save round trip are byte-identical.
        reversed_store = EntityStore(vocabulary=vocabulary)
        ingest_documents(reversed_store, list(reversed(documents)))
        assert (reversed_store.save(tmp_path / "rev.json").read_bytes()
                == target.read_bytes())
        assert (loaded.save(tmp_path / "reload.json").read_bytes()
                == target.read_bytes())
        if reference_bytes is None:
            reference_bytes = target.read_bytes()
        else:
            assert target.read_bytes() == reference_bytes

        engine = QueryEngine(loaded)
        aliases = [e["name"] for e in engine.entities()][:N_QUERIES]
        started = time.perf_counter()
        for alias in aliases:
            engine.facts(alias=alias, limit=10)
        timings["query"].append(
            (time.perf_counter() - started) / max(1, len(aliases)))

    best = {stage: min(values) for stage, values in timings.items()}
    ingest_rate = len(documents) / best["ingest"]

    rows = [
        ["ingest", f"{best['ingest'] * 1e3:.1f} ms",
         f"{ingest_rate:.0f} docs/s"],
        ["snapshot", f"{best['snapshot'] * 1e3:.1f} ms",
         f"{n_facts} facts / {n_entities} entities"],
        ["save", f"{best['save'] * 1e3:.1f} ms", "atomic + fsync"],
        ["load", f"{best['load'] * 1e3:.1f} ms", "typed validation"],
        ["query", f"{best['query'] * 1e6:.0f} us",
         "per alias lookup, limit 10"],
    ]
    lines = format_table(["stage", "best-of-3", "note"], rows)
    lines.append("")
    lines.append(f"{len(documents)} analyzed documents; byte-identity "
                 f"asserted each round (reversed order, reload)")
    write_report("entity_store", "Entity store lifecycle", lines)

    payload = {
        "n_documents": len(documents),
        "n_facts": n_facts,
        "n_entities": n_entities,
        "seconds": {stage: round(value, 6)
                    for stage, value in best.items()},
        "ingest_docs_per_s": round(ingest_rate, 1),
        "smoke": SMOKE,
    }
    (REPO_ROOT / "BENCH_store.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")

    if not SMOKE:
        assert ingest_rate >= MIN_INGEST_DOCS_PER_S, (
            f"store ingest {ingest_rate:.0f} docs/s under the "
            f"{MIN_INGEST_DOCS_PER_S} docs/s floor")
