"""Serve-path benchmark: request coalescing vs batch-size-1 dispatch.

Starts real ``ExtractionServer`` instances (forked worker, warm
annotation cache — the serving steady state) and drives them with the
pipelined closed-loop load generator at several offered-load levels,
batched (coalescer on, size/deadline rule) vs a batch-size-1 baseline
(same server, ``max_batch=1`` — every request pays its own dispatch
wakeup and worker IPC round-trip).

Asserted guarantees:

* every run's response digest is identical — batching, offered load,
  and worker dispatch must not change a single response byte;
* the coalescer actually coalesces (multi-request batches > 0) while
  the baseline never does;
* the headline gate: at saturating offered load, batched throughput
  >= 2x the batch-size-1 baseline (the amortized dispatch+IPC win);
* at moderate offered load, batched p99 latency stays under the
  configured batching deadline plus a fixed service allowance — the
  deadline rule bounds what a request can pay for batching.

Each (variant, load) cell runs ``REPEATS`` times interleaved and the
reported cell is the best repeat.  Writes repo-root
``BENCH_serve.json``.  ``BENCH_SMOKE=1`` shrinks the workload for CI,
writes the artifact under ``benchmarks/out/`` instead, and relaxes
the throughput gate to "batched beats baseline" (the strict 2x needs
the full-size run to clear timer noise).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest
from reporting import format_table, write_report

from repro.serve.loadgen import LoadGenerator, generate_workload
from repro.serve.server import ExtractionServer, ServeConfig
from repro.serve.session import ExtractionSession

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_REQUESTS = 300 if SMOKE else 1500
REPEATS = 2 if SMOKE else 3
WORKERS = 1
MAX_DELAY_MS = 8.0
#: Hard cap on coalesced batch size.  Saturating offered load (2x
#: this) keeps batches closing on size, not on the deadline — a
#: saturated server must never idle-wait for stragglers.
MAX_BATCH = 16
#: Offered-load levels: (connections, pipelined window per connection).
LOADS = {"light": (1, 1), "moderate": (2, 4), "saturating": (2, 16)}
#: Headline gate at saturating load (smoke: batched must merely win).
THROUGHPUT_GATE = 1.05 if SMOKE else 2.0
#: Latency gate at moderate load: batching may delay a request by at
#: most the deadline, plus a service allowance for the batch in front
#: of it and scheduler noise on a shared 1-core box.
P99_BOUND_MS = MAX_DELAY_MS + 42.0
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


@pytest.fixture(scope="module")
def serve_setup(ctx, tmp_path_factory):
    """Trained pipeline + pre-populated annotation cache + workload."""
    cache_dir = str(tmp_path_factory.mktemp("serve-anno-cache"))
    workload = generate_workload(N_REQUESTS, seed=11)
    warmer = ExtractionSession(ctx.pipeline, annotation_cache=cache_dir)
    warmer.run_batch(workload)
    warmer.close()
    return ctx.pipeline, cache_dir, workload


def run_once(pipeline, cache_dir, workload, max_batch: int,
             connections: int, window: int) -> tuple[dict, dict]:
    """One server lifecycle: start, warm drive, measured drive, stop."""
    session = ExtractionSession(pipeline, annotation_cache=cache_dir)
    config = ServeConfig(workers=WORKERS, max_batch=max_batch,
                         max_delay_ms=MAX_DELAY_MS, queue_limit=256)
    server = ExtractionServer(session, config).start()
    try:
        host, port = server.address
        LoadGenerator(host, port, concurrency=connections,
                      window=window).run(workload[:len(workload) // 4])
        generator = LoadGenerator(host, port, concurrency=connections,
                                  window=window).run(workload)
        stats = server.engine.stats()
    finally:
        server.shutdown()
    summary = generator.summary()
    assert summary["ok"] == len(workload), summary["errors"]
    return summary, stats


def test_serve_throughput_and_latency(serve_setup):
    pipeline, cache_dir, workload = serve_setup
    cells: dict[tuple[str, str], dict] = {}
    digests = set()
    coalesced = {}
    # Interleave repeats so timer noise hits variants evenly.
    for _ in range(REPEATS):
        for load_name, (connections, window) in LOADS.items():
            for variant, max_batch in (("batched", MAX_BATCH),
                                       ("batch1", 1)):
                summary, stats = run_once(
                    pipeline, cache_dir, workload, max_batch,
                    connections, window)
                digests.add(summary.pop("digest"))
                key = (variant, load_name)
                best = cells.get(key)
                if best is None or summary["throughput_rps"] > \
                        best["throughput_rps"]:
                    cells[key] = summary
                coalesced[key] = max(
                    coalesced.get(key, 0),
                    stats["multi_request_batches"])

    # Byte-identity: every variant, load level, and repeat produced
    # the exact same response set.
    assert len(digests) == 1, digests
    # The coalescer coalesces; the baseline never can.
    for load_name in ("moderate", "saturating"):
        assert coalesced[("batched", load_name)] > 0
    assert all(coalesced[("batch1", load)] == 0 for load in LOADS)

    batched = cells[("batched", "saturating")]
    baseline = cells[("batch1", "saturating")]
    ratio = batched["throughput_rps"] / baseline["throughput_rps"]
    moderate_p99 = cells[("batched", "moderate")]["p99_ms"]

    rows = []
    for load_name in LOADS:
        for variant in ("batched", "batch1"):
            cell = cells[(variant, load_name)]
            rows.append([load_name, variant,
                         cell["concurrency"] * cell["window"],
                         f"{cell['throughput_rps']:.0f}",
                         f"{cell['p50_ms']:.2f}",
                         f"{cell['p99_ms']:.2f}"])
    report_lines = format_table(
        ["load", "variant", "in-flight", "req/s", "p50 ms", "p99 ms"],
        rows)
    report_lines.append(
        f"saturating throughput ratio (batched/batch1): {ratio:.2f}x")
    write_report("serve_throughput",
                 "Batched serving vs batch-size-1 dispatch",
                 report_lines)

    payload = {
        "config": {
            "requests": N_REQUESTS, "workers": WORKERS,
            "max_batch": MAX_BATCH,
            "max_delay_ms": MAX_DELAY_MS, "repeats": REPEATS,
            "loads": {name: {"connections": c, "window": w}
                      for name, (c, w) in LOADS.items()},
            "smoke": SMOKE,
        },
        "cells": {f"{variant}/{load}": cell
                  for (variant, load), cell in sorted(cells.items())},
        "multi_request_batches": {
            f"{variant}/{load}": count
            for (variant, load), count in sorted(coalesced.items())},
        "saturating_throughput_ratio": round(ratio, 3),
        "moderate_p99_ms": moderate_p99,
        "p99_bound_ms": P99_BOUND_MS,
        "response_digest": digests.pop(),
    }
    out_path = (Path(__file__).parent / "out" / "BENCH_serve.json"
                if SMOKE else BENCH_PATH)
    out_path.parent.mkdir(exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n")

    assert ratio >= THROUGHPUT_GATE, (
        f"batched serving must be >= {THROUGHPUT_GATE}x batch-size-1 "
        f"at saturating load, got {ratio:.2f}x")
    assert moderate_p99 <= P99_BOUND_MS, (
        f"batched p99 at moderate load ({moderate_p99:.1f} ms) must "
        f"stay under the deadline bound ({P99_BOUND_MS:.1f} ms)")
