#!/usr/bin/env python
"""Aggregate benchmarks/out/*.txt into one experiment digest.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/make_report.py [output.md]

Produces a single markdown file with every regenerated table/figure in
paper order, ready to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

#: Paper order; reports not listed here are appended alphabetically.
ORDER = [
    ("Section 2.2 / Table 1", ["table1_seeds", "seed_rounds"]),
    ("Section 4.1 — crawl", ["crawl_quality", "link_topology"]),
    ("Section 4.1 — classifier", ["classifier_cv", "classifier_sample"]),
    ("Section 4.1 — boilerplate", ["boilerplate_gold",
                                   "boilerplate_crawl"]),
    ("Table 2", ["table2_pagerank"]),
    ("Table 3", ["table3_corpora"]),
    ("Fig. 3 / Section 4.2 runtimes", [
        "fig3a_pos_runtime", "fig3b_ner_runtime", "fig3b_quadratic",
        "component_shares", "dictionary_scaling", "tool_quality"]),
    ("Fig. 4", ["fig4_scaleup"]),
    ("Fig. 5", ["fig5_scaleout"]),
    ("Section 4.2 war story", ["warstory", "annotation_blowup"]),
    ("Fig. 6 / Section 4.3.1", ["fig6_linguistic",
                                "fig6_pronouns_parens"]),
    ("Table 4", ["table4_entities"]),
    ("Fig. 7", ["fig7_incidence", "fig7_tla_filter", "fig7_tla_flood"]),
    ("Fig. 8 / Section 4.3.2", ["fig8_overlap", "jsd_table"]),
    ("Ablations", ["ablation_threshold", "ablation_follow_irrelevant",
                   "ablation_optimizer", "ablation_fuzzy_dict",
                   "ablation_chunks", "ablation_online_learning"]),
    ("Section 5 extensions", ["ext_consolidated", "ext_two_phase",
                              "ext_sentence_limit", "mime_detection",
                              "classifier_comparison"]),
]


def build_digest() -> str:
    if not OUT_DIR.is_dir():
        raise SystemExit("benchmarks/out/ not found — run "
                         "`pytest benchmarks/ --benchmark-only` first")
    available = {path.stem: path for path in OUT_DIR.glob("*.txt")}
    used: set[str] = set()
    sections: list[str] = [
        "# Experiment digest",
        "",
        "Generated from `benchmarks/out/` by `benchmarks/make_report.py`.",
        "",
    ]
    for heading, names in ORDER:
        present = [name for name in names if name in available]
        if not present:
            continue
        sections.append(f"## {heading}\n")
        for name in present:
            used.add(name)
            sections.append("```")
            sections.append(available[name].read_text().rstrip())
            sections.append("```\n")
    leftovers = sorted(set(available) - used)
    if leftovers:
        sections.append("## Other reports\n")
        for name in leftovers:
            sections.append("```")
            sections.append(available[name].read_text().rstrip())
            sections.append("```\n")
    return "\n".join(sections) + "\n"


def main(argv: list[str]) -> int:
    target = Path(argv[1]) if len(argv) > 1 \
        else OUT_DIR.parent / "EXPERIMENT_DIGEST.md"
    target.write_text(build_digest())
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
