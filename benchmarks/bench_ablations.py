"""Ablations over the design choices the paper discusses.

1. Classifier precision/recall trade-off in focused crawling (Sect. 5):
   sweep the decision threshold, observe harvest rate vs. yield.
2. Following links of irrelevant pages for n steps (Sect. 2.2/5).
3. SOFA optimization on/off for the Fig. 2 flow.
4. Fuzzy vs. exact dictionary matching.
5. Chunk-size sweep for the war-story mitigation.
"""

import functools
import time

from reporting import format_table, write_report

from repro.classify.naive_bayes import NaiveBayesClassifier
from repro.corpora.goldstandard import build_classifier_gold
from repro.crawler.crawl import CrawlConfig, FocusedCrawler
from repro.dataflow.cluster import SimulatedCluster, split_flow_plan
from repro.dataflow.executor import LocalExecutor
from repro.dataflow.optimizer import SofaOptimizer


def test_ablation_classifier_threshold(ctx, benchmark):
    """High-precision vs high-recall crawling: stricter thresholds
    raise harvest precision but shrink the yield — the trade-off the
    paper concludes was 'not as effective as we thought'."""
    gold = build_classifier_gold(ctx.vocabulary, 100)
    seeds = ctx.seed_batch("second").urls
    rows = []
    yields = {}
    for threshold in (0.1, 0.5, 0.9, 0.99):
        classifier = NaiveBayesClassifier(
            decision_threshold=threshold).fit(gold)
        crawler = FocusedCrawler(ctx.web, classifier,
                                 ctx.build_filter_chain(),
                                 CrawlConfig(max_pages=600))
        run = functools.partial(crawler.crawl, seeds)
        result = (benchmark.pedantic(run, rounds=1, iterations=1)
                  if threshold == 0.5 else run())
        graph = ctx.webgraph
        correct = total = 0
        for document in result.relevant:
            page = graph.page(document.doc_id.split("?ref=r")[0])
            if page is not None:
                total += 1
                correct += page.biomedical
        precision = correct / total if total else 0.0
        yields[threshold] = len(result.relevant)
        rows.append([threshold, len(result.relevant),
                     f"{result.harvest_rate:.0%}", f"{precision:.0%}",
                     result.stop_reason])
    lines = format_table(
        ["threshold", "relevant yield", "harvest rate",
         "corpus precision", "stop"], rows)
    lines.append("")
    lines.append("paper Sect. 5: the high-precision strategy bounded the "
                 "crawl by an emptied frontier; tuning toward recall "
                 "with later re-classification is the open alternative")
    write_report("ablation_threshold",
                 "Ablation — classifier threshold vs crawl", lines)
    assert yields[0.1] >= yields[0.99]


def test_ablation_follow_irrelevant(ctx, benchmark):
    """n-step tolerance of irrelevant pages: more coverage, more cost."""
    seeds = ctx.seed_batch("first").urls
    rows = []
    fetched = {}
    relevant = {}
    for steps in (0, 1, 2):
        run = functools.partial(ctx.run_crawl, max_pages=2500,
                                seeds=seeds,
                                follow_irrelevant_steps=steps)
        result = (benchmark.pedantic(run, rounds=1, iterations=1)
                  if steps == 0 else run())
        fetched[steps] = result.pages_fetched
        relevant[steps] = len(result.relevant)
        rows.append([steps, result.pages_fetched, len(result.relevant),
                     f"{result.harvest_rate:.0%}",
                     f"{result.clock_seconds:.0f} s",
                     result.stop_reason])
    lines = format_table(
        ["irrelevant steps", "fetched", "relevant yield", "harvest",
         "crawl clock", "stop"], rows)
    lines.append("")
    lines.append("paper Sect. 2.2: following irrelevant pages for n "
                 "steps grows the crawl but 'crawling time will "
                 "significantly increase'")
    write_report("ablation_follow_irrelevant",
                 "Ablation — follow-irrelevant steps", lines)
    assert fetched[2] >= fetched[0]
    assert relevant[2] >= relevant[0]


def test_ablation_optimizer(ctx, benchmark):
    """SOFA reordering on/off on the Fig. 2 flow: the optimized plan
    filters earlier and must never be slower by more than noise."""
    from repro.core.flows import build_fig2_flow
    from repro.web.htmlgen import PageRenderer

    renderer = PageRenderer(seed=55)
    documents = []
    for index, document in enumerate(
            ctx.corpus_documents("relevant")[:8]):
        url = f"http://opt{index}.example.org/a.html"
        document.raw = renderer.render(url, "t", document.text, [])
        document.meta.update({"url": url, "content_type": "text/html"})
        documents.append(document)

    def run(optimize: bool):
        plan = build_fig2_flow(ctx.pipeline)
        swaps = 0
        if optimize:
            swaps = SofaOptimizer().optimize(plan).n_swaps
        started = time.perf_counter()
        outputs, _ = LocalExecutor().execute(
            plan, [d.copy_shallow() for d in documents])
        return time.perf_counter() - started, swaps, outputs

    baseline_seconds, _swaps, baseline = benchmark.pedantic(
        lambda: run(False), rounds=1, iterations=1)
    optimized_seconds, n_swaps, optimized = run(True)
    lines = [
        f"unoptimized plan: {baseline_seconds:.2f} s",
        f"optimized plan:   {optimized_seconds:.2f} s "
        f"({n_swaps} operator swaps)",
        f"entity records identical: "
        f"{len(baseline['entities']) == len(optimized['entities'])}",
    ]
    write_report("ablation_optimizer", "Ablation — SOFA optimization",
                 lines)
    assert n_swaps > 0
    assert len(baseline["entities"]) == len(optimized["entities"])


def test_ablation_fuzzy_dictionary(ctx, benchmark):
    """Fuzzy term expansion vs exact matching: fuzzy recovers surface
    variants at a modest automaton-size cost."""
    from repro.ner.dictionary import EntityDictionary

    entries = ctx.vocabulary.diseases
    fuzzy = benchmark.pedantic(
        lambda: EntityDictionary("disease", entries, fuzzy=True),
        rounds=1, iterations=1)
    exact = EntityDictionary("disease", entries, fuzzy=False)
    gold_docs = [g for g in ctx.corpora()["relevant"][:15]]
    found = {"fuzzy": 0, "exact": 0}
    total = 0
    for gold in gold_docs:
        spans = {(g.mention.start, g.mention.end) for g in gold.entities
                 if g.mention.entity_type == "disease" and g.in_dictionary}
        total += len(spans)
        for label, dictionary in (("fuzzy", fuzzy), ("exact", exact)):
            document = gold.document.copy_shallow()
            hits = {(m.start, m.end)
                    for m in dictionary.annotate(document)}
            found[label] += len(spans & hits)
    lines = [
        f"dictionary entries: {len(entries)}",
        f"fuzzy patterns: {fuzzy.n_patterns} "
        f"({fuzzy.approx_memory_bytes() // 1024} KB)",
        f"exact patterns: {exact.n_patterns} "
        f"({exact.approx_memory_bytes() // 1024} KB)",
        f"recall on dictionary-known gold mentions: "
        f"fuzzy {found['fuzzy']}/{total}, exact {found['exact']}/{total}",
    ]
    write_report("ablation_fuzzy_dict",
                 "Ablation — fuzzy dictionary expansion", lines)
    assert found["fuzzy"] >= found["exact"]
    assert fuzzy.n_patterns > exact.n_patterns


def test_ablation_chunk_size(benchmark):
    """War-story mitigation: sweep the chunk size.  Small chunks pay
    the 20-minute dictionary load repeatedly; whole-input runs crash."""
    cluster = SimulatedCluster()
    ops = split_flow_plan()["drug"]
    dop = cluster.max_feasible_dop(ops)
    rows = []
    outcomes = {}
    for chunk_gb in (10, 50, 200, None):
        run = functools.partial(
            cluster.run_flow, ops, 1024.0, dop, colocated=False,
            enforce_runtime_limit=False, chunk_gb=chunk_gb)
        report = (benchmark.pedantic(run, rounds=1, iterations=1)
                  if chunk_gb == 50 else run())
        outcomes[chunk_gb] = report
        rows.append([chunk_gb or "whole input",
                     f"{report.seconds / 3600:.1f} h",
                     "CRASHES" if report.crashed else "ok"])
    lines = format_table(["chunk size (GB)", "runtime", "outcome"], rows)
    lines.append("")
    lines.append("the paper settled on 50 GB chunks")
    write_report("ablation_chunks", "Ablation — chunk size", lines)
    assert outcomes[None].crashed
    assert not outcomes[50].crashed
    assert outcomes[10].seconds > outcomes[50].seconds
