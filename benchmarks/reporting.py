"""Report writing for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures and
records a paper-vs-measured report under ``benchmarks/out/`` — the raw
material for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def write_report(name: str, title: str, lines: list[str]) -> Path:
    """Write (and echo) one experiment report."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    content = "\n".join([f"== {title} ==", *lines, ""])
    path.write_text(content)
    print(f"\n{content}")
    return path


def format_table(headers: list[str], rows: list[list[object]],
                 widths: list[int] | None = None) -> list[str]:
    """Fixed-width text table."""
    if widths is None:
        widths = []
        for column, header in enumerate(headers):
            cells = [str(row[column]) for row in rows]
            widths.append(max(len(header), *(len(c) for c in cells))
                          if cells else len(header))
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w)
                               for cell, w in zip(row, widths)))
    return lines
