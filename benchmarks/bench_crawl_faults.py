"""Robustness benchmark: relevant-page yield vs injected fault rate.

The paper's 80+-day crawl ran on an unreliable substrate (dead hosts,
rate limiters, half-closed connections).  This benchmark injects
per-fetch fault rates into the simulated web and measures how the
hardened crawl loop (retries + backoff + circuit breakers) degrades:
yield should fall *gracefully* with the fault rate, never crash, and
report where the losses went.

``BENCH_SMOKE=1`` shrinks the page budget for CI smoke runs.
"""

import os

from reporting import format_table, write_report

from repro.crawler.crawl import CrawlConfig, FocusedCrawler
from repro.web.faults import FaultConfig
from repro.web.server import SimulatedWeb

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
MAX_PAGES = 150 if SMOKE else 600
FAULT_RATES = [0.0, 0.1, 0.2, 0.4]


def _crawl_at(ctx, rate):
    faults = (None if rate == 0.0
              else FaultConfig.uniform(rate, seed=31))
    web = SimulatedWeb(ctx.webgraph, seed=31, faults=faults)
    crawler = FocusedCrawler(web, ctx.pipeline.classifier,
                             ctx.build_filter_chain(),
                             CrawlConfig(max_pages=MAX_PAGES))
    return crawler.crawl(ctx.seed_batch("second").urls)


def test_yield_vs_fault_rate(ctx, benchmark):
    results = {}

    def sweep():
        for rate in FAULT_RATES:
            results[rate] = _crawl_at(ctx, rate)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for rate, result in results.items():
        reasons = ", ".join(
            f"{reason}:{count}" for reason, count
            in sorted(result.failure_reasons.items())) or "-"
        rows.append([
            f"{rate:.0%}", result.pages_fetched, len(result.relevant),
            f"{result.harvest_rate:.0%}", result.fetch_failures,
            result.retries, result.hosts_quarantined, reasons,
        ])
    lines = format_table(
        ["fault rate", "fetched", "relevant", "harvest", "failures",
         "retries", "quarantined", "failure mix"], rows)
    write_report("crawl_faults",
                 "Robustness — yield vs injected fault rate", lines)

    clean, worst = results[0.0], results[FAULT_RATES[-1]]
    # Faults cost yield, but the crawl must degrade, not collapse.
    assert len(clean.relevant) >= len(worst.relevant)
    assert len(worst.relevant) > 0
    # The hardened loop surfaces every loss with a reason code.
    assert worst.fetch_failures > 0
    assert sum(worst.failure_reasons.values()) >= worst.fetch_failures
    assert worst.retries > 0
