"""Section 5 extensions implemented and measured.

1. **Consolidated crawling + IE** — the paper's closing future-work
   item: feed dictionary-NER evidence into the crawl-time relevance
   decision and compare against the two-stage baseline.
2. **Two-phase (recall-then-precision) crawling** — the alternative
   strategy Section 5 proposes for the emptied-frontier problem.
3. **Sentence-length limit** — the Section 4.2 work-around ("finding a
   good threshold, trading runtime robustness for information yield,
   will be non-trivial"): sweep the limit and measure both sides.
"""

import functools

from reporting import format_table, write_report

from repro.crawler.consolidated import (
    EntityAwareClassifier, TwoPhaseClassifier,
)
from repro.crawler.crawl import CrawlConfig, FocusedCrawler


def _corpus_precision(ctx, documents):
    graph = ctx.webgraph
    correct = total = 0
    for document in documents:
        page = graph.page(document.doc_id.split("?ref=r")[0])
        if page is not None:
            total += 1
            correct += page.biomedical
    return correct / total if total else 0.0


def test_consolidated_crawling(ctx, benchmark):
    """IE-informed relevance vs the plain two-stage classifier."""
    seeds = ctx.seed_batch("second").urls
    baseline_crawler = FocusedCrawler(
        ctx.web, ctx.pipeline.classifier, ctx.build_filter_chain(),
        CrawlConfig(max_pages=900))
    baseline = baseline_crawler.crawl(seeds)
    consolidated_classifier = EntityAwareClassifier(
        ctx.pipeline.classifier, ctx.pipeline.dictionary_taggers,
        entity_weight=2.0)
    consolidated_crawler = FocusedCrawler(
        ctx.web, consolidated_classifier, ctx.build_filter_chain(),
        CrawlConfig(max_pages=900))
    consolidated = benchmark.pedantic(
        functools.partial(consolidated_crawler.crawl, seeds),
        rounds=1, iterations=1)
    rows = [
        ["two-stage (paper)", len(baseline.relevant),
         f"{baseline.harvest_rate:.0%}",
         f"{_corpus_precision(ctx, baseline.relevant):.0%}",
         baseline.stop_reason],
        ["consolidated (IE-informed)", len(consolidated.relevant),
         f"{consolidated.harvest_rate:.0%}",
         f"{_corpus_precision(ctx, consolidated.relevant):.0%}",
         consolidated.stop_reason],
    ]
    lines = format_table(
        ["strategy", "relevant yield", "harvest", "corpus precision",
         "stop"], rows)
    lines.append("")
    lines.append("paper Sect. 5: 'the result of the IE pipeline could "
                 "actually be a valuable input for the classifier "
                 "during a crawl' — implemented here as a log-odds "
                 "boost from dictionary-NER densities")
    write_report("ext_consolidated",
                 "Extension — consolidated crawling + IE", lines)
    # Entity evidence rescues fringe pages: yield must not shrink.
    assert len(consolidated.relevant) >= len(baseline.relevant)
    assert _corpus_precision(ctx, consolidated.relevant) > 0.6


def test_two_phase_crawling(ctx, benchmark):
    """Recall-geared crawl + strict re-classification vs one-shot
    precision-geared crawl."""
    seeds = ctx.seed_batch("second").urls
    strict_crawler = FocusedCrawler(
        ctx.web, ctx.pipeline.classifier, ctx.build_filter_chain(),
        CrawlConfig(max_pages=1500))
    strict = strict_crawler.crawl(seeds)
    two_phase = TwoPhaseClassifier(ctx.pipeline.classifier,
                                   crawl_threshold=0.2,
                                   corpus_threshold=0.9)
    recall_crawler = FocusedCrawler(
        ctx.web, two_phase, ctx.build_filter_chain(),
        CrawlConfig(max_pages=1500))
    phase1 = benchmark.pedantic(
        functools.partial(recall_crawler.crawl, seeds),
        rounds=1, iterations=1)
    kept, demoted = two_phase.reclassify(phase1.relevant)
    rows = [
        ["one-shot precision (paper)", strict.pages_fetched,
         len(strict.relevant), "-",
         f"{_corpus_precision(ctx, strict.relevant):.0%}"],
        ["phase 1 (recall-geared)", phase1.pages_fetched,
         len(phase1.relevant), "-",
         f"{_corpus_precision(ctx, phase1.relevant):.0%}"],
        ["phase 2 (re-classified)", "-", len(kept), len(demoted),
         f"{_corpus_precision(ctx, kept):.0%}"],
    ]
    lines = format_table(
        ["strategy", "fetched", "relevant", "demoted",
         "corpus precision"], rows)
    lines.append("")
    lines.append("paper Sect. 5: 'one could tune the classifier towards "
                 "more recall during crawling, and classify each "
                 "crawled text later a second time with a model geared "
                 "towards high precision'")
    write_report("ext_two_phase", "Extension — two-phase crawling",
                 lines)
    # The recall-geared crawl explores at least as far...
    assert phase1.pages_fetched >= strict.pages_fetched
    # ...and re-classification restores precision.
    assert _corpus_precision(ctx, kept) >= \
        _corpus_precision(ctx, phase1.relevant)


def test_sentence_length_limit_tradeoff(ctx, benchmark):
    """Hard sentence-length caps: robustness (no tagger crashes) vs
    information yield (split pseudo-sentences distort statistics)."""
    import dataclasses

    from repro.corpora.profiles import RELEVANT
    from repro.corpora.textgen import DocumentGenerator
    from repro.nlp.pos_hmm import TaggerCrash
    from repro.nlp.sentence import SentenceSplitter
    from repro.nlp.tokenize import tokenize

    pathological = dataclasses.replace(RELEVANT)
    generator = DocumentGenerator(ctx.vocabulary, pathological,
                                  seed=31, pathological_fraction=0.3)
    documents = [generator.document(i).document for i in range(12)]
    tagger = ctx.pipeline.pos_tagger
    rows = []
    outcomes = {}
    for limit in (None, 2000, 500, 120):
        splitter = SentenceSplitter(max_sentence_chars=limit)
        crashes = sentences = tagged_tokens = 0
        for document in documents:
            for sentence in splitter.split(document.text):
                sentences += 1
                tokens = tokenize(sentence.text)
                try:
                    tagger.tag([t.text for t in tokens])
                    tagged_tokens += len(tokens)
                except TaggerCrash:
                    crashes += 1
        outcomes[limit] = (crashes, tagged_tokens, sentences)
        rows.append([limit or "unlimited", sentences, crashes,
                     tagged_tokens])
    benchmark.pedantic(
        lambda: SentenceSplitter(max_sentence_chars=500).split(
            documents[0].text), rounds=3, iterations=1)
    lines = format_table(
        ["max sentence chars", "sentences", "tagger crashes",
         "tokens tagged"], rows)
    lines.append("")
    lines.append("paper Sect. 4.2: 'one work-around would be to "
                 "introduce an upper limit on sentence length, but "
                 "finding a good threshold, trading runtime robustness "
                 "for information yield, will be non-trivial'")
    write_report("ext_sentence_limit",
                 "Extension — sentence-length limit trade-off", lines)
    unlimited_crashes = outcomes[None][0]
    capped_crashes = outcomes[500][0]
    assert unlimited_crashes > 0       # run-on pages crash the tagger
    assert capped_crashes < unlimited_crashes
    assert outcomes[500][1] > outcomes[None][1]  # more tokens tagged
