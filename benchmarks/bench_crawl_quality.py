"""Section 4.1: focused-crawl operational metrics — harvest rate,
download rate, filter attrition, link topology."""

from reporting import format_table, write_report


def test_crawl_quality(ctx, benchmark):
    result = benchmark.pedantic(ctx.crawl, rounds=1, iterations=1)
    attrition = result.filter_attrition
    rows = [
        ["harvest rate", "38 %", f"{result.harvest_rate:.0%}"],
        ["download rate (docs/s)", "3-4", f"{result.download_rate:.1f}"],
        ["MIME filter rejection", "9.5 %", f"{attrition['mime']:.1%}"],
        ["language filter rejection", "14 %",
         f"{attrition['language']:.1%}"],
        ["length filter rejection", "17 %", f"{attrition['length']:.1%}"],
        ["pages fetched", "~21 M", f"{result.pages_fetched}"],
        ["relevant docs", "4.2 M (373 GB)", f"{len(result.relevant)}"],
        ["irrelevant docs", "17.7 M (607 GB)",
         f"{len(result.irrelevant)}"],
    ]
    lines = format_table(["metric", "paper", "repro"], rows)
    write_report("crawl_quality", "Section 4.1 — crawl quality", lines)
    assert 0.2 < result.harvest_rate < 0.7
    assert 2.0 < result.download_rate < 7.0
    assert 0.02 < attrition["mime"] < 0.25
    assert 0.05 < attrition["language"] < 0.30
    assert 0.05 < attrition["length"] < 0.35


def test_biomedical_sites_weakly_linked(ctx, benchmark):
    """Section 4.1 / 2.2: biomedical pages link mostly within-host."""
    result = benchmark.pedantic(ctx.crawl, rounds=1, iterations=1)
    graph = ctx.webgraph

    def is_bio(url):
        page = graph.page(url.split("?ref=r")[0])
        return bool(page and page.biomedical)

    def is_general(url):
        page = graph.page(url.split("?ref=r")[0])
        return bool(page and not page.biomedical)

    bio_nav = result.linkdb.navigational_fraction(is_bio)
    general_nav = result.linkdb.navigational_fraction(is_general)
    lines = [
        f"navigational (same-host) link fraction, biomedical pages: "
        f"{bio_nav:.0%}",
        f"navigational link fraction, general pages: {general_nav:.0%}",
        "paper: 'biomedical sites generally are only weakly linked; "
        "most often, all outgoing links from a page were navigational'",
    ]
    write_report("link_topology", "Section 4.1 — link topology", lines)
    assert bio_nav > general_nav
    assert bio_nav > 0.5
