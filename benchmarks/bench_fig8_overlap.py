"""Fig. 8 + Section 4.3.2: overlap of distinct entity names across the
four corpora, and Jensen-Shannon divergences between their name
distributions."""

from reporting import format_table, write_report

from repro.core.analysis import entity_overlap, jsd_between


def test_fig8_annotation_overlap(stats, benchmark):
    ordered = [stats[name] for name in ("relevant", "irrelevant",
                                        "medline", "pmc")]
    lines = []
    overlaps = {}
    for entity_type in ("disease", "drug", "gene"):
        regions = benchmark.pedantic(
            lambda et=entity_type: entity_overlap(ordered, et),
            rounds=1, iterations=1) if entity_type == "disease" else \
            entity_overlap(ordered, entity_type)
        overlaps[entity_type] = regions
        lines.append(f"--- {entity_type} (dictionary annotations) ---")
        rows = [[" + ".join(members), f"{percent:.1f} %"]
                for members, percent in sorted(regions.items(),
                                               key=lambda kv: -kv[1])]
        lines.extend(format_table(["corpora sharing the names", "share"],
                                  rows))
        lines.append("")
    lines.append("paper Fig 8: relevant∩irrelevant overlap small "
                 "(~15 % disease, ~30 % drug, ~17 % gene); "
                 "relevant-vs-literature overlap considerably larger; "
                 "thousands of names appear ONLY in relevant web "
                 "documents")
    write_report("fig8_overlap", "Fig. 8 — annotation overlap", lines)

    for entity_type, regions in overlaps.items():
        exclusive_relevant = regions.get(("relevant",), 0.0)
        # The punchline: web-only names exist for every type.
        assert exclusive_relevant > 0.0, entity_type
        # And the literature contributes names the web lacks.
        literature_only = sum(
            percent for members, percent in regions.items()
            if "relevant" not in members and "irrelevant" not in members)
        assert literature_only > 0.0, entity_type


def test_jsd_shape(stats, benchmark):
    """Section 4.3.2: JSD(rel, irrel) > JSD(rel, medline) and
    JSD(rel, pmc) — relevant documents are more similar to the
    biomedical literature than to the rejected crawl."""
    relevant = stats["relevant"]
    irrelevant = stats["irrelevant"]
    medline = stats["medline"]
    pmc = stats["pmc"]
    rows = []
    shape_holds = 0
    checks = 0
    for entity_type in ("disease", "drug", "gene"):
        rel_irrel = benchmark.pedantic(
            lambda et=entity_type: jsd_between(relevant, irrelevant, et),
            rounds=1, iterations=1) if entity_type == "disease" else \
            jsd_between(relevant, irrelevant, entity_type)
        rel_medl = jsd_between(relevant, medline, entity_type)
        rel_pmc = jsd_between(relevant, pmc, entity_type)
        rows.append([entity_type, f"{rel_irrel:.3f}", f"{rel_medl:.3f}",
                     f"{rel_pmc:.3f}"])
        checks += 2
        shape_holds += (rel_irrel >= rel_medl - 0.05)
        shape_holds += (rel_irrel >= rel_pmc - 0.05)
    lines = format_table(
        ["entity type", "JSD(rel,irrel)", "JSD(rel,medline)",
         "JSD(rel,pmc)"], rows)
    lines.append("")
    lines.append("paper: 0.45<=JSD(rel,irrel)<=0.65 exceeds "
                 "0.29<=JSD(rel,medl)<=0.36 and "
                 "0.17<=JSD(rel,pmc)<=0.34 for every entity type")
    write_report("jsd_table", "Section 4.3.2 — Jensen-Shannon "
                 "divergences", lines)
    # At reproduction scale the ordering must hold for a majority of
    # the type/pair combinations (sampling noise allows one miss).
    assert shape_holds >= checks - 2
