"""Section 4.2 "Processing the entire crawl — a war story".

Reproduces the full failure cascade and its mitigations:

1. complete colocated flow: OpenNLP 1.4/1.5 class-loader conflict;
2. without the conflicting tagger: 60 GB/worker > 24 GB nodes;
3. split flows (one linguistic + one per entity class): feasible, but
   the 1.6 TB of derived annotations over HDFS congests the 1 GbE
   network — timeout crashes;
4. chunking the input into 50 GB pieces: completes, slower;
5. gene recognition moved to the 1 TB-RAM server with 40 threads.
"""

from reporting import format_table, write_report

from repro.dataflow.cluster import (
    ClusterSpec, SimulatedCluster, complete_flow, split_flow_plan,
)

INPUT_GB = 1024.0  # the 1 TB crawl


def test_warstory_cascade(benchmark):
    cluster = SimulatedCluster()
    rows = []

    step1 = benchmark.pedantic(
        lambda: cluster.run_flow(complete_flow(), INPUT_GB, 28,
                                 colocated=True),
        rounds=1, iterations=1)
    rows.append(["1. complete flow, colocated", "FAILS",
                 step1.reason[:58]])
    assert not step1.feasible and "version conflict" in step1.reason

    no_disease = [op for op in complete_flow()
                  if op != "ml_disease_tagger"]
    step2 = cluster.run_flow(no_disease, INPUT_GB, 28, colocated=True)
    rows.append(["2. minus disease-ML, colocated", "FAILS",
                 step2.reason[:58]])
    assert not step2.feasible and "GB per worker" in step2.reason

    crash_count = 0
    for name, ops in split_flow_plan().items():
        dop = cluster.max_feasible_dop(ops)
        report = cluster.run_flow(ops, INPUT_GB, dop or 1,
                                  colocated=False,
                                  enforce_runtime_limit=False)
        status = (f"{report.seconds / 3600:.1f} h"
                  + (", CRASHES (network timeouts)" if report.crashed
                     else ""))
        rows.append([f"3. split flow '{name}' @ DoP {dop}",
                     "runs" if not report.crashed else "CRASHES", status])
        crash_count += report.crashed
    assert crash_count >= 1, "expected timeout crashes on whole input"

    chunk_rows = []
    for name, ops in split_flow_plan().items():
        if name == "gene":
            continue  # handled on the big-memory server below
        dop = cluster.max_feasible_dop(ops)
        report = cluster.run_flow(ops, INPUT_GB, dop or 1,
                                  colocated=False,
                                  enforce_runtime_limit=False,
                                  chunk_gb=50)
        assert report.feasible and not report.crashed, name
        chunk_rows.append([f"4. '{name}' in 50 GB chunks", "runs",
                           f"{report.seconds / 3600:.1f} h"])
    rows.extend(chunk_rows)

    big = SimulatedCluster(ClusterSpec().big_memory_variant())
    step5 = big.run_flow(split_flow_plan()["gene"], INPUT_GB, 40,
                         colocated=False, enforce_runtime_limit=False,
                         chunk_gb=50)
    rows.append(["5. gene on 1 TB-RAM server, 40 threads",
                 "runs" if step5.feasible and not step5.crashed else "FAILS",
                 f"{step5.seconds / 3600:.1f} h"])
    assert step5.feasible and not step5.crashed

    lines = format_table(["step", "outcome", "detail"], rows)
    lines.append("")
    lines.append("paper: 'we could not execute the complete flow on the "
                 "available hardware' — memory scheduling, library "
                 "versioning, and network pressure from 1.6 TB of "
                 "derived annotations forced flow splitting, 50 GB "
                 "chunking, and a big-memory side server")
    write_report("warstory", "Section 4.2 — war story", lines)


def test_annotation_blowup(ctx, benchmark):
    """The data *grows* through the pipeline (1 TB -> +1.6 TB derived):
    measure the same blow-up on real flow output records."""
    import json

    from repro.core.flows import build_fig2_flow
    from repro.dataflow.executor import LocalExecutor
    from repro.web.htmlgen import PageRenderer

    renderer = PageRenderer(seed=13)
    documents = []
    for index, document in enumerate(ctx.corpus_documents("relevant")[:6]):
        url = f"http://blowup{index}.example.org/a.html"
        document.raw = renderer.render(url, "t", document.text, [])
        document.meta.update({"url": url, "content_type": "text/html"})
        documents.append(document)
    input_bytes = sum(len(d.raw) for d in documents)
    plan = build_fig2_flow(ctx.pipeline)
    outputs, _ = benchmark.pedantic(
        lambda: LocalExecutor().execute(
            plan, [d.copy_shallow() for d in documents]),
        rounds=1, iterations=1)
    derived_bytes = sum(
        len(json.dumps(record)) for sink in ("sentences", "linguistics",
                                             "entities")
        for record in outputs[sink])
    ratio = derived_bytes / input_bytes
    lines = [
        f"raw input:            {input_bytes:,} bytes",
        f"derived annotations:  {derived_bytes:,} bytes",
        f"blow-up ratio:        {ratio:.2f}x",
        "paper: 1 TB raw -> 1.6 TB derived (0.4 TB entity + 1.2 TB "
        "linguistic annotations); latter tasks receive *more* data, "
        "not less — the inverse of typical Big Data aggregation",
    ]
    write_report("annotation_blowup",
                 "Section 4.2 — annotation blow-up", lines)
    assert ratio > 0.5
