"""Table 4: number of distinct entity names by corpus and method."""

from reporting import format_table, write_report

PAPER_TABLE4 = {
    ("relevant", "dictionary"): (26_344, 17_974, 73_435),
    ("relevant", "ml"): (629_384, 28_660, 5_506_579),
    ("irrelevant", "dictionary"): (5_318, 8_456, 22_131),
    ("irrelevant", "ml"): (119_638, 15_875, 991_010),
    ("medline", "dictionary"): (11_194, 12_164, 29_928),
    ("medline", "ml"): (343_184, 20_282, 4_715_194),
    ("pmc", "dictionary"): (12_291, 15_013, 92_319),
    ("pmc", "ml"): (277_211, 25_462, 1_858_709),
}


def test_table4_distinct_names(ctx, stats, benchmark):
    benchmark.pedantic(
        lambda: stats["relevant"].distinct_names("gene", "ml"),
        rounds=1, iterations=1)
    rows = []
    for corpus in ("relevant", "irrelevant", "medline", "pmc"):
        for method in ("dictionary", "ml"):
            paper = PAPER_TABLE4[(corpus, method)]
            rows.append([
                corpus, method,
                f"{paper[0]:,}", stats[corpus].distinct_names("disease",
                                                              method),
                f"{paper[1]:,}", stats[corpus].distinct_names("drug",
                                                              method),
                f"{paper[2]:,}", stats[corpus].distinct_names("gene",
                                                              method),
            ])
    lines = format_table(
        ["corpus", "method", "paper dis", "repro dis", "paper drug",
         "repro drug", "paper gene", "repro gene"], rows)
    lines.append("")
    lines.append("shape targets: ML > dictionary per corpus/type; "
                 "relevant >> irrelevant for every type")
    write_report("table4_entities", "Table 4 — distinct entity names",
                 lines)

    relevant, irrelevant = stats["relevant"], stats["irrelevant"]
    # ML-based annotation produces substantially more distinct names
    # (novel mentions + false positives) on the web corpus.
    for entity_type in ("disease", "drug", "gene"):
        assert relevant.distinct_names(entity_type, "ml") >= \
            relevant.distinct_names(entity_type, "dictionary")
    # Relevant corpus far richer than irrelevant for every type/method.
    for entity_type in ("disease", "drug", "gene"):
        for method in ("dictionary", "ml"):
            assert relevant.distinct_names(entity_type, method) > \
                irrelevant.distinct_names(entity_type, method)
