"""Fig. 7: incidence of entity annotations per document / per 1000
sentences across the four corpora, including the TLA-filter step for
ML gene names."""

from reporting import format_table, write_report

from repro.ner.postfilter import filter_tla_mentions, is_tla

ORDER = ("relevant", "irrelevant", "medline", "pmc")
PAPER_PER_1000 = {
    "disease": {"relevant": 128.49, "irrelevant": 4.57,
                "medline": 204.92, "pmc": 117.51},
    "drug": {"relevant": 97.83, "irrelevant": 6.85,
             "medline": 293.95, "pmc": 275.95},
    "gene": {"relevant": 128.23, "irrelevant": 4.39,
             "medline": 415.58, "pmc": 74.12},
}
#: Which method the paper's per-1000 means refer to per type.
PAPER_METHOD = {"disease": None, "drug": None, "gene": "dictionary"}


def test_fig7_incidence_per_1000_sentences(stats, benchmark):
    benchmark.pedantic(
        lambda: stats["relevant"].per_1000_sentences("disease"),
        rounds=1, iterations=1)
    rows = []
    for entity_type in ("disease", "drug", "gene"):
        method = PAPER_METHOD[entity_type]
        for corpus in ORDER:
            rows.append([
                entity_type, corpus,
                f"{PAPER_PER_1000[entity_type][corpus]:.1f}",
                f"{stats[corpus].per_1000_sentences(entity_type, method):.1f}",
            ])
    lines = format_table(
        ["entity type", "corpus", "paper /1000 sent", "repro /1000 sent"],
        rows)
    lines.append("")
    lines.append("(gene row uses dictionary annotations, as the paper's "
                 "per-1000-sentence gene means do)")
    write_report("fig7_incidence", "Fig. 7 — entity incidence", lines)

    for entity_type in ("disease", "drug", "gene"):
        method = PAPER_METHOD[entity_type]
        values = {corpus: stats[corpus].per_1000_sentences(entity_type,
                                                           method)
                  for corpus in ORDER}
        # Irrelevant is the floor for every type (Fig 7a-c).
        assert values["irrelevant"] < values["relevant"]
        assert values["irrelevant"] < values["medline"]
        # Medline abstracts are the densest for disease/drug/gene.
        assert values["medline"] >= values["relevant"]


def test_fig7_tla_filter_effect(ctx, stats, benchmark):
    """Paper: filtering TLAs cut distinct ML gene names in the
    relevant corpus from 5.5 M to 2.3 M (a ~58 % reduction)."""
    relevant = stats["relevant"]
    frequencies = relevant.name_frequencies[("gene", "ml")]
    before = len(frequencies)
    after = benchmark.pedantic(
        lambda: sum(1 for name in frequencies if not is_tla(name.upper())
                    or not name.isalpha() or len(name) != 3),
        rounds=1, iterations=1)
    tla_names = before - sum(
        1 for name in frequencies
        if not (len(name) == 3 and name.isalpha()))
    lines = [
        f"distinct ML gene names before TLA filter: {before}",
        f"TLA-shaped names removed: {tla_names}",
        f"distinct ML gene names after TLA filter: {before - tla_names}",
        "",
        "paper: 5,506,579 -> 2,300,000 distinct gene names after "
        "filtering three-letter acronyms; 'a very large number of "
        "false positives are three letter acronyms (TLA), almost "
        "always tagged as genes'",
    ]
    write_report("fig7_tla_filter", "Fig. 7c — TLA filter", lines)
    assert before > 0
    assert tla_names >= 0
    # ML gene names on *web* text include TLA-shaped entries.
    web_names = set(relevant.name_frequencies[("gene", "ml")])
    assert any(len(n) == 3 and n.isalpha() for n in web_names)


def test_tla_false_positive_flood_on_web_text(ctx, benchmark):
    """Count outright TLA false positives of the ML gene tagger on
    web-profile text (gold-negative acronyms tagged as genes)."""
    from repro.corpora.profiles import RELEVANT
    from repro.corpora.textgen import DocumentGenerator
    import dataclasses

    acronym_heavy = dataclasses.replace(RELEVANT, tla_per_sentence=0.5)
    generator = DocumentGenerator(ctx.vocabulary, acronym_heavy, seed=404)
    tagger = ctx.pipeline.ml_taggers["gene"]

    def run():
        false_positives = mentions = 0
        for index in range(10):
            gold = generator.document(index)
            document = gold.document.copy_shallow()
            predictions = tagger.annotate(document)
            mentions += len(predictions)
            gold_spans = {(g.mention.start, g.mention.end)
                          for g in gold.entities}
            false_positives += sum(
                1 for m in predictions
                if is_tla(m.text) and (m.start, m.end) not in gold_spans)
        return mentions, false_positives

    mentions, false_positives = benchmark.pedantic(run, rounds=1,
                                                   iterations=1)
    lines = [
        f"ML gene mentions on acronym-heavy web text: {mentions}",
        f"TLA false positives among them: {false_positives}",
        "",
        "paper: BANNER 'leads to catastrophic performance on any "
        "other documents' than Medline-style abstracts",
    ]
    write_report("fig7_tla_flood", "TLA false positives on web text",
                 lines)
    assert false_positives > 0
