"""Dictionary-tagger scaling: automaton build time and memory vs.
dictionary size.

The paper's operational pain points — the ~20-minute load of the
700K-entry gene dictionary and the 6-20 GB per-worker footprints —
are size effects.  This bench measures build time and estimated memory
over a size sweep and extrapolates linearly to the paper's scale.
"""

import time

from reporting import format_table, write_report

from repro.corpora.vocabulary import BiomedicalVocabulary
from repro.ner.dictionary import EntityDictionary

PAPER_GENE_NAMES = 700_000
PAPER_LOAD_SECONDS = 1200     # "approximately 20 minutes (!)"
PAPER_MEMORY_GB = (6, 20)     # "between 6 and 20 GB per worker thread"


def test_dictionary_build_scaling(benchmark):
    sizes = [250, 500, 1000, 2000]
    rows = []
    measurements = []
    for n_entries in sizes:
        vocabulary = BiomedicalVocabulary(seed=3, n_genes=n_entries,
                                          n_diseases=40, n_drugs=40)
        started = time.perf_counter()
        dictionary = EntityDictionary("gene", vocabulary.genes)
        build_seconds = time.perf_counter() - started
        n_names = len(vocabulary.gene_names())
        memory_mb = dictionary.approx_memory_bytes() / 2 ** 20
        measurements.append((n_names, build_seconds, memory_mb))
        rows.append([n_entries, n_names, dictionary.n_patterns,
                     f"{build_seconds * 1000:.0f} ms",
                     f"{memory_mb:.1f} MB"])
    benchmark.pedantic(
        lambda: EntityDictionary(
            "gene", BiomedicalVocabulary(seed=3, n_genes=500,
                                         n_diseases=40,
                                         n_drugs=40).genes),
        rounds=1, iterations=1)
    # Linear extrapolation to the paper's 700K names.
    names, seconds, memory = measurements[-1]
    projected_seconds = seconds * PAPER_GENE_NAMES / names
    projected_gb = memory * PAPER_GENE_NAMES / names / 1024
    lines = format_table(
        ["entries", "names", "patterns", "build time", "est. memory"],
        rows)
    lines.append("")
    lines.append(f"linear extrapolation to {PAPER_GENE_NAMES:,} names: "
                 f"build ~{projected_seconds:.0f} s, "
                 f"memory ~{projected_gb:.1f} GB")
    lines.append("paper: ~20 min load and 6-20 GB per worker — the "
                 "original Java tool converts every dictionary regex "
                 "into an NFA, a far costlier construction than our "
                 "direct trie build; memory lands in the same "
                 "GB-per-worker regime")
    write_report("dictionary_scaling",
                 "Dictionary scaling — automaton build cost", lines)
    # Build cost grows with size; extrapolated memory reaches the
    # GB-per-worker regime that capped the paper's DoP.
    assert measurements[-1][1] > measurements[0][1]
    assert projected_seconds > 5          # non-trivial startup cost
    assert 0.6 <= projected_gb <= 200     # GB-scale footprint


def test_pos_and_language_quality(ctx, benchmark):
    """Supporting tool quality: HMM tagging accuracy on held-out text
    (MedPost reports ~97 % on Medline) and language-ID accuracy."""
    import random

    from repro.corpora.foreign import FOREIGN_WORDS, generate_foreign_text
    from repro.corpora.goldstandard import build_ner_gold
    from repro.corpora.profiles import MEDLINE

    held_out = build_ner_gold(ctx.vocabulary, MEDLINE, 15, seed=909)
    sentences = [s for gold in held_out
                 for s in gold.tagged_sentences()]
    accuracy = benchmark.pedantic(
        lambda: ctx.pipeline.pos_tagger.accuracy(sentences),
        rounds=1, iterations=1)
    rng = random.Random(5)
    correct = total = 0
    for gold in held_out[:10]:
        total += 1
        correct += ctx.pipeline.identifier.detect(gold.text) == "en"
    for language in FOREIGN_WORDS:
        for _ in range(5):
            total += 1
            text = generate_foreign_text(language, 600, rng)
            correct += ctx.pipeline.identifier.detect(text) == language
    lines = [
        f"HMM POS accuracy on held-out Medline-profile text: "
        f"{accuracy:.1%} (MedPost reports ~97 % on Medline)",
        f"language-ID accuracy over en/de/fr/es samples: "
        f"{correct / total:.1%}",
    ]
    write_report("tool_quality", "Supporting tool quality", lines)
    assert accuracy > 0.9
    assert correct / total > 0.9
