"""Incremental recrawl: cold crawl vs warm change-driven rounds.

Times a multi-round focused crawl of the simulated web at three churn
rates (0.0, 0.1, 0.3).  Round 0 is a cold crawl; later rounds run the
incremental path (docs/crawling.md): conditional fetches against the
evolved web, content-fingerprint change detection, replay of stored
document outcomes for unchanged pages, and AIMD per-host revisit
scheduling that skips not-yet-due hosts entirely.

Asserted guarantees:

* every round is deterministic — repeated sweeps reproduce
  byte-identical results (digest equality across repeats);
* at churn 0.0 the warm round replays everything: zero pages changed,
  zero pages through the parse stage;
* at churn > 0 the warm rounds still detect real changes (the replay
  path must never mask actual churn);
* scheduler skips appear from round 2 on (intervals are driven by
  round-1 observations, so round 1 revisits everything);
* the headline gate: at 10% churn the warm round costs <= 30% of the
  cold crawl's wall time.

Every (churn, round) cell runs ``REPEATS`` times with the sweeps
interleaved, and the reported wall is the best repeat — single-shot
timings on a busy box penalize whichever cell collides with a noisy
neighbour.

Writes repo-root ``BENCH_recrawl.json`` — the committed evidence for
the warm-round speedup.  ``BENCH_SMOKE=1`` shrinks the crawl for CI,
writes the artifact under ``benchmarks/out/`` instead, and relaxes
the wall-clock ratio gate to "warm beats cold" (the strict 30% bound
needs the full-size run to be meaningful).
"""

import gc
import hashlib
import json
import os
import time
from pathlib import Path

import pytest
from reporting import format_table, write_report

from repro.core.experiment import default_context
from repro.crawler.checkpoint import result_to_dict
from repro.crawler.crawl import CrawlConfig, FocusedCrawler
from repro.crawler.recrawl import (
    PageMemory, RecrawlScheduler, round_summary,
)
from repro.web.server import SimulatedClock, SimulatedWeb

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
WEB_SEED = 31
BATCH_SIZE = 40
MAX_PAGES = 200 if SMOKE else 1200
#: Rounds per run: round 0 cold, rounds 1-2 warm.
N_ROUNDS = 3
CHURNS = (0.0, 0.1, 0.3)
REPEATS = 3
#: Acceptance gate: warm round wall / cold round wall at 10% churn.
WARM_RATIO_GATE = 0.30
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_recrawl.json"


@pytest.fixture(scope="module")
def crawl_ctx(ctx):
    """A web large enough that parse/classify dominate the cold round
    (smoke mode reuses the shared bench context instead)."""
    if SMOKE:
        return ctx
    return default_context(corpus_docs=30, n_training_docs=50,
                           crf_iterations=40, n_hosts=120,
                           crawl_pages=2500, seed_scale=15)


def _fingerprint(payload) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


def _run_rounds(context, seeds, churn):
    """One cold + warm round sequence; returns a record per round.

    Web, crawler, memory, and scheduler are rebuilt per run so no
    state leaks between churn rates or repeats — the page memory and
    scheduler deliberately persist *across rounds within* a run,
    which is the entire point.
    """
    web = SimulatedWeb(context.webgraph, seed=WEB_SEED,
                       churn_rate=churn)
    config = CrawlConfig(max_pages=MAX_PAGES, batch_size=BATCH_SIZE)
    crawler = FocusedCrawler(web, context.pipeline.classifier,
                             context.build_filter_chain(), config,
                             clock=SimulatedClock(),
                             memory=PageMemory(),
                             scheduler=RecrawlScheduler(seed=0))
    rounds = []
    for rnd in range(N_ROUNDS):
        crawler.begin_round(rnd)
        started = time.perf_counter()
        result = crawler.crawl(list(seeds))
        wall = time.perf_counter() - started
        record = round_summary(rnd, result)
        record["wall"] = wall
        record["digest"] = _fingerprint(result_to_dict(result))
        record["parse_pages"] = result.stage_pages.get("parse", 0)
        rounds.append(record)
        del result
        gc.collect()
    return rounds


def test_recrawl_warm_rounds(crawl_ctx, benchmark):
    seeds = crawl_ctx.seed_batch("second").urls
    crawl_ctx.pipeline.classifier.precompute()
    runs = {}

    def sweep():
        for _repeat in range(REPEATS):
            for churn in CHURNS:
                rounds = _run_rounds(crawl_ctx, seeds, churn)
                gc.collect()
                if churn not in runs:
                    runs[churn] = rounds
                    continue
                for kept, fresh in zip(runs[churn], rounds):
                    # Repeats must reproduce each round exactly.
                    assert fresh["digest"] == kept["digest"]
                    kept["wall"] = min(kept["wall"], fresh["wall"])
        return runs

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    for churn in CHURNS:
        cold, *warm = runs[churn]
        # Round 0 is a genuinely cold crawl; every warm round replays.
        assert cold["replay_hits"] == 0
        assert cold["fetches_skipped"] == 0
        for rnd in warm:
            assert rnd["replay_hits"] > 0
    frozen = runs[0.0]
    # A frozen web never reports a change.
    for rnd in frozen[1:]:
        assert rnd["pages_changed"] == 0
    # Round 1 retraces the cold trajectory exactly, so every visited
    # page replays and nothing reaches the parse stage.  From round 2
    # on, host skips are nearly free, which can let the same page
    # budget reach pages the cold crawl never visited — those parse
    # fresh (new discoveries, not failed replays), so the
    # nothing-parsed claim applies to round 1 only.
    assert frozen[1]["parse_pages"] == 0
    # Intervals are driven by round-1 observations, so the scheduler's
    # host skips first appear in round 2 — and a frozen web must
    # produce them (every host backs off past the minimum interval).
    assert frozen[1]["fetches_skipped"] == 0
    assert frozen[2]["fetches_skipped"] > 0
    for churn in CHURNS[1:]:
        # Churn actually churns: warm rounds still see real changes.
        assert runs[churn][1]["pages_changed"] > 0

    # The headline gate: at 10% churn the first warm round costs at
    # most WARM_RATIO_GATE of the cold crawl.  Smoke mode only checks
    # that warm beats cold (tiny crawls leave the bound meaningless).
    cold_wall = runs[0.1][0]["wall"]
    warm_wall = runs[0.1][1]["wall"]
    if SMOKE:
        assert warm_wall < cold_wall
    else:
        assert warm_wall <= WARM_RATIO_GATE * cold_wall, (
            f"warm round at 10% churn took {warm_wall:.2f}s vs "
            f"{cold_wall:.2f}s cold "
            f"({warm_wall / cold_wall:.0%} > {WARM_RATIO_GATE:.0%})")

    results = {"config": {
        "max_pages": MAX_PAGES, "batch_size": BATCH_SIZE,
        "n_seeds": len(seeds), "web_seed": WEB_SEED, "smoke": SMOKE,
        "n_rounds": N_ROUNDS, "repeats": REPEATS,
        "warm_ratio_gate": WARM_RATIO_GATE,
    }, "churn": {}}
    rows = []
    for churn in CHURNS:
        cold_wall = runs[churn][0]["wall"]
        entries = []
        for record in runs[churn]:
            wall = record["wall"]
            entries.append({
                "round": record["round"],
                "wall_seconds": round(wall, 3),
                "wall_vs_cold": round(wall / cold_wall, 3),
                "pages_fetched": record["pages_fetched"],
                "fetches_skipped": record["fetches_skipped"],
                "replay_hits": record["replay_hits"],
                "pages_changed": record["pages_changed"],
                "pages_near_unchanged": record["pages_near_unchanged"],
                "parse_pages": record["parse_pages"],
                "relevant": record["relevant"],
            })
            rows.append([f"{churn:.1f}", str(record["round"]),
                         f"{wall:.2f} s", f"{wall / cold_wall:.0%}",
                         f"{record['pages_fetched']:,}",
                         f"{record['fetches_skipped']:,}",
                         f"{record['replay_hits']:,}",
                         f"{record['pages_changed']:,}"])
        results["churn"][f"{churn:.1f}"] = {
            "rounds": entries,
            "warm_over_cold": round(
                runs[churn][1]["wall"] / cold_wall, 3),
        }

    out_path = (Path(__file__).resolve().parent / "out"
                / "BENCH_recrawl.json" if SMOKE else BENCH_PATH)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    lines = format_table(
        ["churn", "round", "wall", "vs cold", "fetched", "skipped",
         "replayed", "changed"], rows)
    lines.append("")
    lines.append("round 0 is the cold crawl; identical results across "
                 f"{REPEATS} interleaved repeats; full JSON in "
                 f"{out_path.name}")
    write_report("bench_recrawl", "incremental recrawl", lines)
