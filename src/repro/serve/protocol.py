"""Wire protocol for ``repro serve``: newline-delimited JSON.

One request or response per line, UTF-8, canonical serialization
(sorted keys, no whitespace) — so a response body is a deterministic
function of its payload and byte-identity between the batched and
unbatched execution paths can be asserted at the wire level.

Requests::

    {"id": "client-chosen", "op": "extract", "text": "...",
     "tenant": "optional"}

Batch ops (``extract`` / ``annotate`` / ``classify``) flow through the
request coalescer; control ops (``ping`` / ``metrics`` / ``stats`` /
``query`` / ``shutdown``) are answered inline by the connection reader
and are never batched.  ``query`` looks up facts in the entity store
the server was started with (``repro serve --store DIR``); its
filters travel in an optional ``params`` object::

    {"id": "1", "op": "query",
     "params": {"alias": "aspirin", "limit": 5}}

Responses::

    {"id": ..., "ok": true, "result": {...}}
    {"id": ..., "ok": false, "error": {"code": "shed",
     "message": "...", "retryable": true}}
"""

from __future__ import annotations

import json
import socket
import threading
from dataclasses import dataclass
from typing import Any

#: Operations that flow through the coalescer, as (op -> handler name).
BATCH_OPS = ("extract", "annotate", "classify")
#: Operations answered inline by the connection reader.
CONTROL_OPS = ("ping", "metrics", "stats", "query", "shutdown")

#: Upper bound on one serialized message; guards the reader against
#: unframed garbage streams.
MAX_LINE_BYTES = 4_000_000


class ProtocolError(ValueError):
    """Malformed request (missing fields, unknown op, oversized)."""


@dataclass(frozen=True)
class Request:
    """A validated inbound request."""

    request_id: str
    op: str
    text: str
    tenant: str = "default"
    include_volatile: bool = True
    params: Any = None

    @classmethod
    def from_payload(cls, payload: Any) -> "Request":
        if not isinstance(payload, dict):
            raise ProtocolError("request must be a JSON object")
        op = payload.get("op")
        if op not in BATCH_OPS and op not in CONTROL_OPS:
            raise ProtocolError(f"unknown op {op!r}")
        request_id = payload.get("id")
        if not isinstance(request_id, (str, int)):
            raise ProtocolError("request needs a string or int 'id'")
        text = payload.get("text", "")
        if not isinstance(text, str):
            raise ProtocolError("'text' must be a string")
        if op in BATCH_OPS and not text.strip():
            raise ProtocolError(f"op {op!r} needs non-empty 'text'")
        tenant = payload.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError("'tenant' must be a non-empty string")
        params = payload.get("params")
        if params is not None and not isinstance(params, dict):
            raise ProtocolError("'params' must be a JSON object")
        return cls(request_id=str(request_id), op=op, text=text,
                   tenant=tenant,
                   include_volatile=bool(payload.get(
                       "include_volatile", True)),
                   params=params)


def encode_message(payload: dict) -> bytes:
    """Canonical one-line JSON encoding (sorted keys, compact)."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> dict:
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("message exceeds MAX_LINE_BYTES")
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("message must be a JSON object")
    return payload


def ok_response(request_id: str, result: dict) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: str, code: str, message: str,
                   retryable: bool) -> dict:
    return {"id": request_id, "ok": False,
            "error": {"code": code, "message": message,
                      "retryable": retryable}}


class MessageStream:
    """Line-framed JSON messages over one socket.

    Reads are single-threaded (the connection's reader loop); writes
    are serialized by a lock because batch dispatcher threads deliver
    responses concurrently with inline control responses.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._write_lock = threading.Lock()

    def read_message(self) -> dict | None:
        """Next inbound message, or None on a cleanly closed peer."""
        line = self._reader.readline(MAX_LINE_BYTES + 2)
        if not line:
            return None
        if not line.endswith(b"\n"):
            raise ProtocolError("unterminated (oversized?) message")
        if line.strip() == b"":
            return self.read_message()
        return decode_message(line)

    def send_message(self, payload: dict) -> None:
        self.send_raw(encode_message(payload))

    def send_raw(self, data: bytes) -> None:
        """Write pre-encoded message bytes (possibly several messages
        gathered into one syscall — the pipelined-client fast path)."""
        with self._write_lock:
            self._sock.sendall(data)

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
