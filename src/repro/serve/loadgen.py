"""Closed-loop load generator and client for ``repro serve``.

:class:`ServeClient` is a minimal synchronous client: one socket, one
request in flight, id-checked responses — the building block both for
the CLI and for the benchmark's closed-loop workers.

:class:`LoadGenerator` drives a server with N concurrent closed-loop
workers (each keeps a fixed window of requests in flight — offered
load is controlled by ``concurrency × window``, not timers, so a
1-core host measures batching effect rather than scheduler noise).
With ``window > 1`` a worker pipelines: it writes the whole window in
one syscall and then collects the window's responses by id, the way
``wrk``-style harnesses saturate a server from few threads.  It
records per-request wall latencies (send of the request's window →
that response's arrival) and a **response digest**: a sha256 over
every ``(request id, canonical response body)`` pair,
order-independent.  Two runs over the same workload must produce
equal digests regardless of batching, concurrency, window, or worker
count — that is the byte-identity check the benchmark and the CI
smoke job assert.

Workloads are generated deterministically from a seed so the same
``--seed``/``--requests`` always offers the same byte stream.
"""

from __future__ import annotations

import hashlib
import json
import random
import socket
import threading
import time
from typing import Sequence

from repro.serve import protocol

#: Word pool for generated workloads: a mix of dictionary-hit drug /
#: disease surface forms and filler so extract requests exercise both
#: the automaton and the CRF, while repeats keep the annotation cache
#: warm (the serving steady state).
_WORKLOAD_WORDS = (
    "aspirin", "ibuprofen", "metformin", "insulin", "warfarin",
    "diabetes", "asthma", "hypertension", "migraine", "anemia",
    "patients", "treated", "with", "daily", "doses", "of", "showed",
    "reduced", "symptoms", "after", "therapy", "trial", "study",
    "results", "suggest", "improved", "outcomes", "versus", "placebo",
)

_OPS = ("extract", "annotate", "classify")


def generate_workload(n_requests: int, seed: int = 0,
                      ops: Sequence[str] = _OPS,
                      min_words: int = 4, max_words: int = 12,
                      unique_texts: int = 64,
                      ) -> list[tuple[str, str]]:
    """Deterministic ``[(op, text), ...]`` workload.

    ``unique_texts`` bounds the distinct sentences: real serving
    traffic repeats (headers, boilerplate, popular queries), and the
    repetition is what lets the annotation cache absorb per-request
    kernel cost so the measurement isolates batching overhead.
    """
    rng = random.Random(seed)
    pool = []
    for _ in range(unique_texts):
        n_words = rng.randint(min_words, max_words)
        words = [rng.choice(_WORKLOAD_WORDS) for _ in range(n_words)]
        pool.append(" ".join(words) + ".")
    return [(ops[index % len(ops)], rng.choice(pool))
            for index in range(n_requests)]


class ServeClient:
    """Synchronous single-connection client (one request in flight)."""

    def __init__(self, host: str, port: int,
                 timeout: float = 60.0) -> None:
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._stream = protocol.MessageStream(sock)
        self._next_id = 0

    def call(self, op: str, text: str = "", tenant: str = "default",
             **extra) -> dict:
        """Send one request, block for its response."""
        self._next_id += 1
        request_id = f"c{self._next_id}"
        payload = {"id": request_id, "op": op}
        if text:
            payload["text"] = text
        if tenant != "default":
            payload["tenant"] = tenant
        payload.update(extra)
        self._stream.send_message(payload)
        response = self._stream.read_message()
        if response is None:
            raise ConnectionError("server closed the connection")
        if str(response.get("id")) != request_id:
            raise ConnectionError(
                f"response id {response.get('id')!r} != {request_id!r}")
        return response

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def digest_pairs(pairs: list[tuple[str, dict]]) -> str:
    """Order-independent sha256 over ``(key, response)`` pairs.

    The key identifies the request (its global workload index), the
    body is the response minus its wire ``id``; pairs are hashed in
    sorted-key order, so completion order — which batching reshuffles
    — cannot change the digest, but any byte of any response body can.
    """
    digest = hashlib.sha256()
    for key, response in sorted(pairs, key=lambda pair: pair[0]):
        body = dict(response)
        body.pop("id", None)
        line = key + "\t" + json.dumps(body, sort_keys=True,
                                       separators=(",", ":"))
        digest.update(line.encode("utf-8"))
    return digest.hexdigest()


class LoadGenerator:
    """Closed-loop multi-worker driver collecting latency + digest.

    ``concurrency`` is the number of connections (worker threads);
    ``window`` is the number of pipelined in-flight requests per
    connection — offered load is ``concurrency × window``.
    """

    def __init__(self, host: str, port: int, concurrency: int = 4,
                 window: int = 1, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.concurrency = max(1, concurrency)
        self.window = max(1, window)
        self.timeout = timeout
        self.latencies: list[float] = []
        self.errors: dict[str, int] = {}
        self.ok = 0
        self.pairs: list[tuple[str, dict]] = []
        self.elapsed = 0.0
        self._lock = threading.Lock()

    def run(self, workload: Sequence[tuple[str, str]],
            tenant: str = "default") -> "LoadGenerator":
        """Partition the workload round-robin across workers; each
        worker runs its slice closed-loop.  Returns self."""
        slices = [list(workload[index::self.concurrency])
                  for index in range(self.concurrency)]
        threads = [threading.Thread(
            target=self._worker, args=(index, jobs, tenant),
            name=f"repro-loadgen-{index}", daemon=True)
            for index, jobs in enumerate(slices) if jobs]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        self.elapsed = time.monotonic() - started
        return self

    def _worker(self, worker_index: int,
                jobs: list[tuple[str, str]], tenant: str) -> None:
        latencies, pairs, errors, ok = [], [], {}, 0
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        stream = protocol.MessageStream(sock)
        try:
            for base in range(0, len(jobs), self.window):
                chunk = jobs[base:base + self.window]
                payloads = []
                outstanding = set()
                for offset, (op, text) in enumerate(chunk):
                    # Id = the request's *global* workload index, so
                    # digests compare across concurrency/window too.
                    index = worker_index + \
                        (base + offset) * self.concurrency
                    request_id = f"r{index}"
                    outstanding.add(request_id)
                    payload = {"id": request_id, "op": op,
                               "text": text}
                    if tenant != "default":
                        payload["tenant"] = tenant
                    payloads.append(protocol.encode_message(payload))
                sent = time.monotonic()
                # One write for the whole window; responses arrive in
                # completion order and are matched by id.
                stream.send_raw(b"".join(payloads))
                while outstanding:
                    response = stream.read_message()
                    if response is None:
                        raise ConnectionError(
                            "server closed mid-window")
                    latencies.append(time.monotonic() - sent)
                    request_id = str(response.get("id"))
                    if request_id not in outstanding:
                        raise ConnectionError(
                            f"unexpected response id {request_id!r}")
                    outstanding.discard(request_id)
                    pairs.append((request_id, response))
                    if response.get("ok"):
                        ok += 1
                    else:
                        code = response.get("error", {}).get(
                            "code", "unknown")
                        errors[code] = errors.get(code, 0) + 1
        finally:
            stream.close()
        with self._lock:
            self.latencies.extend(latencies)
            self.pairs.extend(pairs)
            self.ok += ok
            for code, count in errors.items():
                self.errors[code] = self.errors.get(code, 0) + count

    # -- results -------------------------------------------------------------

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of observed latencies (seconds)."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1,
                   max(0, int(round(q / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    @property
    def digest(self) -> str:
        return digest_pairs(self.pairs)

    def summary(self) -> dict:
        total = len(self.latencies)
        return {
            "requests": total,
            "ok": self.ok,
            "errors": dict(sorted(self.errors.items())),
            "concurrency": self.concurrency,
            "window": self.window,
            "elapsed_s": round(self.elapsed, 6),
            "throughput_rps": round(total / self.elapsed, 3)
            if self.elapsed > 0 else 0.0,
            "p50_ms": round(self.percentile(50) * 1e3, 3),
            "p99_ms": round(self.percentile(99) * 1e3, 3),
            "digest": self.digest,
        }
