"""The batched extraction server: engine + socket frontend.

Two layers, separable for testing:

* :class:`BatchEngine` — admission control (bounded queue with
  retryable load-shed), per-tenant quotas, the request coalescer, and
  dispatcher threads that feed closed batches to COW-forked workers
  (or run them inline with ``workers=0``).  No sockets; the hypothesis
  concurrency suite drives this layer directly.
* :class:`ExtractionServer` — a TCP frontend speaking
  :mod:`repro.serve.protocol`: one reader thread per connection,
  control ops answered inline, batch ops submitted to the engine with
  the connection's stream attached.  The engine gathers a batch's
  responses into one write per connection, so batching amortizes the
  response syscalls too, and requests pipelined on one connection
  complete out of order and in parallel.

Fork layout (the PR-6 crawl-pool discipline): the parent builds and
:meth:`~repro.serve.session.ExtractionSession.warm`\\ s the session,
then ``gc.collect(); gc.freeze()`` pins the model heap into the
permanent generation before ``fork`` so reference-count updates in
children don't unshare pages; each child disables automatic gc and
collects explicitly every few batches.  Worker IPC is marshal over a
pipe — plain tuples in, plain dicts out, nothing pickles model state.

Metrics keep the obs registry's deterministic/volatile split: request
counts per op are deterministic (a fixed workload exports
byte-identically regardless of timing, batching, or worker count);
latencies, batch sizes, queue depth, shed/quota counts are volatile.
"""

from __future__ import annotations

import gc
import marshal
import multiprocessing
import os
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.serve import protocol
from repro.serve.coalescer import (
    BatchPolicy, PendingRequest, RequestCoalescer,
)
from repro.serve.quotas import QuotaManager, count_tokens
from repro.serve.session import ExtractionSession

#: Latency histogram buckets (seconds): finer than DEFAULT_BUCKETS in
#: the sub-100ms range where serve latencies live.
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

#: Batch-size histogram buckets (requests per batch).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Child workers run a full gc this often (batches); automatic gc is
#: disabled post-fork to keep the COW heap stable.
_WORKER_GC_EVERY = 64


@dataclass
class ServeConfig:
    """Everything the server layer derives its behaviour from.

    All batching inputs are deterministic configuration; the only
    timing knob is ``max_delay_ms``, the coalescer's latency deadline.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 1
    max_batch: int = 32
    max_delay_ms: float = 10.0
    queue_limit: int = 256
    token_target: int | None = None
    quotas: dict[str, tuple[float, float]] = field(default_factory=dict)
    default_quota: tuple[float, float] | None = None
    metrics_out: str | None = None

    def policy(self) -> BatchPolicy:
        policy = BatchPolicy.for_config(
            workers=self.workers, queue_limit=self.queue_limit,
            max_delay=self.max_delay_ms / 1000.0,
            token_target=self.token_target)
        policy.max_requests = min(policy.max_requests, self.max_batch)
        return policy


class _ForkedWorker:
    """Parent-side handle of one forked extraction worker."""

    def __init__(self, session: ExtractionSession, index: int) -> None:
        context = multiprocessing.get_context("fork")
        self.index = index
        parent_conn, child_conn = context.Pipe()
        self.conn = parent_conn
        self.process = context.Process(
            target=_worker_main, args=(child_conn, session),
            name=f"repro-serve-worker-{index}", daemon=True)
        self.process.start()
        child_conn.close()

    def run_batch(self, requests: list[tuple[str, str]]) -> list[dict]:
        self.conn.send_bytes(marshal.dumps(requests))
        return marshal.loads(self.conn.recv_bytes())

    def stop(self, timeout: float = 10.0) -> None:
        try:
            self.conn.send_bytes(b"")
        except (OSError, ValueError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
        self.conn.close()


def _worker_main(conn, session: ExtractionSession) -> None:
    """Child loop: marshal batches in, marshal result lists out.

    Inherits the warmed session read-only through fork; the parent
    froze the heap pre-fork, so the child only disables automatic gc
    (its own allocations are collected explicitly every few batches).
    """
    gc.disable()
    batches = 0
    while True:
        try:
            payload = conn.recv_bytes()
        except (EOFError, OSError):
            break
        if not payload:
            break
        requests = marshal.loads(payload)
        try:
            results = session.run_batch(requests)
        except Exception as exc:  # noqa: BLE001 - keep the worker up
            message = f"{type(exc).__name__}: {exc}"
            results = [{"_error": message}] * len(requests)
        try:
            conn.send_bytes(marshal.dumps(results))
        except (OSError, ValueError):
            break
        batches += 1
        if batches % _WORKER_GC_EVERY == 0:
            gc.collect()
    conn.close()


class BatchEngine:
    """Admission → coalesce → dispatch, no sockets.

    ``workers=0`` executes batches inline on the dispatcher thread —
    the right shape for 1-core hosts (no IPC round-trip, same wire
    semantics) and for deterministic tests.  ``workers>=1`` forks that
    many COW workers, one dispatcher thread each.
    """

    def __init__(self, session: ExtractionSession, config: ServeConfig,
                 metrics: MetricsRegistry | None = None,
                 clock=time.monotonic) -> None:
        self.session = session
        self.config = config
        self.metrics = metrics if metrics is not None else \
            MetricsRegistry()
        self.clock = clock
        self.quotas = QuotaManager(quotas=config.quotas,
                                   default=config.default_quota,
                                   clock=clock)
        self.coalescer = RequestCoalescer(config.policy(), clock=clock)
        self._workers: list[_ForkedWorker] = []
        self._dispatchers: list[threading.Thread] = []
        self._started = False
        self._stopped = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Warm, freeze, fork, then start dispatchers.

        Fork happens before any engine thread exists — a forked child
        must never inherit a running thread's locks mid-flight.
        """
        if self._started:
            raise RuntimeError("engine already started")
        self._started = True
        self.session.warm()
        if self.config.workers >= 1:
            gc.collect()
            gc.freeze()
            self._workers = [_ForkedWorker(self.session, index)
                             for index in range(self.config.workers)]
        worker_slots = self._workers or [None]
        self._dispatchers = [
            threading.Thread(target=self._dispatch_loop, args=(worker,),
                             name=f"repro-serve-dispatch-{index}",
                             daemon=True)
            for index, worker in enumerate(worker_slots)]
        for thread in self._dispatchers:
            thread.start()

    def stop(self) -> None:
        """Drain the queue, stop dispatchers and workers."""
        if not self._started or self._stopped:
            return
        self._stopped = True
        self.coalescer.close()
        for thread in self._dispatchers:
            thread.join(timeout=30)
        for worker in self._workers:
            worker.stop()
        if self._workers:
            gc.unfreeze()

    # -- admission -----------------------------------------------------------

    def submit(self, op: str, text: str, tenant: str = "default",
               request_id: str = "", on_done=None,
               stream=None) -> PendingRequest:
        """Admit one request; always returns a PendingRequest (already
        delivered with an error response when not admitted)."""
        tokens = count_tokens(text)
        pending = PendingRequest(request_id=request_id, op=op,
                                 text=text, tenant=tenant,
                                 tokens=tokens, on_done=on_done,
                                 stream=stream)
        self.metrics.counter("serve.requests", op=op).inc()
        self.metrics.counter("serve.request_tokens", op=op).inc(tokens)
        if self._stopped or not self._started:
            self._deliver_one(pending, protocol.error_response(
                request_id, "unavailable", "server is shutting down",
                retryable=True))
            return pending
        depth = self.coalescer.depth
        self.metrics.gauge("serve.queue_depth", volatile=True).set(depth)
        if depth >= self.config.queue_limit:
            self.metrics.counter("serve.shed", volatile=True).inc()
            self._deliver_one(pending, protocol.error_response(
                request_id, "shed",
                f"admission queue full ({depth} queued)",
                retryable=True))
            return pending
        if not self.quotas.admit(tenant, tokens):
            self.metrics.counter("serve.quota_rejected",
                                 volatile=True).inc()
            self._deliver_one(pending, protocol.error_response(
                request_id, "quota",
                f"tenant {tenant!r} is out of token budget",
                retryable=True))
            return pending
        try:
            self.coalescer.submit(pending)
        except RuntimeError:
            self._deliver_one(pending, protocol.error_response(
                request_id, "unavailable", "server is shutting down",
                retryable=True))
        return pending

    # -- dispatch ------------------------------------------------------------

    def _dispatch_loop(self, worker: _ForkedWorker | None) -> None:
        while True:
            batch = self.coalescer.take()
            if batch is None:
                return
            self._observe_batch(batch)
            requests = [(pending.op, pending.text) for pending in batch]
            try:
                if worker is None:
                    results = self.session.run_batch(requests)
                else:
                    results = worker.run_batch(requests)
            except Exception as exc:  # noqa: BLE001 - worker death
                self.metrics.counter("serve.worker_failures",
                                     volatile=True).inc()
                message = f"worker failed: {type(exc).__name__}: {exc}"
                self._deliver_batch([
                    (pending, protocol.error_response(
                        pending.request_id, "worker_failed", message,
                        retryable=True))
                    for pending in batch])
                continue
            now = self.clock()
            latency = self.metrics.histogram(
                "serve.latency_seconds", buckets=LATENCY_BUCKETS,
                volatile=True)
            deliveries = []
            for pending, result in zip(batch, results):
                if "_error" in result:
                    response = protocol.error_response(
                        pending.request_id, "failed", result["_error"],
                        retryable=False)
                else:
                    response = protocol.ok_response(pending.request_id,
                                                    result)
                latency.observe(max(0.0, now - pending.enqueued_at))
                deliveries.append((pending, response))
            self._deliver_batch(deliveries)

    def _deliver_one(self, pending: PendingRequest,
                     response: dict) -> None:
        if pending.stream is not None:
            try:
                pending.stream.send_message(response)
            except (OSError, ValueError):
                pass  # peer vanished; still mark the request done
        pending.deliver(response)

    def _deliver_batch(
            self, deliveries: list[tuple[PendingRequest, dict]]) -> None:
        """Deliver a closed batch's responses, gathering all responses
        bound for the same connection into one write — the batch path
        amortizes response syscalls the same way it amortizes dispatch
        wakeups and worker IPC."""
        by_stream: dict[int, tuple[object, list[dict]]] = {}
        for pending, response in deliveries:
            if pending.stream is not None:
                by_stream.setdefault(
                    id(pending.stream),
                    (pending.stream, []))[1].append(response)
        for stream, responses in by_stream.values():
            try:
                stream.send_raw(b"".join(
                    protocol.encode_message(response)
                    for response in responses))
            except (OSError, ValueError):
                pass  # peer vanished; still mark the requests done
        for pending, response in deliveries:
            pending.deliver(response)

    def _observe_batch(self, batch: list[PendingRequest]) -> None:
        metrics = self.metrics
        metrics.counter("serve.batches", volatile=True).inc()
        if len(batch) > 1:
            metrics.counter("serve.multi_request_batches",
                            volatile=True).inc()
        metrics.histogram("serve.batch_size",
                          buckets=BATCH_SIZE_BUCKETS,
                          volatile=True).observe(len(batch))

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        metrics = self.metrics
        ops = {labels["op"]: int(metrics.value_of("serve.requests",
                                                  **labels) or 0)
               for labels in metrics.labels_of("serve.requests")}
        return {
            "requests": ops,
            "queue_depth": self.coalescer.depth,
            "batches": int(metrics.value_of("serve.batches") or 0),
            "multi_request_batches": int(
                metrics.value_of("serve.multi_request_batches") or 0),
            "shed": int(metrics.value_of("serve.shed") or 0),
            "quota_rejected": int(
                metrics.value_of("serve.quota_rejected") or 0),
            "worker_failures": int(
                metrics.value_of("serve.worker_failures") or 0),
            "workers": len(self._workers),
            "quota_buckets": self.quotas.snapshot(),
        }


class ExtractionServer:
    """TCP frontend over a :class:`BatchEngine`.

    ``start()`` binds (port 0 = ephemeral; read :attr:`address`),
    forks workers, and returns; ``serve_forever()`` blocks until a
    ``shutdown`` op or :meth:`request_shutdown`.  Shutdown drains
    in-flight batches, stops workers, flushes the annotation cache,
    and writes the deterministic metrics export when configured.
    """

    def __init__(self, session: ExtractionSession, config: ServeConfig,
                 metrics: MetricsRegistry | None = None,
                 query_engine=None) -> None:
        self.config = config
        self.engine = BatchEngine(session, config, metrics=metrics)
        self.metrics = self.engine.metrics
        #: Optional :class:`repro.store.QueryEngine` backing the
        #: ``query`` control op (``repro serve --store DIR``).
        self.query_engine = query_engine
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: set[protocol.MessageStream] = set()
        self._connections_lock = threading.Lock()
        self._shutdown_event = threading.Event()
        self._done = False

    @property
    def address(self) -> tuple[str, int]:
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[:2]

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ExtractionServer":
        # Fork workers before any server thread exists.
        self.engine.start()
        listener = socket.create_server(
            (self.config.host, self.config.port), reuse_port=False)
        listener.listen(128)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept",
            daemon=True)
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Block until shutdown is requested, then run it."""
        self._shutdown_event.wait()
        self.shutdown()

    def request_shutdown(self) -> None:
        self._shutdown_event.set()

    def shutdown(self) -> None:
        if self._done:
            return
        self._done = True
        self._shutdown_event.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        self.engine.stop()
        with self._connections_lock:
            streams = list(self._connections)
            self._connections.clear()
        for stream in streams:
            stream.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        self.engine.session.close()
        if self.config.metrics_out:
            # Latency/batch histograms are the point of this export;
            # include them.  The deterministic subset stays available
            # via the `metrics` op with include_volatile=false.
            self.metrics.write_jsonl(self.config.metrics_out,
                                     include_volatile=True)

    # -- connection handling -------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._shutdown_event.is_set():
            try:
                conn, _addr = listener.accept()
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            stream = protocol.MessageStream(conn)
            with self._connections_lock:
                self._connections.add(stream)
            threading.Thread(target=self._client_loop, args=(stream,),
                             name="repro-serve-client",
                             daemon=True).start()

    def _client_loop(self, stream: protocol.MessageStream) -> None:
        try:
            while True:
                try:
                    payload = stream.read_message()
                except protocol.ProtocolError as exc:
                    stream.send_message(protocol.error_response(
                        "", "bad_request", str(exc), retryable=False))
                    return
                if payload is None:
                    return
                try:
                    request = protocol.Request.from_payload(payload)
                except protocol.ProtocolError as exc:
                    stream.send_message(protocol.error_response(
                        str(payload.get("id", "")), "bad_request",
                        str(exc), retryable=False))
                    continue
                if request.op in protocol.CONTROL_OPS:
                    self._handle_control(stream, request)
                    if request.op == "shutdown":
                        return
                else:
                    self.engine.submit(
                        op=request.op, text=request.text,
                        tenant=request.tenant,
                        request_id=request.request_id,
                        stream=stream)
        except (OSError, ValueError):
            pass  # peer vanished mid-write; connection teardown below
        finally:
            with self._connections_lock:
                self._connections.discard(stream)
            stream.close()

    def _handle_control(self, stream: protocol.MessageStream,
                        request: protocol.Request) -> None:
        if request.op == "ping":
            result = {"pong": True, "pid": os.getpid()}
        elif request.op == "metrics":
            result = self.metrics.to_dict(
                include_volatile=request.include_volatile)
        elif request.op == "stats":
            result = self.engine.stats()
        elif request.op == "query":
            result = self._handle_query(stream, request)
            if result is None:
                return
        else:  # shutdown
            result = {"stopping": True}
        stream.send_message(protocol.ok_response(request.request_id,
                                                 result))
        if request.op == "shutdown":
            self.request_shutdown()

    def _handle_query(self, stream: protocol.MessageStream,
                      request: protocol.Request) -> dict | None:
        """Answer a ``query`` op from the attached store; returns the
        result payload, or None after sending an error response."""
        if self.query_engine is None:
            stream.send_message(protocol.error_response(
                request.request_id, "no_store",
                "server was started without --store; "
                "the query op is unavailable", retryable=False))
            return None
        from repro.store.query import QUERY_FILTERS

        params = dict(request.params or {})
        unknown = sorted(set(params) - set(QUERY_FILTERS))
        if unknown:
            stream.send_message(protocol.error_response(
                request.request_id, "bad_request",
                f"unknown query params {unknown}; "
                f"supported: {sorted(QUERY_FILTERS)}", retryable=False))
            return None
        try:
            facts = self.query_engine.facts(**params)
        except (TypeError, ValueError) as exc:
            stream.send_message(protocol.error_response(
                request.request_id, "bad_request", str(exc),
                retryable=False))
            return None
        return {"count": len(facts), "facts": facts}
