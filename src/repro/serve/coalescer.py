"""Request coalescing: the serve layer's batching mechanism.

Concurrent requests queue here; dispatcher threads pull *batches* that
feed the batch kernels (``tag_batch`` / ``predict_batch``) as a unit,
so per-request call overhead — kernel entry, worker IPC round-trip,
thread wakeups — amortizes across the batch.

Two parts, separable for testing:

* :class:`BatchPolicy` — the deterministic closing rule, mirroring the
  crawl executor's ``ChunkPlanner``: a batch closes when it reaches a
  request target or a token target, whichever comes first, both
  computed from configuration only (never from timing).  The *only*
  timing input is the latency deadline: a batch that hasn't filled by
  ``max_delay`` seconds after its oldest request arrived closes
  anyway, bounding the latency cost a request can pay for batching.
  The size/token boundaries a request stream produces are therefore a
  pure function of the stream (property-tested: contiguous,
  exact-cover, identical streaming vs. offline).
* :class:`RequestCoalescer` — the thread-safe queue applying the
  policy.  Multiple dispatchers may pull concurrently; each batch is a
  contiguous slice of the arrival order.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Sequence


class BatchPolicy:
    """Deterministic batch-closing rule (size/token/deadline).

    The request target splits the admission queue across
    ``workers * PIPELINE_DEPTH`` batches — each worker sees a couple
    of batches' worth of queue even at full depth, so one giant batch
    never serializes a drained queue behind a single decode — bounded
    to [``MIN_REQUESTS``, ``MAX_REQUESTS``].  The token target keeps a
    run of oversized requests from ballooning one batch's latency.
    Both inputs are configuration, so the same request stream always
    partitions identically (the ChunkPlanner rule, applied to
    requests).
    """

    #: Batches a dispatcher should see per full admission queue.
    PIPELINE_DEPTH = 2
    MIN_REQUESTS = 1
    MAX_REQUESTS = 64
    TOKEN_TARGET = 4096

    def __init__(self, max_requests: int = 32,
                 token_target: int | None = None,
                 max_delay: float = 0.010) -> None:
        if max_requests < 1:
            raise ValueError("BatchPolicy needs max_requests >= 1")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self.max_requests = max_requests
        self.token_target = token_target or self.TOKEN_TARGET
        self.max_delay = max_delay
        self._requests = 0
        self._tokens = 0

    @classmethod
    def for_config(cls, workers: int, queue_limit: int,
                   max_delay: float = 0.010,
                   token_target: int | None = None) -> "BatchPolicy":
        """Derive the request target from serve configuration, the way
        ``ChunkPlanner`` derives its page target from the crawl's."""
        dispatchers = max(1, workers)
        target = -(-queue_limit // (dispatchers * cls.PIPELINE_DEPTH))
        target = max(cls.MIN_REQUESTS, min(cls.MAX_REQUESTS, target))
        return cls(max_requests=target, token_target=token_target,
                   max_delay=max_delay)

    def add(self, tokens: int) -> bool:
        """Account one request; True means "close the batch now"."""
        self._requests += 1
        self._tokens += tokens
        if (self._requests >= self.max_requests
                or self._tokens >= self.token_target):
            self.reset()
            return True
        return False

    def reset(self) -> None:
        self._requests = 0
        self._tokens = 0

    def plan(self, token_counts: Sequence[int]) -> list[tuple[int, int]]:
        """Offline partition of a request stream by token counts.

        Returns ``[(start, end), ...]`` half-open ranges that are
        contiguous, order-preserving, and exactly cover
        ``range(len(token_counts))`` — the same boundaries the
        streaming :meth:`add` produces fed one request at a time
        (property-tested, like ``adaptive_chunks``).
        """
        self.reset()
        bounds: list[tuple[int, int]] = []
        start = 0
        for index, tokens in enumerate(token_counts):
            if self.add(tokens):
                bounds.append((start, index + 1))
                start = index + 1
        if start < len(token_counts):
            bounds.append((start, len(token_counts)))
        self.reset()
        return bounds


class PendingRequest:
    """One admitted request travelling through the batch engine.

    Carries the response back to the submitter: ``deliver`` stores the
    response dict, fires the optional callback (the socket writer),
    and wakes anyone blocked in ``wait``.  ``stream`` (any object with
    ``send_message``/``send_raw``) lets the engine gather a batch's
    responses into one write per connection instead of calling a
    per-response callback.
    """

    __slots__ = ("request_id", "op", "text", "tenant", "tokens",
                 "enqueued_at", "on_done", "stream", "response",
                 "_event")

    def __init__(self, request_id: str, op: str, text: str,
                 tenant: str = "default", tokens: int = 0,
                 enqueued_at: float = 0.0,
                 on_done: Callable[[dict], None] | None = None,
                 stream=None) -> None:
        self.request_id = request_id
        self.op = op
        self.text = text
        self.tenant = tenant
        self.tokens = tokens
        self.enqueued_at = enqueued_at
        self.on_done = on_done
        self.stream = stream
        self.response: dict | None = None
        self._event = threading.Event()

    def deliver(self, response: dict) -> None:
        self.response = response
        self._event.set()
        if self.on_done is not None:
            self.on_done(response)

    def wait(self, timeout: float | None = None) -> dict | None:
        """Block until delivered; the response dict, or None on
        timeout."""
        if not self._event.wait(timeout):
            return None
        return self.response


class RequestCoalescer:
    """Thread-safe batching queue applying a :class:`BatchPolicy`.

    ``submit`` never blocks (admission control happens before it);
    ``take`` blocks until a batch closes — by size/tokens as soon as
    enough requests queue, or by the latency deadline — and returns
    it.  After :meth:`close`, ``take`` drains what's queued and then
    returns None to each caller.
    """

    def __init__(self, policy: BatchPolicy,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy
        self._clock = clock
        self._cond = threading.Condition()
        self._queue: list[PendingRequest] = []
        self._closed = False

    @property
    def depth(self) -> int:
        """Requests currently queued (admission control reads this)."""
        with self._cond:
            return len(self._queue)

    def submit(self, pending: PendingRequest) -> None:
        with self._cond:
            if self._closed:
                raise RuntimeError("coalescer is closed")
            pending.enqueued_at = self._clock()
            self._queue.append(pending)
            self._cond.notify()

    def close(self) -> None:
        """Stop accepting; wake every ``take`` to drain and exit."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def take(self) -> list[PendingRequest] | None:
        """The next closed batch (a contiguous slice of arrival
        order), or None once closed and drained."""
        policy = self.policy
        with self._cond:
            while True:
                if self._queue:
                    count = self._ready_count()
                    if count:
                        batch = self._queue[:count]
                        del self._queue[:count]
                        return batch
                    oldest = self._queue[0].enqueued_at
                    remaining = oldest + policy.max_delay - self._clock()
                    self._cond.wait(max(remaining, 0.0005))
                elif self._closed:
                    return None
                else:
                    self._cond.wait()

    def _ready_count(self) -> int:
        """How many queued requests form a closed batch right now
        (0 = keep waiting).  Caller holds the lock."""
        policy = self.policy
        policy.reset()
        for index, pending in enumerate(self._queue):
            if policy.add(pending.tokens):
                return index + 1
        policy.reset()
        # Not full: close anyway if the oldest request has waited out
        # the deadline, or if no more requests can ever arrive.
        if self._closed:
            return len(self._queue)
        oldest = self._queue[0].enqueued_at
        if self._clock() - oldest >= policy.max_delay:
            return len(self._queue)
        return 0
