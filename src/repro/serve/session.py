"""Reusable extraction session: the state one server process keeps.

A :class:`ExtractionSession` wraps a trained
:class:`~repro.core.pipeline.TextAnalyticsPipeline` with the batch
entry points the serve layer needs: a whole coalesced batch of
requests runs through the cross-request kernels
(``pipeline.analyze_batch`` → the one-pass annotation engine's merged
dictionary scan, ``tag_batch``, and feature-shared ``predict_batch``)
in one call.  Results are plain JSON-able dicts, and each request's
result is a pure function of its ``(op, text)`` — independent of what
else shares the batch — which is what makes batched responses
byte-identical to sequential single-request responses.

The session is built **once in the server parent**; forked workers
inherit the frozen kernels, automata, and cache pages copy-on-write.
:meth:`warm` forces every lazily-built structure into existence before
the fork so child processes never privately rebuild shared state.
"""

from __future__ import annotations

from typing import Sequence

from repro.annotations import Document
from repro.core.pipeline import TextAnalyticsPipeline
from repro.nlp.anno_cache import AnnotationCache

#: Round-trippable float precision for probabilities in responses.
_PROB_DIGITS = 12


class ExtractionSession:
    """Batch-capable extraction operations over one pipeline.

    ``annotation_cache`` (an AnnotationCache or directory path)
    optionally (re)wires the pipeline's POS/NER taggers to a cache for
    the session's lifetime — the serve path wants the cache even when
    the pipeline was built without one; :meth:`close` flushes it and
    restores the prior wiring.
    """

    def __init__(self, pipeline: TextAnalyticsPipeline,
                 annotation_cache: "AnnotationCache | str | None" = None,
                 ) -> None:
        self.pipeline = pipeline
        self._prior_caches: list = []
        if annotation_cache is not None:
            if not isinstance(annotation_cache, AnnotationCache):
                annotation_cache = AnnotationCache(annotation_cache)
            self._install_cache(annotation_cache)
            self.annotation_cache = annotation_cache
        else:
            self.annotation_cache = pipeline.pos_tagger.annotation_cache

    def _install_cache(self, cache: AnnotationCache) -> None:
        pipeline = self.pipeline
        taggers = [pipeline.pos_tagger,
                   *pipeline.ml_taggers.values()]
        self._prior_caches = [(tagger, tagger.annotation_cache)
                              for tagger in taggers]
        for tagger in taggers:
            tagger.annotation_cache = cache

    def close(self) -> None:
        """Flush the session cache and restore prior tagger wiring."""
        if self.annotation_cache is not None:
            self.annotation_cache.flush()
        for tagger, prior in self._prior_caches:
            tagger.annotation_cache = prior
        self._prior_caches = []

    def warm(self) -> None:
        """Build every lazy structure now (pre-fork).

        Fingerprints, frozen CRF weights, and the exact-match POS memo
        for common tokens are all computed on first use; doing that in
        the parent means forked workers share them copy-on-write
        instead of rebuilding per process.
        """
        pipeline = self.pipeline
        pipeline.pos_tagger.fingerprint()
        for tagger in pipeline.ml_taggers.values():
            tagger.fingerprint()  # freezes the CRF if it is not yet
        pipeline.classifier.precompute()
        # One tiny end-to-end run compiles whatever else is lazy
        # (automaton state, linguistics regexes, numpy buffers).
        self.run_batch([("extract", "Warmup sentence one."),
                        ("annotate", "Warmup sentence two."),
                        ("classify", "Warmup sentence three.")])

    # -- operations ----------------------------------------------------------

    def run_batch(self, requests: Sequence[tuple[str, str]],
                  ) -> list[dict]:
        """Execute one coalesced batch of ``(op, text)`` requests.

        Requests are grouped by op (preserving order within each op),
        each group runs through its batch kernel, and results return
        in the original request order.  A failed request yields an
        ``{"_error": ...}`` marker rather than poisoning the batch.
        """
        results: list[dict | None] = [None] * len(requests)
        groups: dict[str, list[int]] = {}
        for index, (op, _text) in enumerate(requests):
            groups.setdefault(op, []).append(index)
        for op, indices in groups.items():
            texts = [requests[index][1] for index in indices]
            try:
                handler = getattr(self, f"{op}_batch")
            except AttributeError:
                for index in indices:
                    results[index] = {"_error": f"unknown op {op!r}"}
                continue
            try:
                outputs = handler(texts)
            except Exception:  # noqa: BLE001 - batch isolation
                outputs = None
                for index, text in zip(indices, texts):
                    results[index] = self._run_single(op, text)
            if outputs is not None:
                for index, output in zip(indices, outputs):
                    results[index] = output
        return results  # type: ignore[return-value]

    def _run_single(self, op: str, text: str) -> dict:
        """Per-request fallback after a batch kernel raised: find the
        offender(s), give everyone else their normal result."""
        try:
            return getattr(self, f"{op}_batch")([text])[0]
        except Exception as exc:  # noqa: BLE001
            kind = type(exc).__name__
            return {"_error": f"{kind}: {exc}"}

    def extract_batch(self, texts: Sequence[str]) -> list[dict]:
        """Entity extraction (dictionary + ML) over a batch of texts."""
        documents = [Document(doc_id="serve", text=text)
                     for text in texts]
        self.pipeline.analyze_batch(documents)
        outputs = []
        for document in documents:
            entities = [{"text": m.text, "start": m.start,
                         "end": m.end, "type": m.entity_type,
                         "method": m.method}
                        for m in document.entities]
            outputs.append({
                "entities": entities,
                "sentences": len(document.sentences),
                "tokens": sum(len(s.tokens)
                              for s in document.sentences)})
        return outputs

    def annotate_batch(self, texts: Sequence[str]) -> list[dict]:
        """Sentence/token/POS annotation over a batch of texts."""
        documents = [Document(doc_id="serve", text=text)
                     for text in texts]
        for document in documents:
            self.pipeline.preprocess(document)
        self.pipeline._pos_tag_documents(documents)
        outputs = []
        for document in documents:
            sentences = []
            for sentence in document.sentences:
                sentences.append({
                    "start": sentence.start, "end": sentence.end,
                    "tokens": [[token.text, token.pos]
                               for token in sentence.tokens]})
            output = {"sentences": sentences}
            crashes = document.meta.get("pos_crashes", 0)
            if crashes:
                output["pos_crashes"] = crashes
            outputs.append(output)
        return outputs

    def classify_batch(self, texts: Sequence[str]) -> list[dict]:
        """Relevance classification over a batch of texts."""
        classifier = self.pipeline.classifier
        outputs = []
        for text in texts:
            probability = classifier.probability(text)
            outputs.append({
                "relevant": probability >= classifier.decision_threshold,
                "probability": round(probability, _PROB_DIGITS)})
        return outputs
