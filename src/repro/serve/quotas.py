"""Per-tenant token quotas (classic token buckets).

Admission control for the serve layer: each tenant owns a bucket that
refills at ``rate`` tokens/second up to ``burst`` capacity; a request
spends tokens equal to its whitespace token count.  A request that
can't be paid for is rejected with a non-retryable-now ``quota``
response (the client may retry after backoff — unlike ``shed``, the
rejection is budget, not load).

The clock is injectable, so quota decisions are deterministic under
test: advance a fake clock, observe exact refill amounts.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Mapping


def count_tokens(text: str) -> int:
    """Whitespace token count — the unit quotas and batch token
    targets are denominated in (cheap, tokenizer-independent)."""
    return len(text.split())


class TokenBucket:
    """One tenant's budget: ``rate`` tokens/second, ``burst`` cap."""

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("quota rate and burst must be > 0")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated_at: float | None = None

    def admit(self, tokens: int, now: float) -> bool:
        if self.updated_at is not None:
            elapsed = max(0.0, now - self.updated_at)
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated_at = now
        if tokens > self.tokens:
            return False
        self.tokens -= tokens
        return True


def parse_quota_spec(spec: str) -> tuple[str | None, float, float]:
    """Parse ``[tenant=]rate:burst`` (CLI form).

    Returns ``(tenant_or_None, rate, burst)``; ``rate:burst`` alone
    configures the default quota applied to unlisted tenants.
    """
    tenant: str | None = None
    body = spec
    if "=" in spec:
        tenant, body = spec.split("=", 1)
        tenant = tenant.strip()
        if not tenant:
            raise ValueError(f"empty tenant in quota spec {spec!r}")
    try:
        rate_text, burst_text = body.split(":", 1)
        rate, burst = float(rate_text), float(burst_text)
    except ValueError as exc:
        raise ValueError(
            f"quota spec {spec!r} must be [tenant=]rate:burst") from exc
    return tenant, rate, burst


class QuotaManager:
    """Thread-safe token buckets keyed by tenant.

    ``quotas`` maps tenant -> (rate, burst); ``default`` (rate, burst)
    applies to tenants not listed, each getting its *own* bucket on
    first sight.  With neither, every request is admitted — quotas are
    opt-in.
    """

    def __init__(self, quotas: Mapping[str, tuple[float, float]]
                 | None = None,
                 default: tuple[float, float] | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._default = default
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._configured: dict[str, tuple[float, float]] = dict(
            quotas or {})
        self.rejections = 0

    def configure(self, tenant: str, rate: float, burst: float) -> None:
        with self._lock:
            self._configured[tenant] = (rate, burst)
            self._buckets.pop(tenant, None)

    def admit(self, tenant: str, tokens: int) -> bool:
        """Spend ``tokens`` from the tenant's bucket; False = reject."""
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                spec = self._configured.get(tenant, self._default)
                if spec is None:
                    return True
                bucket = TokenBucket(*spec)
                self._buckets[tenant] = bucket
            admitted = bucket.admit(tokens, self._clock())
            if not admitted:
                self.rejections += 1
            return admitted

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Current bucket levels per tenant (for the stats op)."""
        with self._lock:
            return {tenant: {"rate": bucket.rate, "burst": bucket.burst,
                             "tokens": round(bucket.tokens, 6)}
                    for tenant, bucket in sorted(self._buckets.items())}
