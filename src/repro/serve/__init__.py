"""Long-lived batched extraction serving.

The paper frames domain-specific information extraction as a service
for many users, but a batch CLI pays model training/loading, automaton
builds, and cache warmup on every invocation.  This package keeps all
of that resident: ``repro serve`` builds the pipeline once, forks
workers that share the frozen kernels copy-on-write, and amortizes
per-request overhead by coalescing concurrent requests into batches
that flow through the batch kernels (``HmmPosTagger.tag_batch``,
``LinearChainCrf.predict_batch``) as a unit.

Layering (each module usable on its own):

* :mod:`repro.serve.protocol` — newline-delimited JSON wire format;
* :mod:`repro.serve.coalescer` — deterministic batch-closing policy
  and the thread-safe request queue that applies it;
* :mod:`repro.serve.quotas` — per-tenant token buckets;
* :mod:`repro.serve.session` — reusable extraction session wrapping a
  trained pipeline with batch entry points per operation;
* :mod:`repro.serve.server` — the batch engine (admission → coalesce
  → dispatch to COW-forked workers) and its socket frontend;
* :mod:`repro.serve.loadgen` — closed-loop load generator used by the
  CI smoke job and ``benchmarks/bench_serve.py``.
"""

from repro.serve.coalescer import BatchPolicy, RequestCoalescer
from repro.serve.quotas import QuotaManager
from repro.serve.server import BatchEngine, ExtractionServer, ServeConfig
from repro.serve.session import ExtractionSession

__all__ = [
    "BatchEngine",
    "BatchPolicy",
    "ExtractionServer",
    "ExtractionSession",
    "QuotaManager",
    "RequestCoalescer",
    "ServeConfig",
]
