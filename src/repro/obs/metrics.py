"""Unified metrics model: counters, gauges, histograms, one registry.

The repo grew four generations of ad-hoc counters (``ExecutionReport``
throughput, ``CrawlResult.stage_seconds``/``failure_reasons``, cache
hit/miss snapshots) with no common model and no export format.  This
module is the common model.  Three metric kinds:

* :class:`Counter` — a monotone sum (int or float increments);
* :class:`Gauge` — a last-write-wins sample;
* :class:`Histogram` — a fixed-bucket-layout distribution.  Bucket
  bounds are fixed at registration, so histograms with the same name
  always merge exactly (count arrays add element-wise) — merging is
  associative and commutative on the counts, which is what makes
  multi-worker aggregation order-insensitive.

Every metric is registered as either **deterministic** (the default) or
**volatile**.  Deterministic metrics must be pure functions of the
logical computation — page counts, simulated-clock seconds, failure
reasons — and are the only ones included in checkpoints and in the
default export, which is why a crawl's exported metrics are
byte-identical at any worker count and across kill+resume.  Volatile
metrics (wall-clock timings, pool/chunk attribution, anything that
depends on the physical execution) live in the same registry but are
excluded from the deterministic export unless explicitly requested.

Aggregation across fork workers follows the crawl loop's
``DocumentOutcome`` rule: workers accumulate deltas, the coordinator
merges them in batch order (:meth:`MetricsRegistry.merge`), so enabling
metrics never perturbs results and the output is identical at any
worker count.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

#: Default histogram bucket upper bounds (seconds-oriented, log-ish
#: spacing).  An implicit +inf overflow bucket always follows the last
#: bound.  Fixed layouts are the merge-exactness guarantee: two
#: histograms of the same metric always have identical bucket arrays.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    """Canonical, hashable, sorted form of a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotone sum.  ``inc`` accepts ints or floats."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """A last-write-wins sample."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A fixed-bucket-layout distribution.

    ``counts`` has ``len(bounds) + 1`` slots; the last is the +inf
    overflow bucket.  An observation lands in the first bucket whose
    upper bound is >= the value.

    ``sum`` is accumulated in integer nanosecond-scale units rather
    than as a running float: float addition is not associative, so a
    float total would depend on the order observations arrive and on
    how partial histograms are grouped before :meth:`merge` — exactly
    what varies between a 1-shard and an N-shard crawl.  Integer
    addition is associative and commutative, so the exported ``sum``
    is invariant under any regrouping of the same observations.
    """

    _SCALE = 1_000_000_000

    __slots__ = ("bounds", "counts", "_sum_units")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be a non-empty, "
                             "strictly increasing sequence")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self._sum_units: int = 0

    @property
    def count(self) -> int:
        """Total observations — always the sum of the buckets."""
        return sum(self.counts)

    @property
    def sum(self) -> float:
        return self._sum_units / self._SCALE

    @sum.setter
    def sum(self, value: float) -> None:
        self._sum_units = round(value * self._SCALE)

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self._sum_units += round(value * self._SCALE)

    def merge(self, other: "Histogram") -> None:
        """Add another histogram of the same layout into this one."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bucket layouts: "
                f"{self.bounds} vs {other.bounds}")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self._sum_units += other._sum_units


class _Family:
    """Registration metadata shared by all label sets of one name."""

    __slots__ = ("kind", "volatile", "bounds")

    def __init__(self, kind: str, volatile: bool,
                 bounds: tuple[float, ...] | None = None) -> None:
        self.kind = kind
        self.volatile = volatile
        self.bounds = bounds


class MetricsRegistry:
    """One process-wide (or component-wide) home for every metric.

    Metrics are addressed by ``(name, labels)``; the first access with
    a given name fixes its kind (counter / gauge / histogram), its
    volatility, and — for histograms — its bucket layout.  Later
    accesses must agree.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._metrics: dict[tuple[str, _LabelKey],
                            Counter | Gauge | Histogram] = {}

    # -- registration / access ------------------------------------------------

    def counter(self, name: str, *, volatile: bool = False,
                **labels: Any) -> Counter:
        return self._get(name, "counter", volatile, labels)

    def gauge(self, name: str, *, volatile: bool = False,
              **labels: Any) -> Gauge:
        return self._get(name, "gauge", volatile, labels)

    def histogram(self, name: str, *,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  volatile: bool = False, **labels: Any) -> Histogram:
        return self._get(name, "histogram", volatile, labels,
                         bounds=tuple(float(b) for b in buckets))

    def _get(self, name: str, kind: str, volatile: bool,
             labels: Mapping[str, Any],
             bounds: tuple[float, ...] | None = None):
        family = self._families.get(name)
        if family is None:
            family = _Family(kind, volatile, bounds)
            self._families[name] = family
        else:
            if family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {family.kind}, not a {kind}")
            if family.volatile != volatile:
                raise ValueError(
                    f"metric {name!r} was registered with "
                    f"volatile={family.volatile}")
            if kind == "histogram" and bounds != family.bounds:
                raise ValueError(
                    f"metric {name!r} has a fixed bucket layout "
                    f"{family.bounds}; got {bounds}")
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            if kind == "counter":
                metric = Counter()
            elif kind == "gauge":
                metric = Gauge()
            else:
                metric = Histogram(bounds or DEFAULT_BUCKETS)
            self._metrics[key] = metric
        return metric

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def value_of(self, name: str, **labels: Any) -> float | None:
        """Current value of a counter/gauge (None if never touched)."""
        metric = self._metrics.get((name, _label_key(labels)))
        if metric is None or isinstance(metric, Histogram):
            return None
        return metric.value

    def labels_of(self, name: str) -> list[dict[str, str]]:
        """Every label set recorded under ``name``, sorted."""
        return [dict(label_key) for metric_name, label_key
                in sorted(self._metrics) if metric_name == name]

    def histogram_of(self, name: str, **labels: Any) -> Histogram | None:
        """The histogram at ``(name, labels)``, or None if absent (or
        the name is a counter/gauge).  Read-only access for renderers
        that need bucket counts, e.g. percentile estimation."""
        metric = self._metrics.get((name, _label_key(labels)))
        return metric if isinstance(metric, Histogram) else None

    # -- snapshot / merge -----------------------------------------------------

    def to_dict(self, include_volatile: bool = False) -> dict[str, Any]:
        """Canonical nested snapshot, sorted by (name, labels).

        The deterministic subset (the default) is what checkpoints
        persist and what the byte-identity guarantees cover.
        """
        entries = []
        for (name, label_key), metric in sorted(self._metrics.items()):
            family = self._families[name]
            if family.volatile and not include_volatile:
                continue
            entry: dict[str, Any] = {
                "name": name, "type": family.kind,
                "labels": dict(label_key)}
            if family.volatile:
                entry["volatile"] = True
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.bounds)
                entry["counts"] = list(metric.counts)
                entry["sum"] = metric.sum
                entry["count"] = metric.count
            else:
                entry["value"] = metric.value
            entries.append(entry)
        return {"metrics": entries}

    def load_dict(self, payload: Mapping[str, Any]) -> None:
        """Restore a snapshot (checkpoint resume).  Existing metrics
        with the same address are overwritten, others kept."""
        for entry in payload.get("metrics", ()):
            name = entry["name"]
            kind = entry["type"]
            volatile = bool(entry.get("volatile", False))
            labels = dict(entry.get("labels", {}))
            if kind == "histogram":
                metric = self.histogram(
                    name, buckets=entry["buckets"], volatile=volatile,
                    **labels)
                metric.counts = [int(c) for c in entry["counts"]]
                metric.sum = float(entry["sum"])
            elif kind == "counter":
                self.counter(name, volatile=volatile, **labels).value = \
                    entry["value"]
            else:
                self.gauge(name, volatile=volatile, **labels).value = \
                    entry["value"]

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's metrics into this one.

        Counters and histograms add (associative and commutative on
        counts); gauges take the other side's value (last write wins —
        callers merge worker deltas in batch order, so "last" is
        well-defined).  Used for the accumulate-in-worker /
        merge-in-batch-order aggregation rule.
        """
        for (name, label_key), metric in sorted(other._metrics.items()):
            family = other._families[name]
            labels = dict(label_key)
            if isinstance(metric, Histogram):
                self.histogram(name, buckets=metric.bounds,
                               volatile=family.volatile,
                               **labels).merge(metric)
            elif family.kind == "counter":
                self.counter(name, volatile=family.volatile,
                             **labels).value += metric.value
            else:
                self.gauge(name, volatile=family.volatile,
                           **labels).value = metric.value

    # -- export ---------------------------------------------------------------

    def export_lines(self, include_volatile: bool = False) -> list[str]:
        """JSON-lines export, one canonical line per metric.

        Lines are sorted by (name, labels) and serialized with sorted
        keys, so two registries with equal contents export
        byte-identical files.
        """
        return [json.dumps(entry, sort_keys=True)
                for entry in self.to_dict(include_volatile)["metrics"]]

    def write_jsonl(self, path: str | Path,
                    include_volatile: bool = False) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = self.export_lines(include_volatile)
        path.write_text("\n".join(lines) + ("\n" if lines else ""),
                        encoding="utf-8")
        return path

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "MetricsRegistry":
        registry = cls()
        entries = [json.loads(line) for line in lines if line.strip()]
        registry.load_dict({"metrics": entries})
        return registry

    @classmethod
    def read_jsonl(cls, path: str | Path) -> "MetricsRegistry":
        text = Path(path).read_text(encoding="utf-8")
        return cls.from_lines(text.splitlines())
