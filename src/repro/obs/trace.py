"""Span-based tracing with an injectable clock.

A :class:`Span` is one timed region with a name, a parent, and
arbitrary JSON-serializable attributes; a :class:`Tracer` hands out
spans as context managers and keeps every finished span in completion
order.  The clock is injectable:

* ``time.perf_counter`` (the default) gives wall-clock profiling
  traces;
* the crawl loop injects the **simulated clock**, whose trajectory is
  a pure function of the crawl inputs — so crawl traces are
  byte-identical at any worker count and across kill+resume;
* tests inject :class:`TickClock`, a monotone integer counter, so
  trace exports are byte-stable regardless of machine speed.

Span ids are sequential integers assigned at span *open* (open order
is deterministic whenever the control flow is), and the id counter is
part of :meth:`Tracer.state_dict`, so a checkpoint-resumed trace
continues with the same ids the uninterrupted run would have used.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping


class TickClock:
    """A deterministic clock: every read returns the next integer."""

    def __init__(self, start: int = 0) -> None:
        self._tick = start

    def __call__(self) -> float:
        tick = self._tick
        self._tick += 1
        return float(tick)


@dataclass
class Span:
    """One timed region.  ``end`` is None while the span is open."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on an open span."""
        self.attrs.update(attrs)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {"span_id": self.span_id, "parent_id": self.parent_id,
                "name": self.name, "start": self.start, "end": self.end,
                "attrs": dict(self.attrs)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Span":
        return cls(span_id=payload["span_id"],
                   parent_id=payload["parent_id"],
                   name=payload["name"], start=payload["start"],
                   end=payload["end"],
                   attrs=dict(payload.get("attrs", {})))


class _NullSpan:
    """The do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


@contextmanager
def maybe_span(tracer: "Tracer | None", name: str,
               **attrs: Any) -> Iterator[Span | _NullSpan]:
    """``tracer.span(...)`` when tracing is on, a no-op span otherwise.

    Lets instrumented code keep one code path with near-zero cost when
    tracing is disabled.
    """
    if tracer is None:
        yield NULL_SPAN
    else:
        with tracer.span(name, **attrs) as span:
            yield span


class Tracer:
    """Hands out nested spans and records them in completion order."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 ) -> None:
        self.clock = clock
        self.finished: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 0

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        span = Span(span_id=self._next_id,
                    parent_id=(self._stack[-1].span_id
                               if self._stack else None),
                    name=name, start=self.clock(), attrs=dict(attrs))
        self._next_id += 1
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end = self.clock()
            self.finished.append(span)

    # -- export ---------------------------------------------------------------

    def export_lines(self) -> list[str]:
        """Canonical JSON-lines export of the finished spans."""
        return [json.dumps(span.to_dict(), sort_keys=True)
                for span in self.finished]

    def write_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = self.export_lines()
        path.write_text("\n".join(lines) + ("\n" if lines else ""),
                        encoding="utf-8")
        return path

    # -- checkpoint support ---------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Finished spans + id counter (open spans are never part of a
        consistent state — checkpoints happen at span-free boundaries)."""
        return {"next_id": self._next_id,
                "spans": [span.to_dict() for span in self.finished]}

    def load_state(self, payload: Mapping[str, Any]) -> None:
        self.finished = [Span.from_dict(entry)
                         for entry in payload.get("spans", ())]
        self._next_id = int(payload.get("next_id", len(self.finished)))
        self._stack = []
