"""Human-readable rendering of exported metrics and traces.

``repro report`` turns a metrics JSON-lines file (and optionally a
trace file) back into the operator-facing summary the crawl CLI
prints live: pages fetched, harvest rate, per-stage breakdown,
failures by reason.  The formatting helpers are shared with
``repro.cli`` so the live printout and the offline report can never
drift apart.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.obs.metrics import MetricsRegistry

#: Pipeline stages in execution order (used for stable stage tables).
CRAWL_STAGES = ("fetch", "filters", "repair", "parse", "boilerplate",
                "classify")


def format_stage_breakdown(stage_pages: Mapping[str, int],
                           stage_seconds: Mapping[str, float],
                           mode: str = "") -> list[str]:
    """The per-stage table the crawl CLI prints.

    ``stage_seconds`` may be empty (deterministic metric exports carry
    no wall-clock); the seconds/rate columns are omitted then.
    """
    if not stage_pages:
        return []
    timed = bool(stage_seconds)
    suffix = f" ({mode})" if mode else ""
    lines = [f"stage breakdown{suffix}"
             + ("; seconds are worker-attributed wall time:" if timed
                else ":")]
    known = [s for s in CRAWL_STAGES if s in stage_pages]
    known += sorted(set(stage_pages) - set(CRAWL_STAGES))
    for stage in known:
        pages = stage_pages[stage]
        if timed:
            seconds = stage_seconds.get(stage, 0.0)
            rate = pages / seconds if seconds > 0 else 0.0
            lines.append(f"  {stage:<12} {pages:>6} pages  "
                         f"{seconds:>8.3f} s  {rate:>9.0f} pages/s")
        else:
            lines.append(f"  {stage:<12} {pages:>6} pages")
    return lines


def format_failures(failure_reasons: Mapping[str, int],
                    fetch_failures: int, retries: int,
                    hosts_quarantined: int) -> list[str]:
    """The failure summary the crawl CLI prints."""
    if not failure_reasons:
        return []
    reasons = ", ".join(f"{reason} {count}" for reason, count
                        in sorted(failure_reasons.items()))
    return [f"failures by reason: {reasons}",
            f"fetch failures {fetch_failures} | retries {retries} | "
            f"hosts quarantined {hosts_quarantined}"]


def format_recrawl(replay_hits: int, fetches_skipped: int,
                   pages_changed: int,
                   pages_near_unchanged: int) -> list[str]:
    """The incremental-recrawl summary line (empty on cold crawls)."""
    if not (replay_hits or fetches_skipped or pages_changed):
        return []
    return [f"recrawl: {replay_hits} outcomes replayed "
            f"({fetches_skipped} fetches skipped) | "
            f"{pages_changed} pages changed "
            f"({pages_near_unchanged} near-unchanged)"]


def _counter_values(registry: MetricsRegistry, name: str,
                    label: str) -> dict[str, float]:
    """{label_value: counter value} for every label set of ``name``."""
    values: dict[str, float] = {}
    for labels in registry.labels_of(name):
        if label in labels:
            values[labels[label]] = registry.value_of(name, **labels) or 0
    return values


def render_crawl_summary(registry: MetricsRegistry) -> list[str]:
    """Rebuild the ``repro crawl`` summary from exported metrics.

    Returns [] when the registry carries no crawl metrics.
    """
    pages = registry.value_of("crawl.pages_fetched")
    if pages is None:
        return []
    clock = registry.value_of("crawl.clock_seconds") or 0.0
    rate = pages / clock if clock > 0 else 0.0
    relevant = int(registry.value_of("crawl.relevant_pages") or 0)
    irrelevant = int(registry.value_of("crawl.irrelevant_pages") or 0)
    classified = relevant + irrelevant
    harvest = relevant / classified if classified else 0.0
    lines = [
        f"fetched {int(pages)} pages in {clock:.0f} simulated seconds "
        f"({rate:.1f} docs/s)",
        f"relevant {relevant} | irrelevant {irrelevant} | "
        f"harvest {harvest:.0%}",
    ]
    lines += format_recrawl(
        replay_hits=int(registry.value_of("crawl.replay_hits") or 0),
        fetches_skipped=int(
            registry.value_of("crawl.fetches_skipped") or 0),
        pages_changed=int(
            registry.value_of("crawl.pages_changed") or 0),
        pages_near_unchanged=int(
            registry.value_of("crawl.pages_near_unchanged") or 0))
    stage_pages = {stage: int(value) for stage, value in
                   _counter_values(registry, "crawl.stage_pages",
                                   "stage").items()}
    stage_seconds = _counter_values(registry, "crawl.stage_wall_seconds",
                                    "stage")
    lines += format_stage_breakdown(stage_pages, stage_seconds)
    failures = {reason: int(value) for reason, value in
                _counter_values(registry, "crawl.failures",
                                "reason").items()}
    lines += format_failures(
        failures,
        fetch_failures=int(registry.value_of("crawl.fetch_failures") or 0),
        retries=int(registry.value_of("crawl.retries") or 0),
        hosts_quarantined=int(
            registry.value_of("crawl.hosts_quarantined") or 0))
    return lines


def _histogram_percentile(histogram: Any, q: float) -> float:
    """Percentile estimate from cumulative bucket counts (upper bound
    of the bucket the q-th observation falls in; +Inf bucket reports
    the largest finite bound)."""
    total = histogram.count
    if not total:
        return 0.0
    target = max(1, -(-int(q * total) // 100))  # ceil(q% of total)
    seen = 0
    for bound, count in zip(histogram.bounds, histogram.counts):
        seen += count
        if seen >= target:
            return bound
    return histogram.bounds[-1] if histogram.bounds else 0.0


def _histogram_bars(histogram: Any, unit_scale: float = 1.0,
                    unit: str = "", width: int = 30) -> list[str]:
    """ASCII bucket histogram, one line per non-empty bucket."""
    if not histogram.count:
        return []
    peak = max(histogram.counts)
    lines = []
    for bound, count in zip(list(histogram.bounds) + [float("inf")],
                            histogram.counts):
        if not count:
            continue
        bar = "#" * max(1, round(count / peak * width))
        bound_text = ("+Inf" if bound == float("inf")
                      else f"{bound * unit_scale:g}")
        lines.append(f"  <= {bound_text:>8}{unit}  {count:>8}  {bar}")
    return lines


def render_serve_summary(registry: MetricsRegistry) -> list[str]:
    """The ``repro serve`` section: request counts per op, latency
    histogram with p50/p99, batch-size histogram, shed/quota/worker
    counters.  Returns [] when the registry carries no serve metrics.
    """
    requests = _counter_values(registry, "serve.requests", "op")
    if not requests:
        return []
    total = int(sum(requests.values()))
    per_op = " | ".join(f"{op} {int(count)}" for op, count
                        in sorted(requests.items()))
    lines = [f"serve: {total} requests ({per_op})"]
    batches = int(registry.value_of("serve.batches") or 0)
    multi = int(registry.value_of("serve.multi_request_batches") or 0)
    if batches:
        lines.append(f"batches {batches} ({multi} multi-request, "
                     f"{total / batches:.1f} requests/batch mean)")
    shed = int(registry.value_of("serve.shed") or 0)
    quota = int(registry.value_of("serve.quota_rejected") or 0)
    failures = int(registry.value_of("serve.worker_failures") or 0)
    if shed or quota or failures:
        lines.append(f"shed {shed} | quota-rejected {quota} | "
                     f"worker failures {failures}")
    latency = registry.histogram_of("serve.latency_seconds")
    if latency is not None and latency.count:
        p50 = _histogram_percentile(latency, 50) * 1e3
        p99 = _histogram_percentile(latency, 99) * 1e3
        lines.append(f"latency: p50 <= {p50:g} ms, p99 <= {p99:g} ms "
                     f"({latency.count} observations)")
        lines += _histogram_bars(latency, unit_scale=1e3, unit=" ms")
    batch_size = registry.histogram_of("serve.batch_size")
    if batch_size is not None and batch_size.count:
        lines.append("batch size:")
        lines += _histogram_bars(batch_size)
    return lines


def render_metrics(registry: MetricsRegistry,
                   include_volatile: bool = True) -> list[str]:
    """Generic dump: one line per counter/gauge, a summary line per
    histogram — the fallback for non-crawl metric files."""
    lines: list[str] = []
    for entry in registry.to_dict(include_volatile)["metrics"]:
        labels = entry["labels"]
        label_text = ("{" + ", ".join(f"{k}={v}" for k, v
                                      in sorted(labels.items())) + "}"
                      if labels else "")
        name = f"{entry['name']}{label_text}"
        if entry["type"] == "histogram":
            count = entry["count"]
            mean = entry["sum"] / count if count else 0.0
            lines.append(f"{name:<52} histogram  count {count:>8}  "
                         f"sum {entry['sum']:>12.3f}  mean {mean:.4f}")
        else:
            value = entry["value"]
            rendered = (f"{value:>12.3f}" if isinstance(value, float)
                        and value != int(value) else f"{int(value):>12}")
            lines.append(f"{name:<52} {entry['type']:<9} {rendered}")
    return lines


def render_trace_summary(lines: Iterable[str]) -> list[str]:
    """Aggregate a trace JSONL export: span counts and total duration
    per span name, in first-seen order."""
    totals: dict[str, list[float]] = defaultdict(lambda: [0, 0.0])
    order: list[str] = []
    for line in lines:
        if not line.strip():
            continue
        span = json.loads(line)
        name = span["name"]
        if name not in totals:
            order.append(name)
        bucket = totals[name]
        bucket[0] += 1
        if span.get("end") is not None:
            bucket[1] += span["end"] - span["start"]
    out = [f"{'span':<24} {'count':>7} {'total':>12}"]
    for name in order:
        count, total = totals[name]
        out.append(f"{name:<24} {int(count):>7} {total:>12.3f}")
    return out


def render_report(metrics_path: str | Path,
                  trace_path: str | Path | None = None) -> list[str]:
    """The full ``repro report`` output for a metrics (+trace) file."""
    registry = MetricsRegistry.read_jsonl(metrics_path)
    lines = render_crawl_summary(registry)
    serve_lines = render_serve_summary(registry)
    if lines and serve_lines:
        lines.append("")
    lines += serve_lines
    if lines:
        lines.append("")
    lines += render_metrics(registry)
    if trace_path is not None:
        trace_lines = Path(trace_path).read_text(
            encoding="utf-8").splitlines()
        lines.append("")
        lines += render_trace_summary(trace_lines)
    return lines


def publish_report_metrics(report: Any,
                           registry: MetricsRegistry) -> None:
    """Mirror an :class:`~repro.dataflow.executor.ExecutionReport`'s
    per-stage stats onto a registry (see
    ``ExecutionReport.publish_to``, which delegates here to keep the
    dataflow layer's import surface one-directional)."""
    registry.counter("dataflow.executions").inc()
    registry.counter("dataflow.total_seconds", volatile=True).inc(
        report.total_seconds)
    for stats in report.operator_stats:
        stage = stats.name
        registry.counter("dataflow.stage_records_in", stage=stage).inc(
            stats.records_in)
        registry.counter("dataflow.stage_records_out", stage=stage).inc(
            stats.records_out)
        registry.counter("dataflow.stage_seconds", stage=stage,
                         volatile=True).inc(stats.seconds)
        if stats.cache_hits or stats.cache_misses:
            registry.counter("anno_cache.stage_hits", stage=stage,
                             volatile=True).inc(stats.cache_hits)
            registry.counter("anno_cache.stage_misses", stage=stage,
                             volatile=True).inc(stats.cache_misses)
