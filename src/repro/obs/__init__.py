"""Unified observability: metrics registry, span tracing, exporters.

See docs/observability.md for the metric naming scheme, the
deterministic-vs-volatile split, the trace schema, and the CLI entry
points (``repro crawl --metrics-out``, ``repro flow --trace``,
``repro report``).
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry,
)
from repro.obs.report import (
    render_crawl_summary, render_metrics, render_report,
    render_trace_summary,
)
from repro.obs.trace import Span, TickClock, Tracer, maybe_span

__all__ = [
    "DEFAULT_BUCKETS", "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "Span", "TickClock", "Tracer", "maybe_span",
    "render_crawl_summary", "render_metrics", "render_report",
    "render_trace_summary",
]
