"""Shared annotation data model.

Every stage of the pipeline (sentence detection, tokenization, POS
tagging, linguistic analysis, NER) communicates through these types.
Offsets are always character offsets into the *document* text, so
annotations produced by different tools compose without re-alignment —
this mirrors the Sopremo annotation scheme the paper's IE package uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class Span:
    """Half-open character interval ``[start, end)`` in document text."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid span [{self.start}, {self.end})")

    def __len__(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "Span") -> bool:
        return self.start < other.end and other.start < self.end

    def contains(self, other: "Span") -> bool:
        return self.start <= other.start and other.end <= self.end


@dataclass(frozen=True)
class Token:
    """A token with its document offsets and (optional) POS tag."""

    text: str
    start: int
    end: int
    pos: str = ""

    @property
    def span(self) -> Span:
        return Span(self.start, self.end)

    def with_pos(self, pos: str) -> "Token":
        # Direct construction: ``dataclasses.replace`` re-derives the
        # field list per call, and this runs once per token per POS
        # pass.
        return Token(self.text, self.start, self.end, pos)


@dataclass(frozen=True)
class EntityMention:
    """A recognized entity mention.

    ``entity_type`` is one of ``gene``, ``drug``, ``disease``;
    ``method`` records which recognizer produced it (``dictionary`` or
    ``ml``); ``term_id`` links dictionary hits back to their entry.
    """

    text: str
    start: int
    end: int
    entity_type: str
    method: str = ""
    term_id: str = ""
    score: float = 1.0

    @property
    def span(self) -> Span:
        return Span(self.start, self.end)


@dataclass(frozen=True)
class LinguisticMention:
    """A linguistic phenomenon found by regex analysis.

    ``category`` is ``negation``, ``pronoun``, or ``parenthesis``;
    ``subtype`` refines it (e.g. the pronoun class).
    """

    text: str
    start: int
    end: int
    category: str
    subtype: str = ""


@dataclass
class Sentence:
    """A sentence span with its tokens and sentence-local annotations.

    ``tokens`` distinguishes *never tokenized* (``None``) from
    *tokenized, empty* (``[]``): consumers that lazily tokenize
    (:mod:`repro.ner.taggers`) only recompute in the ``None`` state,
    so a legitimately empty token list is never re-derived.
    """

    start: int
    end: int
    text: str
    tokens: list[Token] | None = None
    entities: list[EntityMention] = field(default_factory=list)

    def __len__(self) -> int:
        return self.end - self.start


@dataclass
class Document:
    """A document flowing through the pipeline.

    ``text`` is the (net) text being analyzed; ``raw`` optionally keeps
    the original payload (e.g. HTML) before cleansing; ``meta`` carries
    provenance (URL, corpus name, content type, ...).  Annotation
    layers are filled by pipeline operators.

    ``sentences`` uses ``None`` for *never split* and ``[]`` for
    *split, no sentences found* (e.g. empty net text), so lazy
    consumers can reuse a computed-but-empty result instead of
    re-running the splitter.
    """

    doc_id: str
    text: str
    raw: str = ""
    meta: dict[str, Any] = field(default_factory=dict)
    sentences: list[Sentence] | None = None
    entities: list[EntityMention] = field(default_factory=list)
    linguistics: list[LinguisticMention] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.text)

    def iter_tokens(self) -> Iterator[Token]:
        for sentence in self.sentences or ():
            yield from sentence.tokens or ()

    def entities_of(self, entity_type: str,
                    method: str | None = None) -> list[EntityMention]:
        return [e for e in self.entities
                if e.entity_type == entity_type
                and (method is None or e.method == method)]

    def copy_shallow(self) -> "Document":
        return Document(
            doc_id=self.doc_id, text=self.text, raw=self.raw,
            meta=dict(self.meta),
            sentences=(None if self.sentences is None
                       else list(self.sentences)),
            entities=list(self.entities),
            linguistics=list(self.linguistics),
        )
