"""Persistence: JSONL document store and fact-database export.

The point of the paper's pipeline is "structured fact databases" from
unstructured text.  This module round-trips annotated documents
through JSONL and exports the extracted facts (entity mentions, name
frequencies, relations) in machine-readable form.
"""

from __future__ import annotations

import csv
import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Iterator

from repro.annotations import (
    Document, EntityMention, LinguisticMention, Sentence, Token,
)


def document_to_dict(document: Document, include_raw: bool = False) -> dict:
    """JSON-serializable form of a document and its annotations."""
    payload = {
        "doc_id": document.doc_id,
        "text": document.text,
        "meta": document.meta,
        "sentences": [{
            "start": s.start, "end": s.end, "text": s.text,
            "tokens": [[t.text, t.start, t.end, t.pos]
                       for t in s.tokens or ()],
        } for s in document.sentences or ()],
        "entities": [{
            "text": m.text, "start": m.start, "end": m.end,
            "entity_type": m.entity_type, "method": m.method,
            "term_id": m.term_id, "score": m.score,
        } for m in document.entities],
        "linguistics": [{
            "text": m.text, "start": m.start, "end": m.end,
            "category": m.category, "subtype": m.subtype,
        } for m in document.linguistics],
    }
    if include_raw:
        payload["raw"] = document.raw
    return payload


def document_from_dict(payload: dict) -> Document:
    """Inverse of :func:`document_to_dict`."""
    document = Document(
        doc_id=payload["doc_id"], text=payload["text"],
        raw=payload.get("raw", ""), meta=dict(payload.get("meta", {})))
    sentences: list[Sentence] = []
    for s in payload.get("sentences", []):
        sentence = Sentence(start=s["start"], end=s["end"], text=s["text"])
        sentence.tokens = [Token(text, start, end, pos)
                           for text, start, end, pos
                           in s.get("tokens", [])] or None
        sentences.append(sentence)
    # The serialized form does not distinguish "never split" from
    # "split, empty" — restore an empty list as the never-computed
    # state (re-splitting empty annotations is output-equivalent).
    document.sentences = sentences or None
    document.entities = [
        EntityMention(text=e["text"], start=e["start"], end=e["end"],
                      entity_type=e["entity_type"],
                      method=e.get("method", ""),
                      term_id=e.get("term_id", ""),
                      score=e.get("score", 1.0))
        for e in payload.get("entities", [])
    ]
    document.linguistics = [
        LinguisticMention(text=m["text"], start=m["start"], end=m["end"],
                          category=m["category"],
                          subtype=m.get("subtype", ""))
        for m in payload.get("linguistics", [])
    ]
    return document


def write_documents(path: str | Path, documents: Iterable[Document],
                    include_raw: bool = False) -> int:
    """Write documents as JSONL; returns the count written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for document in documents:
            handle.write(json.dumps(
                document_to_dict(document, include_raw=include_raw),
                ensure_ascii=False))
            handle.write("\n")
            count += 1
    return count


def read_documents(path: str | Path) -> Iterator[Document]:
    """Stream documents back from a JSONL file."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield document_from_dict(json.loads(line))


class FactDatabase:
    """Accumulates extraction results and exports them.

    * ``entities.jsonl`` — one record per entity mention;
    * ``relations.jsonl`` — one record per extracted relation;
    * ``name_frequencies.csv`` — (entity_type, method, name, frequency).
    """

    def __init__(self) -> None:
        self.entity_records: list[dict] = []
        self.relation_records: list[dict] = []
        self._frequencies: Counter = Counter()

    def add_document(self, document: Document) -> None:
        for mention in document.entities:
            self.entity_records.append({
                "doc_id": document.doc_id, "text": mention.text,
                "start": mention.start, "end": mention.end,
                "entity_type": mention.entity_type,
                "method": mention.method, "term_id": mention.term_id,
            })
            self._frequencies[(mention.entity_type, mention.method,
                               mention.text.lower())] += 1

    def add_relations(self, records: Iterable[dict]) -> None:
        self.relation_records.extend(records)

    @property
    def n_distinct_names(self) -> int:
        return len({(t, name) for (t, _m, name) in self._frequencies})

    def name_frequency_rows(self) -> list[tuple[str, str, str, int]]:
        return sorted(
            ((etype, method, name, count)
             for (etype, method, name), count in self._frequencies.items()),
            key=lambda row: (-row[3], row[0], row[2]))

    def export(self, directory: str | Path) -> dict[str, Path]:
        """Write all artifacts; returns {artifact: path}."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: dict[str, Path] = {}
        entities_path = directory / "entities.jsonl"
        with entities_path.open("w", encoding="utf-8") as handle:
            for record in self.entity_records:
                handle.write(json.dumps(record, ensure_ascii=False) + "\n")
        paths["entities"] = entities_path
        relations_path = directory / "relations.jsonl"
        with relations_path.open("w", encoding="utf-8") as handle:
            for record in self.relation_records:
                handle.write(json.dumps(record, ensure_ascii=False) + "\n")
        paths["relations"] = relations_path
        frequencies_path = directory / "name_frequencies.csv"
        with frequencies_path.open("w", encoding="utf-8",
                                   newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["entity_type", "method", "name", "frequency"])
            writer.writerows(self.name_frequency_rows())
        paths["name_frequencies"] = frequencies_path
        return paths
