"""Shared experiment context.

Building the pipeline (CRF training) and analyzing four corpora is the
expensive part of every benchmark; :func:`default_context` memoizes a
fully-built :class:`ReproductionContext` per configuration so the
benchmark suite pays it once.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.annotations import Document
from repro.core.analysis import CorpusStats, analyze_corpus
from repro.core.pipeline import TextAnalyticsPipeline
from repro.corpora.goldstandard import build_classifier_gold
from repro.corpora.medline import MedlineCorpusBuilder
from repro.corpora.pmc import PmcCorpusBuilder
from repro.corpora.profiles import IRRELEVANT, RELEVANT, PROFILES
from repro.corpora.textgen import DocumentGenerator, GoldDocument
from repro.corpora.vocabulary import BiomedicalVocabulary
from repro.crawler.crawl import CrawlConfig, CrawlResult, FocusedCrawler
from repro.crawler.filters import (
    FilterChain, LanguageFilter, LengthFilter, MimeFilter,
)
from repro.crawler.search import build_search_engines
from repro.crawler.seeds import SeedBatch, SeedGenerator
from repro.web.server import SimulatedWeb
from repro.web.webgraph import WebGraph, WebGraphConfig


@dataclass(frozen=True)
class ContextConfig:
    """Reproduction-scale sizes (small enough for CI, large enough for
    stable statistics)."""

    seed: int = 19
    #: Documents generated per corpus for the content analysis.
    corpus_docs: int = 40
    #: Medline-gold documents used to train the HMM and CRFs.
    n_training_docs: int = 50
    crf_iterations: int = 40
    n_hosts: int = 60
    crawl_pages: int = 800
    seed_scale: int = 20
    #: Directory for the persistent dictionary-automaton cache
    #: (None disables caching; see repro.ner.cache).
    dictionary_cache_dir: str | None = None
    #: Directory for the content-addressed per-sentence annotation
    #: cache (None disables caching; see repro.nlp.anno_cache).
    annotation_cache_dir: str | None = None
    #: Viterbi beam width for the frozen POS kernel (None = exact).
    pos_beam_width: int | None = None


class ReproductionContext:
    """Lazily builds and caches every experiment ingredient."""

    def __init__(self, config: ContextConfig | None = None) -> None:
        self.config = config or ContextConfig()
        self._vocabulary: BiomedicalVocabulary | None = None
        self._pipeline: TextAnalyticsPipeline | None = None
        self._corpora: dict[str, list[GoldDocument]] | None = None
        self._stats: dict[str, CorpusStats] | None = None
        self._webgraph: WebGraph | None = None
        self._web: SimulatedWeb | None = None
        self._crawl: CrawlResult | None = None
        self._seed_batches: dict[str, SeedBatch] = {}

    # -- ingredients --------------------------------------------------------

    @property
    def vocabulary(self) -> BiomedicalVocabulary:
        if self._vocabulary is None:
            self._vocabulary = BiomedicalVocabulary(seed=self.config.seed)
        return self._vocabulary

    @property
    def pipeline(self) -> TextAnalyticsPipeline:
        if self._pipeline is None:
            self._pipeline = TextAnalyticsPipeline.build(
                self.vocabulary, seed=self.config.seed,
                n_training_docs=self.config.n_training_docs,
                crf_iterations=self.config.crf_iterations,
                dictionary_cache=self.config.dictionary_cache_dir,
                annotation_cache=self.config.annotation_cache_dir,
                pos_beam_width=self.config.pos_beam_width)
        return self._pipeline

    def corpora(self) -> dict[str, list[GoldDocument]]:
        """The four corpora of Section 4.3, gold-annotated."""
        if self._corpora is None:
            config = self.config
            n = config.corpus_docs
            medline = MedlineCorpusBuilder(self.vocabulary,
                                           seed=config.seed + 5)
            pmc = PmcCorpusBuilder(self.vocabulary, seed=config.seed + 6)
            relevant = DocumentGenerator(self.vocabulary, RELEVANT,
                                         seed=config.seed + 7)
            irrelevant = DocumentGenerator(self.vocabulary, IRRELEVANT,
                                           seed=config.seed + 8)
            self._corpora = {
                "relevant": relevant.documents(n),
                "irrelevant": [irrelevant.document(i)
                               for i in range(2 * n)],
                "medline": medline.build(2 * n),
                "pmc": pmc.build(max(10, n // 2)),
            }
        return self._corpora

    def corpus_documents(self, name: str) -> list[Document]:
        """Fresh (un-annotated) Document copies of one corpus."""
        return [gold.document.copy_shallow() for gold in self.corpora()[name]]

    def corpus_stats(self) -> dict[str, CorpusStats]:
        """Analyzed statistics for all four corpora (cached)."""
        if self._stats is None:
            self._stats = {
                name: analyze_corpus(name, self.corpus_documents(name),
                                     self.pipeline)
                for name in self.corpora()
            }
        return self._stats

    # -- crawl world ---------------------------------------------------------------

    @property
    def webgraph(self) -> WebGraph:
        if self._webgraph is None:
            self._webgraph = WebGraph(
                WebGraphConfig(n_hosts=self.config.n_hosts,
                               seed=self.config.seed + 11),
                vocabulary=self.vocabulary)
        return self._webgraph

    @property
    def web(self) -> SimulatedWeb:
        if self._web is None:
            self._web = SimulatedWeb(self.webgraph,
                                     seed=self.config.seed + 12)
        return self._web

    def build_filter_chain(self) -> FilterChain:
        return FilterChain(MimeFilter(),
                           LanguageFilter(self.pipeline.identifier),
                           LengthFilter())

    def seed_batch(self, which: str = "second") -> SeedBatch:
        if which not in self._seed_batches:
            generator = SeedGenerator(build_search_engines(self.webgraph),
                                      self.vocabulary)
            if which == "first":
                batch = generator.first_round(scale=self.config.seed_scale)
            else:
                batch = generator.second_round(scale=self.config.seed_scale)
            self._seed_batches[which] = batch
        return self._seed_batches[which]

    def run_crawl(self, max_pages: int | None = None,
                  follow_irrelevant_steps: int = 0,
                  seeds: list[str] | None = None) -> CrawlResult:
        crawler = FocusedCrawler(
            self.web, self.pipeline.classifier, self.build_filter_chain(),
            CrawlConfig(max_pages=max_pages or self.config.crawl_pages,
                        follow_irrelevant_steps=follow_irrelevant_steps))
        return crawler.crawl(seeds if seeds is not None
                             else self.seed_batch("second").urls)

    def crawl(self) -> CrawlResult:
        """The canonical cached crawl (second seed round)."""
        if self._crawl is None:
            self._crawl = self.run_crawl()
        return self._crawl


_CONTEXTS: dict[ContextConfig, ReproductionContext] = {}


def default_context(**overrides) -> ReproductionContext:
    """Process-wide memoized context (one per configuration)."""
    config = replace(ContextConfig(), **overrides) if overrides \
        else ContextConfig()
    if config not in _CONTEXTS:
        _CONTEXTS[config] = ReproductionContext(config)
    return _CONTEXTS[config]
