"""Corpus content analysis (Section 4.3).

Aggregates per-document linguistic and entity statistics into
:class:`CorpusStats`, and provides the comparisons the paper reports:
Mann-Whitney-Wilcoxon significance tests on linguistic properties
(Fig. 6), per-1000-sentence entity incidence (Fig. 7 / Table 4),
distinct-name overlaps across corpora (Fig. 8), and Jensen-Shannon
divergences between entity-name distributions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Sequence

from repro.annotations import Document
from repro.core.pipeline import TextAnalyticsPipeline
from repro.corpora.textgen import COREFERENCE_CLASSES
from repro.nlp.stats import (
    jensen_shannon_divergence, mann_whitney_u, mean,
)

_KEYS = [("disease", "dictionary"), ("disease", "ml"),
         ("drug", "dictionary"), ("drug", "ml"),
         ("gene", "dictionary"), ("gene", "ml")]


@dataclass
class CorpusStats:
    """Aggregated statistics of one analyzed corpus."""

    name: str
    n_docs: int = 0
    n_sentences: int = 0
    total_chars: int = 0
    doc_lengths: list[int] = field(default_factory=list)
    mean_sentence_lengths: list[float] = field(default_factory=list)
    negations_per_doc: list[int] = field(default_factory=list)
    parentheses_per_doc: list[int] = field(default_factory=list)
    pronouns_per_doc: dict[str, list[int]] = field(default_factory=dict)
    #: (entity_type, method) -> total mention count.
    mention_counts: dict[tuple[str, str], int] = field(default_factory=dict)
    #: (entity_type, method) -> per-document mention counts.
    mentions_per_doc: dict[tuple[str, str], list[int]] = field(
        default_factory=dict)
    #: (entity_type, method) -> lower-cased distinct-name frequency.
    name_frequencies: dict[tuple[str, str], Counter] = field(
        default_factory=dict)

    def __post_init__(self) -> None:
        for key in _KEYS:
            self.mention_counts.setdefault(key, 0)
            self.mentions_per_doc.setdefault(key, [])
            self.name_frequencies.setdefault(key, Counter())

    # -- derived measures ---------------------------------------------------

    @property
    def mean_doc_chars(self) -> float:
        return mean(self.doc_lengths)

    @property
    def mean_sentence_tokens(self) -> float:
        return mean(self.mean_sentence_lengths)

    def negation_per_1000_chars(self) -> list[float]:
        return [1000.0 * n / max(1, chars) for n, chars in
                zip(self.negations_per_doc, self.doc_lengths)]

    def coreference_pronouns_per_doc(self) -> list[int]:
        lists = [self.pronouns_per_doc.get(cls, [])
                 for cls in COREFERENCE_CLASSES]
        if not any(lists):
            return []
        length = max(len(lst) for lst in lists)
        return [sum(lst[i] if i < len(lst) else 0 for lst in lists)
                for i in range(length)]

    def distinct_names(self, entity_type: str, method: str) -> int:
        return len(self.name_frequencies[(entity_type, method)])

    def per_1000_sentences(self, entity_type: str,
                           method: str | None = None) -> float:
        """Mean entity mentions per 1000 sentences (Fig. 7 measure).

        ``method=None`` combines both annotation methods, as the paper
        does for the drug means.
        """
        if self.n_sentences == 0:
            return 0.0
        methods = [method] if method else ["dictionary", "ml"]
        total = sum(self.mention_counts[(entity_type, m)] for m in methods)
        return 1000.0 * total / self.n_sentences


def analyze_corpus(name: str, documents: Iterable[Document],
                   pipeline: TextAnalyticsPipeline,
                   with_pos: bool = False) -> CorpusStats:
    """Run the full analysis on each document and aggregate."""
    stats = CorpusStats(name=name)
    for document in documents:
        pipeline.analyze(document, with_pos=with_pos)
        accumulate_document(stats, document)
    return stats


def accumulate_document(stats: CorpusStats, document: Document) -> None:
    """Fold one *already annotated* document into the stats."""
    stats.n_docs += 1
    stats.total_chars += len(document.text)
    stats.doc_lengths.append(len(document.text))
    stats.n_sentences += len(document.sentences or ())
    token_counts = [len(s.tokens) for s in document.sentences or ()
                    if s.tokens]
    if token_counts:
        stats.mean_sentence_lengths.append(mean(token_counts))
    negations = parentheses = 0
    pronouns: dict[str, int] = {}
    for mention in document.linguistics:
        if mention.category == "negation":
            negations += 1
        elif mention.category == "parenthesis":
            parentheses += 1
        elif mention.category == "pronoun":
            pronouns[mention.subtype] = pronouns.get(mention.subtype, 0) + 1
    stats.negations_per_doc.append(negations)
    stats.parentheses_per_doc.append(parentheses)
    for subtype, count in pronouns.items():
        stats.pronouns_per_doc.setdefault(subtype, []).append(count)
    per_doc: dict[tuple[str, str], int] = {key: 0 for key in _KEYS}
    for mention in document.entities:
        key = (mention.entity_type,
               "dictionary" if mention.method == "dictionary" else "ml")
        if key not in stats.mention_counts:
            continue
        stats.mention_counts[key] += 1
        per_doc[key] += 1
        stats.name_frequencies[key][mention.text.lower()] += 1
    for key, count in per_doc.items():
        stats.mentions_per_doc[key].append(count)


# -- comparisons -----------------------------------------------------------------


def compare_corpora(a: CorpusStats, b: CorpusStats) -> dict[str, float]:
    """Mann-Whitney-Wilcoxon p-values for the Fig. 6 properties."""
    comparisons = {
        "doc_length": (a.doc_lengths, b.doc_lengths),
        "sentence_length": (a.mean_sentence_lengths,
                            b.mean_sentence_lengths),
        "negation": (a.negation_per_1000_chars(),
                     b.negation_per_1000_chars()),
        "parentheses": (a.parentheses_per_doc, b.parentheses_per_doc),
        "coreference_pronouns": (a.coreference_pronouns_per_doc(),
                                 b.coreference_pronouns_per_doc()),
    }
    p_values = {}
    for measure, (sample_a, sample_b) in comparisons.items():
        if not sample_a or not sample_b:
            p_values[measure] = 1.0
            continue
        _u, p = mann_whitney_u(sample_a, sample_b)
        p_values[measure] = p
    return p_values


def jsd_between(a: CorpusStats, b: CorpusStats, entity_type: str,
                method: str = "dictionary") -> float:
    """Jensen-Shannon divergence of entity-name distributions."""
    dist_a = dict(a.name_frequencies[(entity_type, method)])
    dist_b = dict(b.name_frequencies[(entity_type, method)])
    if not dist_a or not dist_b:
        return 1.0
    return jensen_shannon_divergence(dist_a, dist_b)


def jsd_table(stats: Sequence[CorpusStats], method: str = "dictionary",
              ) -> dict[tuple[str, str, str], float]:
    """JSD for every corpus pair and entity type:
    (corpus_a, corpus_b, entity_type) -> JSD."""
    table = {}
    for a, b in combinations(stats, 2):
        for entity_type in ("disease", "drug", "gene"):
            table[(a.name, b.name, entity_type)] = jsd_between(
                a, b, entity_type, method)
    return table


def entity_overlap(stats: Sequence[CorpusStats], entity_type: str,
                   method: str = "dictionary") -> dict[tuple[str, ...], float]:
    """Venn-region percentages of distinct names across corpora (Fig. 8).

    Returns ``{(corpus names sharing the region...): percent}``; the
    percents over all non-empty regions sum to 100.
    """
    name_sets = {s.name: set(s.name_frequencies[(entity_type, method)])
                 for s in stats}
    union: set[str] = set()
    for names in name_sets.values():
        union |= names
    if not union:
        return {}
    regions: dict[tuple[str, ...], int] = {}
    for name in union:
        members = tuple(sorted(corpus for corpus, names in name_sets.items()
                               if name in names))
        regions[members] = regions.get(members, 0) + 1
    return {members: 100.0 * count / len(union)
            for members, count in sorted(regions.items())}


def overlap_fraction(a: CorpusStats, b: CorpusStats, entity_type: str,
                     method: str = "dictionary") -> float:
    """|A ∩ B| / |A ∪ B| of distinct names (the paper's "overlap")."""
    names_a = set(a.name_frequencies[(entity_type, method)])
    names_b = set(b.name_frequencies[(entity_type, method)])
    union = names_a | names_b
    if not union:
        return 0.0
    return len(names_a & names_b) / len(union)
