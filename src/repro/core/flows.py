"""The consolidated analysis data flows (Fig. 2 of the paper).

``build_fig2_flow`` constructs the complete flow — the paper's 38
elementary operators plus a relation-records sink (39 nodes) — with a
shared web-preprocessing prefix fanning out into a linguistic branch
and an entity branch, each feeding record sinks.  The ``relations``
sink carries provenance-rich co-occurrence relation records, the
flow-side feed of the entity store (docs/entity_store.md).
``build_linguistic_flow`` / ``build_entity_flow`` are the two separate
flows the scalability experiments use (Section 4.2).

A Meteor-script rendition of the core of the flow ships as
:data:`FIG2_METEOR_SCRIPT` to exercise the declarative front-end.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.pipeline import TextAnalyticsPipeline
from repro.dataflow.executor import ExecutionReport, LocalExecutor
from repro.dataflow.fusion import StreamingExecutor
from repro.dataflow.packages import make_operator
from repro.dataflow.plan import LogicalPlan
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

#: Physical execution modes (docs/dataflow.md, "Physical execution").
EXECUTION_MODES = ("sequential", "threads", "fused", "fused-threads",
                   "fused-processes")

FIG2_METEOR_SCRIPT = """
-- Consolidated biomedical web analysis (core of Fig. 2)
$docs      = read();
$short     = filter_long_documents($docs, max_chars=500000);
$checked   = detect_markup_errors($short);
$repaired  = repair_markup($checked);
$nettext   = remove_boilerplate($repaired);
$nonempty  = drop_empty_documents($nettext);
$sentences = annotate_sentences($nonempty);
$tokens    = annotate_tokens($sentences);
$negation  = annotate_negation($tokens);
$pronouns  = annotate_pronouns($negation);
$parens    = annotate_parentheses($pronouns);
$ling      = linguistics_to_records($parens);
write($ling, 'linguistics');
$pos       = annotate_pos($tokens, tagger=@pos_tagger);
$genes_d   = annotate_genes_dict($pos, tagger=@gene_dict);
$genes     = annotate_genes_ml($genes_d, tagger=@gene_ml);
$merged    = merge_annotations($genes);
$records   = entities_to_records($merged);
write($records, 'entities');
"""


def _web_prefix(plan: LogicalPlan, pipeline: TextAnalyticsPipeline):
    """Shared preprocessing: web treatment + sentences + tokens."""
    return plan.chain([
        make_operator("mime_filter"),
        make_operator("filter_long_documents", max_chars=500_000),
        make_operator("detect_markup_errors"),
        make_operator("repair_markup"),
        make_operator("extract_title"),
        make_operator("extract_links"),
        make_operator("annotate_host"),
        make_operator("remove_boilerplate", detector=pipeline.boilerplate),
        make_operator("strip_control_chars"),
        make_operator("normalize_whitespace"),
        make_operator("truncate_documents", max_chars=100_000),
        make_operator("drop_empty_documents"),
        make_operator("dedup_content"),
        make_operator("annotate_sentences"),
        make_operator("annotate_tokens"),
    ])


def build_fig2_flow(pipeline: TextAnalyticsPipeline) -> LogicalPlan:
    """The complete consolidated flow: the paper's 38 elementary
    operators plus the relation-records sink (39 nodes)."""
    plan = LogicalPlan()
    prefix = _web_prefix(plan, pipeline)                           # 12 ops
    # Linguistic branch (6 ops).
    linguistic = plan.chain([
        make_operator("annotate_negation"),
        make_operator("annotate_pronouns"),
        make_operator("annotate_parentheses"),
    ], after=prefix)
    sentence_records = plan.chain([
        make_operator("sentences_to_records"),
        make_operator("distinct", key=lambda r: (r["doc_id"],
                                                 r["sentence_id"])),
    ], after=linguistic)
    linguistic_records = plan.chain([
        make_operator("linguistics_to_records"),
        make_operator("distinct", key=lambda r: (r["doc_id"], r["start"],
                                                 r["end"], r["category"])),
    ], after=linguistic)
    plan.mark_sink("sentences", sentence_records)
    plan.mark_sink("linguistics", linguistic_records)
    # Entity branch (13 ops).
    pos = plan.add(make_operator("annotate_pos",
                                 tagger=pipeline.pos_tagger), prefix)
    entity = pos
    for entity_type in ("gene", "drug", "disease"):
        entity = plan.chain([
            make_operator(f"annotate_{entity_type}s_dict",
                          tagger=pipeline.dictionary_taggers[entity_type]),
            make_operator(f"annotate_{entity_type}s_ml",
                          tagger=pipeline.ml_taggers[entity_type]),
        ], after=entity)
    entity = plan.chain([
        make_operator("merge_annotations"),
        make_operator("conflict_resolution"),
        make_operator("validate_offsets"),
        make_operator("filter_tla_gene_annotations"),
    ], after=entity)
    entity_records = plan.add(make_operator("entities_to_records"),
                              entity)
    plan.mark_sink("entities", entity_records)
    frequencies = plan.chain([
        make_operator("count_entities_by_name"),
        make_operator("sort", key=lambda r: -r["frequency"]),
    ], after=entity_records)
    plan.mark_sink("entity_frequencies", frequencies)
    # Relation branch (1 op): provenance-rich co-occurrence relation
    # records off the final merged annotations — the entity store's
    # flow-side feed (docs/entity_store.md).
    relations = plan.add(make_operator("extract_relations"), entity)
    plan.mark_sink("relations", relations)
    # Link-graph branch (2 ops).
    edges = plan.chain([
        make_operator("outlinks_to_records"),
        make_operator("distinct", key=lambda r: (r["source"], r["target"])),
    ], after=prefix)
    plan.mark_sink("edges", edges)
    return plan


def build_linguistic_flow(pipeline: TextAnalyticsPipeline,
                          web_input: bool = True) -> LogicalPlan:
    """Linguistic analysis flow (Section 4.2 scalability subject)."""
    plan = LogicalPlan()
    head = (_simple_prefix(plan, pipeline, web_input))
    tail = plan.chain([
        make_operator("annotate_negation"),
        make_operator("annotate_pronouns"),
        make_operator("annotate_parentheses"),
        make_operator("linguistics_to_records"),
    ], after=head)
    plan.mark_sink("linguistics", tail)
    return plan


def build_entity_flow(pipeline: TextAnalyticsPipeline,
                      methods: tuple[str, ...] = ("dictionary", "ml"),
                      web_input: bool = True,
                      with_tla_filter: bool = True) -> LogicalPlan:
    """Entity annotation flow (POS + six taggers)."""
    plan = LogicalPlan()
    head = _simple_prefix(plan, pipeline, web_input)
    head = plan.add(make_operator("annotate_pos",
                                  tagger=pipeline.pos_tagger), head)
    for entity_type in ("gene", "drug", "disease"):
        if "dictionary" in methods:
            head = plan.add(make_operator(
                f"annotate_{entity_type}s_dict",
                tagger=pipeline.dictionary_taggers[entity_type]), head)
        if "ml" in methods:
            head = plan.add(make_operator(
                f"annotate_{entity_type}s_ml",
                tagger=pipeline.ml_taggers[entity_type]), head)
    tail_ops = [make_operator("merge_annotations")]
    if with_tla_filter:
        tail_ops.append(make_operator("filter_tla_gene_annotations"))
    tail_ops.append(make_operator("entities_to_records"))
    tail = plan.chain(tail_ops, after=head)
    plan.mark_sink("entities", tail)
    return plan


def make_executor(mode: str = "sequential", dop: int = 1,
                  batch_size: int = 32,
                  metrics: MetricsRegistry | None = None,
                  tracer: Tracer | None = None,
                  ) -> LocalExecutor | StreamingExecutor:
    """Executor factory for the physical execution modes.

    ``sequential``/``threads`` use the materializing
    :class:`LocalExecutor`; the ``fused*`` modes use the
    :class:`StreamingExecutor`, which pipelines fused operator chains
    and (for ``fused-processes``) escapes the GIL via a fork pool.
    All modes produce byte-identical sink outputs.  ``metrics`` and
    ``tracer`` attach the observability subsystem (docs/observability.md);
    execution results are unchanged either way.
    """
    if mode == "sequential":
        return LocalExecutor(metrics=metrics, tracer=tracer)
    if mode == "threads":
        return LocalExecutor(dop=dop, use_threads=True,
                             metrics=metrics, tracer=tracer)
    if mode == "fused":
        return StreamingExecutor(batch_size=batch_size,
                                 metrics=metrics, tracer=tracer)
    if mode == "fused-threads":
        return StreamingExecutor(dop=dop, use_threads=True,
                                 batch_size=batch_size,
                                 metrics=metrics, tracer=tracer)
    if mode == "fused-processes":
        return StreamingExecutor(dop=dop, use_processes=True,
                                 batch_size=batch_size,
                                 metrics=metrics, tracer=tracer)
    raise ValueError(f"unknown execution mode {mode!r}; "
                     f"expected one of {EXECUTION_MODES}")


def run_flow(plan: LogicalPlan, records: Sequence[Any],
             mode: str = "fused", dop: int = 1, batch_size: int = 32,
             metrics: MetricsRegistry | None = None,
             tracer: Tracer | None = None,
             fuse_annotators: bool = True,
             ) -> tuple[dict[str, list[Any]], ExecutionReport]:
    """Execute any flow plan with the chosen physical mode.

    ``fuse_annotators`` (default on) substitutes one-pass fused
    annotation stages for elementary annotate sub-chains
    (:func:`~repro.dataflow.optimizer.fuse_annotation_stage`) on a
    structural copy, leaving the caller's plan untouched; outputs are
    byte-identical either way.  Annotation caches attached to the
    plan's operators are flushed to disk after the run, so the next
    (cold) process starts warm.  When a ``metrics`` registry is
    attached, per-stage stats and the cache flush are mirrored onto it.
    """
    if fuse_annotators:
        from repro.dataflow.optimizer import fuse_annotation_stage

        plan = plan.copy_structure()
        fuse_annotation_stage(plan)
    result = make_executor(mode, dop=dop, batch_size=batch_size,
                           metrics=metrics,
                           tracer=tracer).execute(plan, records)
    flush_annotation_caches(plan, metrics=metrics)
    return result


class FlowSession:
    """Reusable flow-execution session: plan and executor built once,
    many record batches run through them.

    The serve layer's discipline applied to the dataflow path: per-run
    construction (plan building, executor setup, operator state) is
    paid once, so repeated runs measure execution, not setup — and a
    long-lived process (``repro serve``, a notebook, a driver loop)
    reuses warm operators, caches, and frozen kernels across calls.
    :meth:`close` flushes annotation caches once at the end instead of
    after every run.
    """

    def __init__(self, pipeline: TextAnalyticsPipeline,
                 mode: str = "fused", dop: int = 1, batch_size: int = 32,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 build=build_fig2_flow,
                 fuse_annotators: bool = True) -> None:
        self.pipeline = pipeline
        self.plan = build(pipeline)
        self.fused_stages = 0
        if fuse_annotators:
            from repro.dataflow.optimizer import fuse_annotation_stage

            self.fused_stages = len(fuse_annotation_stage(self.plan))
        self.executor = make_executor(mode, dop=dop,
                                      batch_size=batch_size,
                                      metrics=metrics, tracer=tracer)
        self.metrics = metrics
        self.runs = 0
        self.last_report: ExecutionReport | None = None

    def run(self, records: Sequence[Any],
            ) -> tuple[dict[str, list[Any]], ExecutionReport]:
        outputs, report = self.executor.execute(self.plan, records)
        self.runs += 1
        self.last_report = report
        return outputs, report

    def close(self) -> int:
        """Flush annotation caches; returns dirty shard files written."""
        return flush_annotation_caches(self.plan, metrics=self.metrics)

    def __enter__(self) -> "FlowSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def flush_annotation_caches(plan: LogicalPlan,
                            metrics: MetricsRegistry | None = None) -> int:
    """Persist every annotation cache attached to the plan's operators;
    returns the number of dirty shard files written."""
    written = 0
    seen: set[int] = set()
    for node in plan.nodes:
        cache = getattr(node.operator, "annotation_cache", None)
        if cache is not None and id(cache) not in seen:
            seen.add(id(cache))
            written += cache.flush()
            if metrics is not None:
                cache.publish_metrics(metrics)
    return written


def _simple_prefix(plan: LogicalPlan, pipeline: TextAnalyticsPipeline,
                   web_input: bool):
    """Preprocessing for the two separate scalability flows: filter
    long texts, repair/remove markup, sentence and token boundaries."""
    operators = [make_operator("filter_long_documents", max_chars=500_000)]
    if web_input:
        operators.extend([
            make_operator("repair_markup"),
            make_operator("remove_boilerplate",
                          detector=pipeline.boilerplate),
        ])
    operators.extend([
        make_operator("annotate_sentences"),
        make_operator("annotate_tokens"),
    ])
    return plan.chain(operators)
