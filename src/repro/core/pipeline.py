"""Bundled text-analytics pipeline.

One object holding every trained tool the flows need — the Python
equivalent of the paper's "wrapped best-of-breed tools".  Building a
pipeline trains the HMM POS tagger and the three CRF entity taggers on
Medline-profile gold (the only training data available, as in the
paper) and constructs the three fuzzy dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.annotations import Document
from repro.classify.naive_bayes import NaiveBayesClassifier
from repro.corpora.goldstandard import build_classifier_gold, build_ner_gold
from repro.corpora.profiles import MEDLINE
from repro.corpora.vocabulary import BiomedicalVocabulary
from repro.html.boilerplate import BoilerplateDetector
from repro.ner.cache import AutomatonCache
from repro.nlp.anno_cache import AnnotationCache
from repro.ner.dictionary import DictionaryTagger
from repro.ner.onepass import OnePassAnnotator
from repro.ner.taggers import (
    ENTITY_TYPES, MlEntityTagger, build_dictionary_taggers, build_ml_taggers,
)
from repro.nlp.language import LanguageIdentifier, default_identifier
from repro.nlp.linguistics import LinguisticAnalyzer
from repro.nlp.pos_hmm import HmmPosTagger
from repro.nlp.sentence import SentenceSplitter
from repro.nlp.tokenize import tokenize


@dataclass
class TextAnalyticsPipeline:
    """All tools, trained and ready."""

    vocabulary: BiomedicalVocabulary
    classifier: NaiveBayesClassifier
    identifier: LanguageIdentifier
    splitter: SentenceSplitter
    pos_tagger: HmmPosTagger
    dictionary_taggers: dict[str, DictionaryTagger]
    ml_taggers: dict[str, MlEntityTagger]
    boilerplate: BoilerplateDetector = field(default_factory=BoilerplateDetector)
    linguistics: LinguisticAnalyzer = field(default_factory=LinguisticAnalyzer)
    #: Shared per-sentence POS/NER result cache (None = disabled).
    annotation_cache: AnnotationCache | None = None
    #: One-pass engines per (methods, entity_types, with_pos) — built
    #: lazily; the merged dictionary automaton inside is shared.
    _one_pass_memo: dict = field(default_factory=dict, repr=False)

    @classmethod
    def build(cls, vocabulary: BiomedicalVocabulary | None = None,
              seed: int = 19, n_training_docs: int = 60,
              n_classifier_docs: int = 100, crf_iterations: int = 40,
              gene_quadratic_context: bool = False,
              dictionary_cache: "AutomatonCache | str | Path | None" = None,
              annotation_cache: "AnnotationCache | str | Path | None" = None,
              pos_beam_width: int | None = None,
              ) -> "TextAnalyticsPipeline":
        """Train everything from synthetic gold.

        ``gene_quadratic_context=True`` enables the BANNER-style heavy
        feature set (slow; used by the runtime benchmarks).
        ``dictionary_cache`` (an AutomatonCache or a directory path)
        re-loads persisted dictionary automata instead of rebuilding
        them — the paper's fix for the per-worker 20-minute load.
        ``annotation_cache`` (an AnnotationCache or a directory path)
        memoizes per-sentence POS/NER results across documents and
        runs; ``pos_beam_width`` narrows the frozen POS tagger's
        Viterbi beam (None = exact).
        """
        import dataclasses

        if dictionary_cache is not None and \
                not isinstance(dictionary_cache, AutomatonCache):
            dictionary_cache = AutomatonCache(dictionary_cache)
        if annotation_cache is not None and \
                not isinstance(annotation_cache, AnnotationCache):
            annotation_cache = AnnotationCache(annotation_cache)

        vocabulary = vocabulary or BiomedicalVocabulary(seed=seed)
        # NER gold corpora (BioCreative-style) are entity-dense
        # annotated selections, not raw abstracts: boost the mention
        # rates of the Medline profile for training only.
        training_profile = dataclasses.replace(
            MEDLINE,
            disease_per_1000_sentences=600.0,
            drug_per_1000_sentences=600.0,
            gene_per_1000_sentences=800.0)
        training = build_ner_gold(vocabulary, training_profile,
                                  n_training_docs, seed=seed + 1)
        pos_tagger = HmmPosTagger()
        pos_tagger.train(sentence for gold in training
                         for sentence in gold.tagged_sentences())
        pos_tagger.freeze(beam_width=pos_beam_width)
        pos_tagger.annotation_cache = annotation_cache
        classifier = NaiveBayesClassifier(decision_threshold=0.9).fit(
            build_classifier_gold(vocabulary, n_classifier_docs,
                                  seed=seed + 2))
        ml_taggers = build_ml_taggers(
            training, max_iterations=crf_iterations,
            gene_quadratic_context=gene_quadratic_context)
        for tagger in ml_taggers.values():
            tagger.annotation_cache = annotation_cache
        return cls(
            vocabulary=vocabulary,
            classifier=classifier,
            identifier=default_identifier(seed=seed + 3),
            splitter=SentenceSplitter(),
            pos_tagger=pos_tagger,
            dictionary_taggers=build_dictionary_taggers(
                vocabulary, cache=dictionary_cache),
            ml_taggers=ml_taggers,
            annotation_cache=annotation_cache,
        )

    # -- direct (non-dataflow) document analysis ------------------------------

    def preprocess(self, document: Document) -> Document:
        """Sentence + token annotation (and POS) on net text."""
        document.sentences = self.splitter.split(document.text)
        for sentence in document.sentences:
            sentence.tokens = tokenize(sentence.text,
                                       base_offset=sentence.start)
        return document

    def analyze(self, document: Document,
                methods: tuple[str, ...] = ("dictionary", "ml"),
                entity_types: tuple[str, ...] = ENTITY_TYPES,
                with_pos: bool = False) -> Document:
        """Full linguistic + entity annotation of one document.

        This is the one-step-at-a-time reference path; the equivalence
        tests hold :meth:`analyze_batch` (the one-pass engine) to it.
        ``document.sentences is None`` means "never computed" and
        triggers preprocessing; an empty list means the split genuinely
        produced nothing and is trusted as-is.
        """
        if document.sentences is None:
            self.preprocess(document)
        if with_pos:
            from repro.nlp.pos_hmm import TaggerCrash

            for sentence in document.sentences:
                try:
                    sentence.tokens = self.pos_tagger.tag_tokens(
                        sentence.tokens or ())
                except TaggerCrash:
                    document.meta["pos_crashes"] = (
                        document.meta.get("pos_crashes", 0) + 1)
        self.linguistics.analyze(document)
        for entity_type in entity_types:
            if "dictionary" in methods:
                self.dictionary_taggers[entity_type].annotate(document)
            if "ml" in methods:
                self.ml_taggers[entity_type].annotate(document)
        return document

    def one_pass_annotator(self,
                           methods: tuple[str, ...] = ("dictionary", "ml"),
                           entity_types: tuple[str, ...] = ENTITY_TYPES,
                           with_pos: bool = False) -> OnePassAnnotator:
        """The (memoized) one-pass engine matching :meth:`analyze`'s
        step order for the given configuration: per entity type,
        dictionary then ML."""
        key = (tuple(methods), tuple(entity_types), bool(with_pos))
        engine = self._one_pass_memo.get(key)
        if engine is None:
            steps = []
            for entity_type in entity_types:
                if "dictionary" in methods:
                    steps.append(self.dictionary_taggers[entity_type])
                if "ml" in methods:
                    steps.append(self.ml_taggers[entity_type])
            engine = OnePassAnnotator(
                steps, splitter=self.splitter, split="missing",
                pos_tagger=self.pos_tagger if with_pos else None)
            self._one_pass_memo[key] = engine
        return engine

    def analyze_batch(self, documents: list[Document],
                      methods: tuple[str, ...] = ("dictionary", "ml"),
                      entity_types: tuple[str, ...] = ENTITY_TYPES,
                      with_pos: bool = False) -> list[Document]:
        """Batch :meth:`analyze` on the one-pass engine: identical
        per-document results with all the shared-work kernels engaged.

        This is the kernel entry point the serve-layer coalescer uses:
        sentences split and tokenize once into a shared arena, one
        merged-automaton pass matches every dictionary type, one
        ``tag_batch`` call covers every sentence of every document,
        and one ``predict_batch`` per entity type covers every uncached
        sentence in the batch (with feature extraction shared between
        taggers of the same configuration).  Per-document entity order
        (dictionary then ML, per entity type) matches :meth:`analyze`.
        """
        engine = self.one_pass_annotator(methods, entity_types, with_pos)
        engine.annotate_batch(documents)
        for document in documents:
            self.linguistics.analyze(document)
        return documents

    def _pos_tag_documents(self, documents: list[Document]) -> None:
        """POS-tag every sentence of every document in one batched
        decode, with :meth:`analyze`'s per-sentence crash accounting
        (over-limit sentences count into ``meta["pos_crashes"]`` and
        keep their untagged tokens)."""
        from repro.nlp.pos_hmm import TaggerCrash

        limit = self.pos_tagger.crash_token_limit
        jobs: list[tuple[Document, object]] = []
        for document in documents:
            for sentence in document.sentences:
                if limit is not None and len(sentence.tokens) > limit:
                    document.meta["pos_crashes"] = (
                        document.meta.get("pos_crashes", 0) + 1)
                else:
                    jobs.append((document, sentence))
        if not jobs:
            return
        try:
            tagged = self.pos_tagger.tag_tokens_batch(
                [sentence.tokens for _doc, sentence in jobs])
        except TaggerCrash:
            # Pathological model states (e.g. empty tagset) crash per
            # sentence in analyze(); mirror that accounting here.
            for document, sentence in jobs:
                try:
                    sentence.tokens = self.pos_tagger.tag_tokens(
                        sentence.tokens)
                except TaggerCrash:
                    document.meta["pos_crashes"] = (
                        document.meta.get("pos_crashes", 0) + 1)
            return
        for (document, sentence), tokens in zip(jobs, tagged):
            sentence.tokens = tokens
