"""The paper's primary contribution: consolidated web-scale text
analytics.

* :mod:`repro.core.pipeline` — one object bundling every trained tool
  (classifier, splitter, HMM tagger, six entity taggers, boilerplate
  detector, language identifier);
* :mod:`repro.core.flows` — the consolidated Fig. 2 data flow (the
  paper's 38 elementary operators plus the relation-records sink) and
  its linguistic / entity sub-flows;
* :mod:`repro.core.analysis` — the Section 4.3 content analysis
  (linguistic properties, entity statistics, overlaps, divergences);
* :mod:`repro.core.experiment` — a cached experiment context shared by
  examples and benchmarks.
"""

from repro.core.pipeline import TextAnalyticsPipeline
from repro.core.flows import (
    build_fig2_flow, build_linguistic_flow, build_entity_flow,
    make_executor, run_flow, EXECUTION_MODES, FIG2_METEOR_SCRIPT,
)
from repro.core.analysis import (
    CorpusStats, analyze_corpus, compare_corpora, entity_overlap,
    jsd_between,
)
from repro.core.experiment import ReproductionContext, default_context

__all__ = [
    "TextAnalyticsPipeline",
    "build_fig2_flow",
    "build_linguistic_flow",
    "build_entity_flow",
    "make_executor",
    "run_flow",
    "EXECUTION_MODES",
    "FIG2_METEOR_SCRIPT",
    "CorpusStats",
    "analyze_corpus",
    "compare_corpora",
    "entity_overlap",
    "jsd_between",
    "ReproductionContext",
    "default_context",
]
