"""Synthetic host/page graph with topical locality.

Models the structural facts the paper's focused crawl depends on:

* **Topical locality** — relevant pages mostly link to relevant pages
  (Davison [8]); the ``topical_locality`` parameter controls this.
* **Weakly-linked biomedical sites** — biomedical pages carry few
  cross-host links; most outlinks are navigational, to the same host
  (Section 2.2 / 4.1 of the paper).
* **Portal front pages** — authoritative hub pages that search engines
  return for general keywords; they are link-dense with little topical
  text, so the relevance classifier rejects them and the crawl branch
  dies (the paper's first seed-generation failure).
* **Spider traps** — hosts generating unbounded dynamic link chains.
* **Noise classes** — binary (PDF-like) payloads, non-English pages,
  too-short and extremely long pages, sized to reproduce the paper's
  filter attrition (MIME 9.5 %, language 14 %, length 17 %).

Pages and their link structure are materialized eagerly; page *text*
is generated lazily (and cached) from the corpus generators.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from functools import lru_cache

from repro.corpora.foreign import FOREIGN_WORDS, generate_foreign_text
from repro.corpora.profiles import IRRELEVANT, RELEVANT
from repro.corpora.textgen import DocumentGenerator, GoldDocument
from repro.corpora.vocabulary import BiomedicalVocabulary
from repro.web.robots import RobotsPolicy
from repro.util import seeded_rng

#: Authority hosts seeded into every graph; biomedical ones echo the
#: flavour of the paper's Table 2 page-rank listing.
AUTHORITY_HOSTS_BIO = [
    "nih.example.gov", "cancer.example.org", "biomedcentral.example.com",
    "healthline.example.com", "cdc.example.gov", "rightdiagnosis.example.com",
    "arxiv.example.org", "nature-blogs.example.com", "ourhealth.example.com",
    "sideeffects.example.de",
]
AUTHORITY_HOSTS_GENERAL = [
    "wikipedia.example.org", "blogger.example.com", "slideshare.example.net",
    "reuters.example.com", "wordpress.example.org", "disqus.example.com",
    "about.example.com", "statcounter.example.com",
]

_BIO_HOST_STEMS = ["genomeportal", "medinfo", "clinicnews", "pharmaguide",
                   "oncowiki", "biolab", "diseasehub", "drugfacts",
                   "patientforum", "labnotes"]
_GENERAL_HOST_STEMS = ["sportsnews", "travelblog", "recipebox", "carreview",
                       "musicdaily", "fashionfeed", "gamezone", "moneytalk",
                       "weatherlive", "cityguide"]


@dataclass
class WebGraphConfig:
    """Knobs for synthetic web generation (defaults: test-friendly)."""

    n_hosts: int = 60
    biomedical_host_fraction: float = 0.4
    pages_per_host_mean: float = 18.0
    #: P(cross-host link from a relevant page targets a relevant host).
    #: Calibrated so the focused crawl's harvest rate lands near the
    #: paper's 38 % (relevant pages link to relevant far more often
    #: than irrelevant ones do, but not overwhelmingly — the web view).
    topical_locality: float = 0.50
    #: P(cross-host link from an irrelevant page targets a relevant host).
    reverse_locality: float = 0.08
    #: Cross-host outlinks per page: biomedical sites are weakly linked.
    cross_links_bio: int = 1
    cross_links_general: int = 5
    nav_links: int = 5
    portal_host_fraction: float = 0.12
    trap_host_fraction: float = 0.05
    #: Noise-class fractions among article pages.
    binary_page_fraction: float = 0.095
    foreign_page_fraction: float = 0.14
    short_page_fraction: float = 0.10
    long_page_fraction: float = 0.07
    #: Fraction of a biomedical host's articles that are off-topic
    #: anyway (about pages, community chatter, shop pages) — the main
    #: dilution that pulls the harvest rate down toward the paper's
    #: 38 % even though the crawl stays on biomedical hosts.
    offtopic_page_fraction: float = 0.45
    #: Fraction of hosts whose robots.txt disallows part of the site.
    robots_restricted_fraction: float = 0.15
    seed: int = 97


@dataclass
class HostSpec:
    name: str
    biomedical: bool
    kind: str  # "site" | "portal" | "trap" | "authority"
    n_pages: int
    robots: RobotsPolicy = field(default_factory=RobotsPolicy)


@dataclass
class PageSpec:
    """One page: structure only; text is rendered lazily."""

    url: str
    host: str
    biomedical: bool
    kind: str  # "article" | "front" | "trap"
    language: str = "en"
    content_type: str = "text/html"
    length_class: str = "normal"  # "short" | "normal" | "long"
    doc_index: int = 0
    outlinks: list[str] = field(default_factory=list)
    nav_links: list[str] = field(default_factory=list)


class WebGraph:
    """Deterministic synthetic web graph."""

    def __init__(self, config: WebGraphConfig | None = None,
                 vocabulary: BiomedicalVocabulary | None = None) -> None:
        self.config = config or WebGraphConfig()
        self.vocabulary = vocabulary or BiomedicalVocabulary(seed=self.config.seed)
        self.hosts: dict[str, HostSpec] = {}
        self.pages: dict[str, PageSpec] = {}
        self._rng = random.Random(self.config.seed)
        self._relevant_gen = DocumentGenerator(
            self.vocabulary, RELEVANT, seed=self.config.seed + 1,
            pathological_fraction=0.02)
        self._irrelevant_gen = DocumentGenerator(
            self.vocabulary, IRRELEVANT, seed=self.config.seed + 2,
            pathological_fraction=0.02)
        self._build()

    # -- queries -----------------------------------------------------------

    def urls(self) -> list[str]:
        return list(self.pages)

    def page(self, url: str) -> PageSpec | None:
        return self.pages.get(url)

    def relevant_urls(self) -> list[str]:
        return [u for u, p in self.pages.items() if p.biomedical]

    def host_robots(self, host: str) -> RobotsPolicy:
        spec = self.hosts.get(host)
        return spec.robots if spec else RobotsPolicy()

    @lru_cache(maxsize=8192)
    def body_text(self, url: str) -> str:
        """Net article text for a page (lazy, cached)."""
        return self._gold_for(url).text

    def gold_document(self, url: str) -> GoldDocument:
        """Gold-annotated net text for evaluation purposes."""
        return self._gold_for(url)

    def title_of(self, url: str) -> str:
        page = self.pages[url]
        topic = "Health" if page.biomedical else "General"
        return f"{topic} article {page.doc_index} at {page.host}"

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        rng = self._rng
        cfg = self.config
        self._make_hosts(rng, cfg)
        for host in self.hosts.values():
            self._make_pages(rng, cfg, host)
        self._link_pages(rng, cfg)

    def _make_hosts(self, rng: random.Random, cfg: WebGraphConfig) -> None:
        names: list[tuple[str, bool, str]] = []
        for name in AUTHORITY_HOSTS_BIO:
            names.append((name, True, "authority"))
        for name in AUTHORITY_HOSTS_GENERAL:
            names.append((name, False, "authority"))
        remaining = max(0, cfg.n_hosts - len(names))
        for i in range(remaining):
            biomedical = rng.random() < cfg.biomedical_host_fraction
            stems = _BIO_HOST_STEMS if biomedical else _GENERAL_HOST_STEMS
            tld = rng.choice(["com", "org", "net", "info"])
            name = f"{rng.choice(stems)}{i}.example.{tld}"
            roll = rng.random()
            if roll < cfg.trap_host_fraction:
                kind = "trap"
            elif roll < cfg.trap_host_fraction + cfg.portal_host_fraction:
                kind = "portal"
            else:
                kind = "site"
            names.append((name, biomedical, kind))
        for name, biomedical, kind in names:
            n_pages = max(3, int(rng.expovariate(1.0 / cfg.pages_per_host_mean)))
            if kind == "authority":
                n_pages = max(n_pages, int(cfg.pages_per_host_mean * 1.5))
            robots = RobotsPolicy()
            if rng.random() < cfg.robots_restricted_fraction:
                robots.disallow.append("/private/")
                if rng.random() < 0.3:
                    robots.crawl_delay = rng.choice([0.5, 1.0, 2.0])
            self.hosts[name] = HostSpec(name=name, biomedical=biomedical,
                                        kind=kind, n_pages=n_pages,
                                        robots=robots)

    def _make_pages(self, rng: random.Random, cfg: WebGraphConfig,
                    host: HostSpec) -> None:
        base = f"http://{host.name}"
        front = PageSpec(url=f"{base}/", host=host.name,
                         biomedical=host.biomedical,
                         kind="front", doc_index=len(self.pages))
        self.pages[front.url] = front
        if host.kind == "trap":
            first_trap = PageSpec(
                url=f"{base}/calendar?page=1", host=host.name,
                biomedical=host.biomedical, kind="trap",
                doc_index=len(self.pages))
            self.pages[first_trap.url] = first_trap
            return
        for i in range(host.n_pages):
            in_private = rng.random() < 0.08
            prefix = "/private" if in_private else "/articles"
            page_biomedical = host.biomedical
            if host.biomedical and rng.random() < cfg.offtopic_page_fraction:
                page_biomedical = False
            page = PageSpec(url=f"{base}{prefix}/item{i}.html",
                            host=host.name, biomedical=page_biomedical,
                            kind="article", doc_index=len(self.pages))
            roll = rng.random()
            if roll < cfg.binary_page_fraction:
                page.content_type = rng.choice(
                    ["application/pdf", "application/vnd.ms-powerpoint"])
                page.url = page.url.replace(
                    ".html", ".pdf" if "pdf" in page.content_type else ".ppt")
            elif roll < cfg.binary_page_fraction + cfg.foreign_page_fraction:
                page.language = rng.choice(list(FOREIGN_WORDS))
            else:
                roll2 = rng.random()
                if roll2 < cfg.short_page_fraction:
                    page.length_class = "short"
                elif roll2 < cfg.short_page_fraction + cfg.long_page_fraction:
                    page.length_class = "long"
            self.pages[page.url] = page

    def _link_pages(self, rng: random.Random, cfg: WebGraphConfig) -> None:
        by_host: dict[str, list[str]] = {}
        for url, page in self.pages.items():
            by_host.setdefault(page.host, []).append(url)
        relevant_targets = [u for u, p in self.pages.items()
                            if p.biomedical and p.kind == "article"]
        general_targets = [u for u, p in self.pages.items()
                           if not p.biomedical and p.kind == "article"]
        authority_fronts = [f"http://{h.name}/" for h in self.hosts.values()
                            if h.kind == "authority"]
        for url, page in self.pages.items():
            host = self.hosts[page.host]
            siblings = by_host[page.host]
            # Navigational links: front page + a few same-host siblings.
            nav = [f"http://{page.host}/"]
            nav.extend(rng.sample(siblings, k=min(cfg.nav_links, len(siblings))))
            page.nav_links = [u for u in dict.fromkeys(nav) if u != url]
            if page.kind == "trap":
                page.outlinks = [_next_trap_url(url)]
                continue
            # Content links: cross-host, governed by topical locality.
            n_cross = (cfg.cross_links_bio if page.biomedical
                       else cfg.cross_links_general)
            if page.kind == "front":
                n_cross = max(n_cross, 8 if host.kind in ("portal", "authority")
                              else n_cross)
            outlinks: list[str] = []
            for _ in range(n_cross):
                to_relevant = (rng.random() < cfg.topical_locality
                               if page.biomedical
                               else rng.random() < cfg.reverse_locality)
                pool = relevant_targets if to_relevant else general_targets
                if rng.random() < 0.2 and authority_fronts:
                    outlinks.append(rng.choice(authority_fronts))
                elif pool:
                    outlinks.append(rng.choice(pool))
            page.outlinks = [u for u in dict.fromkeys(outlinks) if u != url]

    # -- text synthesis ------------------------------------------------------

    def _gold_for(self, url: str) -> GoldDocument:
        page = self.pages[url]
        rng = seeded_rng(self.config.seed, "text", url)
        if page.kind == "front":
            return _front_page_gold(page, self.hosts[page.host])
        if page.kind == "trap":
            return _trap_page_gold(page)
        if page.language != "en":
            text = generate_foreign_text(page.language, 1500, rng)
            from repro.annotations import Document

            doc = Document(doc_id=f"web-{page.doc_index:08d}", text=text,
                           meta={"url": url, "language": page.language})
            return GoldDocument(document=doc)
        generator = (self._relevant_gen if page.biomedical
                     else self._irrelevant_gen)
        gold = generator.document(page.doc_index)
        gold.document.meta["url"] = url
        if page.length_class == "short":
            return _truncate_gold(gold, max_chars=150)
        if page.length_class == "long":
            return _inflate_gold(gold, generator, page.doc_index,
                                 target_chars=25_000)
        return gold


def _next_trap_url(url: str) -> str:
    """Dynamic-link spider trap: page=N links to page=N+1, forever."""
    base, _sep, n = url.rpartition("=")
    try:
        return f"{base}={int(n) + 1}"
    except ValueError:
        return f"{url}?page=2"


def trap_page_url(host: str, index: int) -> str:
    return f"http://{host}/calendar?page={index}"


def is_trap_url(url: str) -> bool:
    return "/calendar?page=" in url


def _front_page_gold(page: PageSpec, host: HostSpec) -> GoldDocument:
    from repro.annotations import Document

    topic = "health topics" if host.biomedical else "daily stories"
    text = (f"Welcome to {host.name}. Browse our {topic}. "
            "Latest headlines, featured articles, and community picks.")
    doc = Document(doc_id=f"web-{page.doc_index:08d}", text=text,
                   meta={"url": page.url, "front_page": True})
    return GoldDocument(document=doc)


def _trap_page_gold(page: PageSpec) -> GoldDocument:
    from repro.annotations import Document

    text = "Calendar of events. Next page. Previous page."
    doc = Document(doc_id=f"web-{page.doc_index:08d}", text=text,
                   meta={"url": page.url, "trap": True})
    return GoldDocument(document=doc)


def _truncate_gold(gold: GoldDocument, max_chars: int) -> GoldDocument:
    from repro.annotations import Document

    text = gold.text[:max_chars]
    doc = Document(doc_id=gold.doc_id, text=text, meta=dict(gold.document.meta))
    sentences = [s for s in gold.sentences if s.end <= max_chars]
    entities = [e for e in gold.entities if e.mention.end <= max_chars]
    return GoldDocument(document=doc, sentences=sentences, entities=entities)


def _inflate_gold(gold: GoldDocument, generator: DocumentGenerator,
                  doc_index: int, target_chars: int) -> GoldDocument:
    from repro.corpora.pmc import concat_gold_documents

    parts = [gold]
    total = len(gold.text)
    k = 1
    while total < target_chars:
        extra = generator.document(doc_index * 131 + k + 1_000_000)
        parts.append(extra)
        total += len(extra.text)
        k += 1
    merged = concat_gold_documents(parts, doc_id=gold.doc_id,
                                   meta=gold.document.meta)
    return merged


def log_normal_int(rng: random.Random, mean: float, sigma: float) -> int:
    """Lognormal sample with the given arithmetic mean (helper)."""
    return int(rng.lognormvariate(math.log(mean) - sigma ** 2 / 2, sigma))
