"""Simulated HTTP layer over the synthetic web graph.

Serves rendered HTML (with boilerplate and markup defects), binary
payloads, robots.txt, redirects, errors, and unbounded spider-trap
pages.  Latency is modelled with a deterministic per-URL pseudo-random
draw and accumulated on a :class:`SimulatedClock`, so crawl experiments
measure politeness and throughput without real sleeping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.web.htmlgen import PageRenderer
from repro.util import seeded_rng
from repro.web.robots import render_robots
from repro.web.urls import host_of, normalize
from repro.web.webgraph import PageSpec, WebGraph, _next_trap_url, is_trap_url


class SimulatedClock:
    """A manually-advanced wall clock for politeness accounting."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self.now += seconds
        return self.now


@dataclass
class FetchResult:
    """Outcome of one simulated HTTP GET.

    ``status`` 0 denotes a network timeout.  Binary payloads are
    returned as latin-1 decodable strings carrying their magic bytes.
    """

    url: str
    status: int
    content_type: str
    body: str
    elapsed: float
    redirected_from: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == 200


class SimulatedWeb:
    """Fetch interface over a :class:`WebGraph`."""

    def __init__(self, graph: WebGraph, seed: int = 53,
                 error_rate: float = 0.02, timeout_rate: float = 0.01,
                 redirect_rate: float = 0.03,
                 base_latency: float = 0.15) -> None:
        self.graph = graph
        self.seed = seed
        self.error_rate = error_rate
        self.timeout_rate = timeout_rate
        self.redirect_rate = redirect_rate
        self.base_latency = base_latency
        self.renderer = PageRenderer(seed=seed + 7)
        self.fetch_count = 0

    # -- public API ---------------------------------------------------------

    def robots_txt(self, host: str) -> str:
        return render_robots(self.graph.host_robots(host))

    def fetch(self, url: str) -> FetchResult:
        """Simulate one GET; follows at most one internal redirect."""
        self.fetch_count += 1
        url = normalize(url)
        rng = seeded_rng(self.seed, url)
        elapsed = self.base_latency + rng.expovariate(1 / 0.1)
        if url.endswith("/robots.txt"):
            body = self.robots_txt(host_of(url))
            return FetchResult(url, 200, "text/plain", body, elapsed)
        roll = rng.random()
        if roll < self.timeout_rate:
            return FetchResult(url, 0, "", "", elapsed + 30.0)
        if roll < self.timeout_rate + self.error_rate:
            return FetchResult(url, 500, "text/html",
                               "<html>Internal Server Error</html>", elapsed)
        page = self._resolve_page(url)
        if page is None:
            return FetchResult(url, 404, "text/html",
                               "<html>Not Found</html>", elapsed)
        if (page.kind == "article" and rng.random() < self.redirect_rate
                and not url.endswith("/") and "?ref=r" not in url):
            # Canonicalizing redirect: …/itemN.html -> …/itemN.html?ref=r
            target = url + "?ref=r"
            if url != normalize(target):
                inner = self.fetch(target)
                inner.redirected_from = url
                inner.elapsed += elapsed
                return inner
        body, content_type = self._render(page, url)
        size_penalty = len(body) / 2_000_000  # 2 MB/s effective bandwidth
        return FetchResult(url, 200, content_type, body,
                           elapsed + size_penalty)

    # -- internals ------------------------------------------------------------

    def _resolve_page(self, url: str) -> PageSpec | None:
        stripped = url.split("?ref=r")[0]
        page = self.graph.page(stripped)
        if page is not None:
            return page
        # Spider-trap URLs are generated on demand, unboundedly.
        if is_trap_url(stripped):
            host = host_of(stripped)
            if host in self.graph.hosts and self.graph.hosts[host].kind == "trap":
                return PageSpec(url=stripped, host=host,
                                biomedical=self.graph.hosts[host].biomedical,
                                kind="trap", doc_index=0)
        return None

    def _render(self, page: PageSpec, url: str) -> tuple[str, str]:
        if page.content_type.startswith("application/"):
            magic = ("%PDF-1.4" if "pdf" in page.content_type else
                     "\xd0\xcf\x11\xe0")
            rng = seeded_rng(self.seed, "bin", page.url)
            payload = magic + "".join(
                chr(rng.randint(32, 255)) for _ in range(2000))
            # Some servers mislabel binaries as HTML (the paper's
            # unreliable-MIME-detection pitfall).
            mislabeled = rng.random() < 0.4
            return payload, ("text/html" if mislabeled else page.content_type)
        if page.kind == "trap":
            next_url = _next_trap_url(page.url)
            body = (f"<html><head><title>Calendar</title></head><body>"
                    f"<p>Calendar of events.</p>"
                    f'<a href="{next_url}">next</a></body></html>')
            return body, "text/html"
        text = self.graph.body_text(page.url)
        html = self.renderer.render(
            url=page.url, title=self.graph.title_of(page.url),
            body_text=text, outlinks=page.outlinks,
            nav_links=page.nav_links, page_index=page.doc_index)
        return html, "text/html"
