"""Simulated HTTP layer over the synthetic web graph.

Serves rendered HTML (with boilerplate and markup defects), binary
payloads, robots.txt, redirects, errors, and unbounded spider-trap
pages.  Latency is modelled with a deterministic per-URL pseudo-random
draw and accumulated on a :class:`SimulatedClock`, so crawl experiments
measure politeness and throughput without real sleeping.

Content evolution: the web carries an ``epoch`` counter (the recrawl
round) and a ``churn_rate``.  Each page has a deterministic *content
version* — the number of epochs in ``1..epoch`` whose seeded change
draw fell below the churn rate — and its body is evolved through that
many chained revisions (mostly minor word-level edits, occasionally a
major rewrite that also re-renders the page chrome).  ``fetch`` takes
an ``if_version`` argument simulating a conditional GET: when the
stored version still matches, the server answers 304-style with
``not_modified=True`` and no body, at latency-only cost.  Epoch 0 (or
churn 0) reproduces the historical single-snapshot web bit for bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.web.faults import FaultConfig, FaultDecision, FaultInjector
from repro.web.htmlgen import PageRenderer
from repro.util import seeded_rng
from repro.web.robots import render_robots
from repro.web.urls import host_of, normalize
from repro.web.webgraph import PageSpec, WebGraph, _next_trap_url, is_trap_url


def _evolve_text(text: str, rng: random.Random,
                 fraction: float) -> str:
    """One deterministic revision: swap ``fraction`` of the word
    positions (plus one word dropped and one duplicated on heavy
    edits).  Swapping keeps the vocabulary distribution intact — the
    page stays on-topic for the relevance classifier — while changing
    word order, which is what both exact hashes and w-shingles key on.
    """
    words = text.split()
    if len(words) < 2:
        return text
    swaps = max(1, int(len(words) * fraction))
    for _ in range(swaps):
        i = rng.randrange(len(words))
        j = rng.randrange(len(words))
        words[i], words[j] = words[j], words[i]
    if fraction >= 0.2:
        del words[rng.randrange(len(words))]
        words.insert(rng.randrange(len(words) + 1),
                     words[rng.randrange(len(words))])
    return " ".join(words)


class SimulatedClock:
    """A manually-advanced wall clock for politeness accounting."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self.now += seconds
        return self.now


@dataclass
class FetchResult:
    """Outcome of one simulated HTTP GET.

    ``status`` 0 denotes a network-level failure (timeout or refused
    connection; ``failure`` tells them apart).  Binary payloads are
    returned as latin-1 decodable strings carrying their magic bytes.
    """

    url: str
    status: int
    content_type: str
    body: str
    elapsed: float
    redirected_from: str | None = None
    #: Reason code when the fetch failed ("timeout", "server_error",
    #: "rate_limited", "truncated", "redirect_loop", "connect_failed",
    #: "unavailable", "not_found"); None for clean responses.
    failure: str | None = None
    #: Retry-After hint (seconds) on 429 responses.
    retry_after: float = 0.0
    #: Body was cut mid-stream (content-length mismatch).
    truncated: bool = False
    #: Conditional fetch hit: the page's content version still matches
    #: the caller's ``if_version`` (status 304, empty body).
    not_modified: bool = False
    #: The page's content version at serve time (0 on the epoch-0 web
    #: and for non-page responses).  Carried on 200s and 304s so the
    #: crawler can key its replay memory.
    content_version: int = 0

    @property
    def ok(self) -> bool:
        return self.status == 200 and not self.truncated


class SimulatedWeb:
    """Fetch interface over a :class:`WebGraph`."""

    def __init__(self, graph: WebGraph, seed: int = 53,
                 error_rate: float = 0.02, timeout_rate: float = 0.01,
                 redirect_rate: float = 0.03,
                 base_latency: float = 0.15,
                 faults: FaultConfig | FaultInjector | None = None,
                 churn_rate: float = 0.0,
                 major_change_fraction: float = 0.3) -> None:
        if not 0.0 <= churn_rate <= 1.0:
            raise ValueError("churn_rate must be in [0, 1]")
        self.graph = graph
        self.seed = seed
        self.error_rate = error_rate
        self.timeout_rate = timeout_rate
        self.redirect_rate = redirect_rate
        self.base_latency = base_latency
        self.renderer = PageRenderer(seed=seed + 7)
        self.fetch_count = 0
        if isinstance(faults, FaultConfig):
            faults = FaultInjector(faults)
        self.faults = faults
        #: Per-epoch probability that a page's content changes.
        self.churn_rate = churn_rate
        #: Of the pages that change, the fraction whose revision is a
        #: major rewrite (heavy edit + chrome re-render) rather than a
        #: minor word-level touch-up.
        self.major_change_fraction = major_change_fraction
        #: Current recrawl round; 0 is the original snapshot.
        self.epoch = 0
        # url -> (epoch the cached version was computed at, version);
        # versions are monotone in epoch, so the cache extends
        # incrementally as the epoch advances.
        self._version_cache: dict[str, tuple[int, int]] = {}

    def set_epoch(self, epoch: int) -> None:
        """Move the web to a recrawl round (content evolves between
        rounds; setting the same epoch twice is a no-op)."""
        if epoch < 0:
            raise ValueError("epoch must be >= 0")
        self.epoch = epoch

    def content_version(self, url: str) -> int:
        """Deterministic content version of ``url`` at the current
        epoch: the number of epochs in ``1..epoch`` whose seeded churn
        draw changed the page."""
        if self.churn_rate <= 0.0 or self.epoch == 0:
            return 0
        cached_epoch, version = self._version_cache.get(url, (0, 0))
        if cached_epoch > self.epoch:
            cached_epoch, version = 0, 0
        for past in range(cached_epoch + 1, self.epoch + 1):
            if (seeded_rng(self.seed, "churn", url, past).random()
                    < self.churn_rate):
                version += 1
        self._version_cache[url] = (self.epoch, version)
        return version

    # -- public API ---------------------------------------------------------

    def robots_txt(self, host: str) -> str:
        return render_robots(self.graph.host_robots(host))

    def fetch(self, url: str, attempt: int = 0,
              now: float | None = None,
              if_version: int | None = None) -> FetchResult:
        """Simulate one GET; follows at most one internal redirect.

        ``attempt`` keys the fault-injection draw (so retries see fresh
        outcomes) and ``now`` is the simulated clock time (flaky hosts
        recover once it passes their recovery point).  Both default to
        the fault-free single-shot behaviour.  ``if_version`` makes the
        GET conditional: when the resolved page's content version still
        equals it, the response is a body-less 304 with
        ``not_modified=True`` (latency is paid, bandwidth is not).
        """
        self.fetch_count += 1
        url = normalize(url)
        rng = seeded_rng(self.seed, url)
        elapsed = self.base_latency + rng.expovariate(1 / 0.1)
        injected: FaultDecision | None = None
        if self.faults is not None:
            elapsed *= self.faults.latency_factor(host_of(url))
            injected = self.faults.decide(url, attempt, now,
                                          epoch=self.epoch)
            if injected is not None and injected.kind != "truncated":
                return self._faulted(url, injected, elapsed)
        if url.endswith("/robots.txt"):
            body = self.robots_txt(host_of(url))
            return FetchResult(url, 200, "text/plain", body, elapsed)
        roll = rng.random()
        if roll < self.timeout_rate:
            return FetchResult(url, 0, "", "", elapsed + 30.0,
                               failure="timeout")
        if roll < self.timeout_rate + self.error_rate:
            return FetchResult(url, 500, "text/html",
                               "<html>Internal Server Error</html>", elapsed,
                               failure="server_error")
        page = self._resolve_page(url)
        if page is None:
            return FetchResult(url, 404, "text/html",
                               "<html>Not Found</html>", elapsed,
                               failure="not_found")
        if (page.kind == "article" and rng.random() < self.redirect_rate
                and not url.endswith("/") and "?ref=r" not in url):
            # Canonicalizing redirect: …/itemN.html -> …/itemN.html?ref=r
            target = url + "?ref=r"
            if url != normalize(target):
                inner = self.fetch(target, attempt=attempt, now=now,
                                   if_version=if_version)
                inner.redirected_from = url
                inner.elapsed += elapsed
                return inner
        # The version is keyed on the canonical page URL so direct and
        # redirected fetches of the same page agree.  The conditional
        # check sits *after* the redirect roll so the per-URL RNG
        # consumes identical draws on the 304 and 200 paths.
        version = self.content_version(page.url)
        if (if_version is not None and version == if_version
                and injected is None):
            return FetchResult(url, 304, "", "", elapsed,
                               not_modified=True, content_version=version)
        body, content_type = self._render(page, url, version)
        size_penalty = len(body) / 2_000_000  # 2 MB/s effective bandwidth
        if injected is not None:  # injected.kind == "truncated"
            body = body[:max(1, int(len(body) * injected.keep_fraction))]
            return FetchResult(url, 200, content_type, body,
                               elapsed + size_penalty, failure="truncated",
                               truncated=True, content_version=version)
        return FetchResult(url, 200, content_type, body,
                           elapsed + size_penalty, content_version=version)

    def _faulted(self, url: str, fault: FaultDecision,
                 elapsed: float) -> FetchResult:
        """Materialize an injected fault as a FetchResult."""
        kind = fault.kind
        if kind == "timeout":
            return FetchResult(url, 0, "", "", elapsed + 30.0,
                               failure="timeout")
        if kind == "connect_failed":
            # Refused connections fail fast.
            return FetchResult(url, 0, "", "", min(elapsed, 0.05),
                               failure="connect_failed")
        if kind == "unavailable":
            return FetchResult(url, 503, "text/html",
                               "<html>Service Unavailable</html>", elapsed,
                               failure="unavailable")
        if kind == "server_error":
            return FetchResult(url, 500, "text/html",
                               "<html>Internal Server Error</html>", elapsed,
                               failure="server_error")
        if kind == "rate_limited":
            return FetchResult(url, 429, "text/html",
                               "<html>Too Many Requests</html>", elapsed,
                               failure="rate_limited",
                               retry_after=fault.retry_after)
        if kind == "redirect_loop":
            # The client walks several hops before giving up.
            return FetchResult(url, 310, "", "", elapsed * 4,
                               failure="redirect_loop")
        raise ValueError(f"unknown fault kind: {kind!r}")

    # -- internals ------------------------------------------------------------

    def _resolve_page(self, url: str) -> PageSpec | None:
        stripped = url.split("?ref=r")[0]
        page = self.graph.page(stripped)
        if page is not None:
            return page
        # Spider-trap URLs are generated on demand, unboundedly.
        if is_trap_url(stripped):
            host = host_of(stripped)
            if host in self.graph.hosts and self.graph.hosts[host].kind == "trap":
                return PageSpec(url=stripped, host=host,
                                biomedical=self.graph.hosts[host].biomedical,
                                kind="trap", doc_index=0)
        return None

    def _render(self, page: PageSpec, url: str,
                version: int = 0) -> tuple[str, str]:
        if page.content_type.startswith("application/"):
            # Versioned binaries draw a fresh payload; version 0 keeps
            # the historical key so the epoch-0 web is bit-identical.
            if version:
                rng = seeded_rng(self.seed, "bin", page.url, version)
            else:
                rng = seeded_rng(self.seed, "bin", page.url)
            magic = ("%PDF-1.4" if "pdf" in page.content_type else
                     "\xd0\xcf\x11\xe0")
            payload = magic + "".join(
                chr(rng.randint(32, 255)) for _ in range(2000))
            # Some servers mislabel binaries as HTML (the paper's
            # unreliable-MIME-detection pitfall).
            mislabeled = rng.random() < 0.4
            return payload, ("text/html" if mislabeled else page.content_type)
        if page.kind == "trap":
            next_url = _next_trap_url(page.url)
            body = (f"<html><head><title>Calendar</title></head><body>"
                    f"<p>Calendar of events.</p>"
                    f'<a href="{next_url}">next</a></body></html>')
            return body, "text/html"
        text, chrome_salt = self._evolved_text(page.url, version)
        html = self.renderer.render(
            url=page.url, title=self.graph.title_of(page.url),
            body_text=text, outlinks=page.outlinks,
            nav_links=page.nav_links,
            page_index=page.doc_index + chrome_salt * 7919)
        return html, "text/html"

    def _evolved_text(self, url: str, version: int) -> tuple[str, int]:
        """Body text after ``version`` chained revisions, plus the
        chrome salt (last major-revision number; 0 means the original
        page chrome).

        Minor revisions reorder a few percent of the words — enough to
        break exact content hashes while keeping shingle similarity
        high.  Major revisions reorder about half the text and bump
        the chrome salt so the rendered page changes wholesale.
        """
        text = self.graph.body_text(url)
        salt = 0
        for revision in range(1, version + 1):
            rng = seeded_rng(self.seed, "rev", url, revision)
            if rng.random() < self.major_change_fraction:
                text = _evolve_text(text, rng, 0.5)
                salt = revision
            else:
                text = _evolve_text(text, rng, 0.03)
        return text, salt
