"""Simulated HTTP layer over the synthetic web graph.

Serves rendered HTML (with boilerplate and markup defects), binary
payloads, robots.txt, redirects, errors, and unbounded spider-trap
pages.  Latency is modelled with a deterministic per-URL pseudo-random
draw and accumulated on a :class:`SimulatedClock`, so crawl experiments
measure politeness and throughput without real sleeping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.web.faults import FaultConfig, FaultDecision, FaultInjector
from repro.web.htmlgen import PageRenderer
from repro.util import seeded_rng
from repro.web.robots import render_robots
from repro.web.urls import host_of, normalize
from repro.web.webgraph import PageSpec, WebGraph, _next_trap_url, is_trap_url


class SimulatedClock:
    """A manually-advanced wall clock for politeness accounting."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self.now += seconds
        return self.now


@dataclass
class FetchResult:
    """Outcome of one simulated HTTP GET.

    ``status`` 0 denotes a network-level failure (timeout or refused
    connection; ``failure`` tells them apart).  Binary payloads are
    returned as latin-1 decodable strings carrying their magic bytes.
    """

    url: str
    status: int
    content_type: str
    body: str
    elapsed: float
    redirected_from: str | None = None
    #: Reason code when the fetch failed ("timeout", "server_error",
    #: "rate_limited", "truncated", "redirect_loop", "connect_failed",
    #: "unavailable", "not_found"); None for clean responses.
    failure: str | None = None
    #: Retry-After hint (seconds) on 429 responses.
    retry_after: float = 0.0
    #: Body was cut mid-stream (content-length mismatch).
    truncated: bool = False

    @property
    def ok(self) -> bool:
        return self.status == 200 and not self.truncated


class SimulatedWeb:
    """Fetch interface over a :class:`WebGraph`."""

    def __init__(self, graph: WebGraph, seed: int = 53,
                 error_rate: float = 0.02, timeout_rate: float = 0.01,
                 redirect_rate: float = 0.03,
                 base_latency: float = 0.15,
                 faults: FaultConfig | FaultInjector | None = None) -> None:
        self.graph = graph
        self.seed = seed
        self.error_rate = error_rate
        self.timeout_rate = timeout_rate
        self.redirect_rate = redirect_rate
        self.base_latency = base_latency
        self.renderer = PageRenderer(seed=seed + 7)
        self.fetch_count = 0
        if isinstance(faults, FaultConfig):
            faults = FaultInjector(faults)
        self.faults = faults

    # -- public API ---------------------------------------------------------

    def robots_txt(self, host: str) -> str:
        return render_robots(self.graph.host_robots(host))

    def fetch(self, url: str, attempt: int = 0,
              now: float | None = None) -> FetchResult:
        """Simulate one GET; follows at most one internal redirect.

        ``attempt`` keys the fault-injection draw (so retries see fresh
        outcomes) and ``now`` is the simulated clock time (flaky hosts
        recover once it passes their recovery point).  Both default to
        the fault-free single-shot behaviour.
        """
        self.fetch_count += 1
        url = normalize(url)
        rng = seeded_rng(self.seed, url)
        elapsed = self.base_latency + rng.expovariate(1 / 0.1)
        injected: FaultDecision | None = None
        if self.faults is not None:
            elapsed *= self.faults.latency_factor(host_of(url))
            injected = self.faults.decide(url, attempt, now)
            if injected is not None and injected.kind != "truncated":
                return self._faulted(url, injected, elapsed)
        if url.endswith("/robots.txt"):
            body = self.robots_txt(host_of(url))
            return FetchResult(url, 200, "text/plain", body, elapsed)
        roll = rng.random()
        if roll < self.timeout_rate:
            return FetchResult(url, 0, "", "", elapsed + 30.0,
                               failure="timeout")
        if roll < self.timeout_rate + self.error_rate:
            return FetchResult(url, 500, "text/html",
                               "<html>Internal Server Error</html>", elapsed,
                               failure="server_error")
        page = self._resolve_page(url)
        if page is None:
            return FetchResult(url, 404, "text/html",
                               "<html>Not Found</html>", elapsed,
                               failure="not_found")
        if (page.kind == "article" and rng.random() < self.redirect_rate
                and not url.endswith("/") and "?ref=r" not in url):
            # Canonicalizing redirect: …/itemN.html -> …/itemN.html?ref=r
            target = url + "?ref=r"
            if url != normalize(target):
                inner = self.fetch(target, attempt=attempt, now=now)
                inner.redirected_from = url
                inner.elapsed += elapsed
                return inner
        body, content_type = self._render(page, url)
        size_penalty = len(body) / 2_000_000  # 2 MB/s effective bandwidth
        if injected is not None:  # injected.kind == "truncated"
            body = body[:max(1, int(len(body) * injected.keep_fraction))]
            return FetchResult(url, 200, content_type, body,
                               elapsed + size_penalty, failure="truncated",
                               truncated=True)
        return FetchResult(url, 200, content_type, body,
                           elapsed + size_penalty)

    def _faulted(self, url: str, fault: FaultDecision,
                 elapsed: float) -> FetchResult:
        """Materialize an injected fault as a FetchResult."""
        kind = fault.kind
        if kind == "timeout":
            return FetchResult(url, 0, "", "", elapsed + 30.0,
                               failure="timeout")
        if kind == "connect_failed":
            # Refused connections fail fast.
            return FetchResult(url, 0, "", "", min(elapsed, 0.05),
                               failure="connect_failed")
        if kind == "unavailable":
            return FetchResult(url, 503, "text/html",
                               "<html>Service Unavailable</html>", elapsed,
                               failure="unavailable")
        if kind == "server_error":
            return FetchResult(url, 500, "text/html",
                               "<html>Internal Server Error</html>", elapsed,
                               failure="server_error")
        if kind == "rate_limited":
            return FetchResult(url, 429, "text/html",
                               "<html>Too Many Requests</html>", elapsed,
                               failure="rate_limited",
                               retry_after=fault.retry_after)
        if kind == "redirect_loop":
            # The client walks several hops before giving up.
            return FetchResult(url, 310, "", "", elapsed * 4,
                               failure="redirect_loop")
        raise ValueError(f"unknown fault kind: {kind!r}")

    # -- internals ------------------------------------------------------------

    def _resolve_page(self, url: str) -> PageSpec | None:
        stripped = url.split("?ref=r")[0]
        page = self.graph.page(stripped)
        if page is not None:
            return page
        # Spider-trap URLs are generated on demand, unboundedly.
        if is_trap_url(stripped):
            host = host_of(stripped)
            if host in self.graph.hosts and self.graph.hosts[host].kind == "trap":
                return PageSpec(url=stripped, host=host,
                                biomedical=self.graph.hosts[host].biomedical,
                                kind="trap", doc_index=0)
        return None

    def _render(self, page: PageSpec, url: str) -> tuple[str, str]:
        if page.content_type.startswith("application/"):
            magic = ("%PDF-1.4" if "pdf" in page.content_type else
                     "\xd0\xcf\x11\xe0")
            rng = seeded_rng(self.seed, "bin", page.url)
            payload = magic + "".join(
                chr(rng.randint(32, 255)) for _ in range(2000))
            # Some servers mislabel binaries as HTML (the paper's
            # unreliable-MIME-detection pitfall).
            mislabeled = rng.random() < 0.4
            return payload, ("text/html" if mislabeled else page.content_type)
        if page.kind == "trap":
            next_url = _next_trap_url(page.url)
            body = (f"<html><head><title>Calendar</title></head><body>"
                    f"<p>Calendar of events.</p>"
                    f'<a href="{next_url}">next</a></body></html>')
            return body, "text/html"
        text = self.graph.body_text(page.url)
        html = self.renderer.render(
            url=page.url, title=self.graph.title_of(page.url),
            body_text=text, outlinks=page.outlinks,
            nav_links=page.nav_links, page_index=page.doc_index)
        return html, "text/html"
