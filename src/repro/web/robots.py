"""Minimal robots.txt model.

Supports the subset of the robots exclusion protocol the paper's
crawler respects: ``User-agent`` groups with ``Disallow``/``Allow``
prefix rules and ``Crawl-delay``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.web.urls import path_of


@dataclass
class RobotsPolicy:
    """Parsed robots rules for one host (single-agent view)."""

    disallow: list[str] = field(default_factory=list)
    allow: list[str] = field(default_factory=list)
    crawl_delay: float = 0.0

    def allows(self, url: str) -> bool:
        """Longest-prefix-match semantics, Allow wins ties."""
        path = path_of(url)
        best_allow = _longest_prefix(path, self.allow)
        best_disallow = _longest_prefix(path, self.disallow)
        if best_disallow < 0:
            return True
        return best_allow >= best_disallow


def _longest_prefix(path: str, prefixes: list[str]) -> int:
    best = -1
    for prefix in prefixes:
        if prefix and path.startswith(prefix):
            best = max(best, len(prefix))
    return best


def parse_robots(text: str, agent: str = "*") -> RobotsPolicy:
    """Parse robots.txt for the given agent (falls back to ``*``).

    Unknown directives are ignored; a missing or empty file allows
    everything.
    """
    groups: dict[str, RobotsPolicy] = {}
    current_agents: list[str] = []
    expecting_agents = True
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line or ":" not in line:
            continue
        key, _sep, value = line.partition(":")
        key = key.strip().lower()
        value = value.strip()
        if key == "user-agent":
            if not expecting_agents:
                current_agents = []
            expecting_agents = True
            current_agents.append(value.lower())
            for name in current_agents:
                groups.setdefault(name, RobotsPolicy())
            continue
        expecting_agents = False
        for name in current_agents:
            policy = groups.setdefault(name, RobotsPolicy())
            if key == "disallow" and value:
                policy.disallow.append(value)
            elif key == "allow" and value:
                policy.allow.append(value)
            elif key == "crawl-delay":
                try:
                    policy.crawl_delay = float(value)
                except ValueError:
                    pass
    agent = agent.lower()
    if agent in groups:
        return groups[agent]
    return groups.get("*", RobotsPolicy())


def render_robots(policy: RobotsPolicy, agent: str = "*") -> str:
    """Serialize a policy back to robots.txt text."""
    lines = [f"User-agent: {agent}"]
    lines.extend(f"Disallow: {p}" for p in policy.disallow)
    lines.extend(f"Allow: {p}" for p in policy.allow)
    if policy.crawl_delay:
        lines.append(f"Crawl-delay: {policy.crawl_delay:g}")
    return "\n".join(lines) + "\n"
