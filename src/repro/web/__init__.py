"""Synthetic web substrate.

The paper crawls the live 2015 web; offline we substitute a
deterministic synthetic web: a host/page graph with topical locality
(:mod:`repro.web.webgraph`), an HTML renderer that wraps article text
in boilerplate and injects the markup-defect classes real pages show
(:mod:`repro.web.htmlgen`), and a simulated HTTP layer with robots.txt,
politeness, redirects, errors, and spider traps
(:mod:`repro.web.server`).

The crawler exercises exactly the same code paths against this
substrate as it would against live HTTP.
"""

from repro.web.webgraph import WebGraph, WebGraphConfig, PageSpec
from repro.web.htmlgen import PageRenderer
from repro.web.faults import (
    FaultConfig, FaultDecision, FaultInjector, FaultRates,
)
from repro.web.server import SimulatedWeb, FetchResult, SimulatedClock
from repro.web.robots import RobotsPolicy, parse_robots
from repro.web.warc import ArchivedWeb, WarcRecord, WarcWriter, read_warc

__all__ = [
    "WebGraph",
    "WebGraphConfig",
    "PageSpec",
    "PageRenderer",
    "FaultConfig",
    "FaultDecision",
    "FaultInjector",
    "FaultRates",
    "SimulatedWeb",
    "FetchResult",
    "SimulatedClock",
    "RobotsPolicy",
    "ArchivedWeb",
    "WarcRecord",
    "WarcWriter",
    "read_warc",
    "parse_robots",
]
