"""URL helpers: parsing, normalization, resolution.

A deliberately small, dependency-free subset of URL handling — enough
for the crawler's needs (host extraction, relative-link resolution,
normalization for deduplication).
"""

from __future__ import annotations

from functools import lru_cache
from urllib.parse import urljoin, urlsplit, urlunsplit


def host_of(url: str) -> str:
    """Lower-cased host part of a URL ('' if not parseable)."""
    return urlsplit(url).netloc.lower()


def domain_of(url: str) -> str:
    """Registered-domain approximation: last two host labels.

    The synthetic web uses ``<name>.example.<tld>`` hosts, where
    ``example`` acts as a public suffix — three labels are kept there
    so each synthetic site is its own domain.
    """
    host = host_of(url)
    labels = host.split(".")
    if len(labels) <= 2:
        return host
    if labels[-2] == "example" and len(labels) >= 3:
        return ".".join(labels[-3:])
    return ".".join(labels[-2:])


@lru_cache(maxsize=65536)
def normalize(url: str) -> str:
    """Canonical form for deduplication.

    Lower-cases scheme and host, drops fragments, removes default
    ports, and collapses a lone trailing slash on the root path.
    Memoized (pure function of its argument): a crawl normalizes the
    same navigation and seed URLs over and over.
    """
    scheme, netloc, path, query, _fragment = urlsplit(url)
    scheme = scheme.lower()
    netloc = netloc.lower()
    if netloc.endswith(":80") and scheme == "http":
        netloc = netloc[:-3]
    if netloc.endswith(":443") and scheme == "https":
        netloc = netloc[:-4]
    if path == "":
        path = "/"
    return urlunsplit((scheme, netloc, path, query, ""))


def resolve(base: str, link: str) -> str:
    """Resolve a (possibly relative) link against a base URL.

    For already-absolute lowercase-scheme links, ``urljoin`` is the
    identity (it neither collapses dot segments nor rewrites anything
    when the reference carries its own scheme and netloc), so the join
    is skipped.
    """
    if link.startswith(("http://", "https://")):
        return normalize(link)
    return normalize(urljoin(base, link))


def path_of(url: str) -> str:
    return urlsplit(url).path or "/"


def extension_of(url: str) -> str:
    """File-name extension of the URL path ('' if none)."""
    path = path_of(url)
    name = path.rsplit("/", 1)[-1]
    if "." not in name:
        return ""
    return name.rsplit(".", 1)[-1].lower()
