"""HTML page renderer with realistic defects and boilerplate.

Wraps article text in the clutter real pages carry — navigation bars,
ad blocks, cookie banners, footers, comment teasers — and injects the
markup-defect classes reported for the real web (per the paper's
reference [19], ~95 % of pages violate the HTML standard): unclosed
tags, unquoted attributes, mis-nesting, raw ampersands, deprecated
tags, and truncated documents.

The split between boilerplate and content blocks is what the
Boilerpipe-style detector in :mod:`repro.html.boilerplate` must
recover: boilerplate blocks are short and link-dense, content blocks
long and link-poor.
"""

from __future__ import annotations

import random

from repro.corpora.markov import default_filler_model
from repro.util import seeded_rng

_AD_SLOGANS = [
    "Best supplement deals!",
    "Lose weight fast",
    "Advertise here today",
    "Get our app",
    "Premium 50% off",
]

_NAV_LABELS = ["Home", "About", "News", "Contact", "Archive",
               "Login", "Register", "Search", "Sitemap", "Help"]

#: Defect classes; each is a post-processing function on the HTML.
DEFECT_CLASSES = (
    "unclosed_tag", "unquoted_attr", "misnesting", "raw_ampersand",
    "deprecated_tag", "truncated", "duplicate_attr",
)


class PageRenderer:
    """Deterministic HTML renderer.

    ``defect_rate`` is the probability that a page carries at least one
    markup defect (default 0.95, matching [19]); a defective page gets
    1-3 defects drawn from :data:`DEFECT_CLASSES`.
    """

    def __init__(self, seed: int = 41, defect_rate: float = 0.95,
                 severe_defect_rate: float = 0.13) -> None:
        self.seed = seed
        self.defect_rate = defect_rate
        #: Fraction of pages so broken they cannot be transcoded
        #: (paper cites 13 %); these get the ``truncated`` defect.
        self.severe_defect_rate = severe_defect_rate
        self._filler = default_filler_model(seed)

    def render(self, url: str, title: str, body_text: str,
               outlinks: list[str], page_index: int = 0,
               nav_links: list[str] | None = None) -> str:
        """Render one page. ``outlinks`` appear as content links,
        ``nav_links`` (default: outlinks) as navigation chrome."""
        rng = seeded_rng(self.seed, url, page_index)
        nav_links = nav_links if nav_links is not None else outlinks
        html = self._assemble(rng, url, title, body_text, outlinks, nav_links)
        return self._corrupt(rng, html)

    # -- assembly -------------------------------------------------------

    def _assemble(self, rng: random.Random, url: str, title: str,
                  body_text: str, outlinks: list[str],
                  nav_links: list[str]) -> str:
        parts: list[str] = [
            "<!DOCTYPE html>",
            "<html>",
            f"<head><title>{title}</title>",
            '<meta charset="utf-8">',
            '<script>var tracker = "analytics";</script>',
            '<style>.ad { color: red; }</style>',
            "</head>",
            "<body>",
        ]
        # Header navigation: short, link-dense boilerplate.
        parts.append('<div class="nav"><ul>')
        labels = rng.sample(_NAV_LABELS, k=min(6, len(_NAV_LABELS)))
        for label, link in zip(labels, nav_links[:6]):
            parts.append(f'<li><a href="{link}">{label}</a></li>')
        for label in labels[len(nav_links):]:
            parts.append(f'<li><a href="/{label.lower()}.html">{label}</a></li>')
        parts.append("</ul></div>")
        # Cookie banner: short and link-bearing.
        parts.append('<div class="banner">'
                     f'{self._filler.text(1, max_words=6, rng=rng)}'
                     '<a href="/privacy.html">privacy policy</a> '
                     '<a href="/accept">accept</a></div>')
        # Sidebar with ads and teasers (short, link-dense).
        parts.append('<div class="sidebar">')
        for _ in range(rng.randint(1, 3)):
            parts.append(f'<div class="ad">{rng.choice(_AD_SLOGANS)}'
                         '<a href="http://ads.example.com/click">more</a></div>')
        parts.append(f'<div class="teaser">'
                     f'{self._filler.text(1, max_words=6, rng=rng)}'
                     '<a href="/archive.html">read more stories</a> '
                     '<a href="/subscribe.html">subscribe now</a></div>')
        parts.append("</div>")
        # Main content: long paragraphs, few links.  A share of the
        # content is rendered as fact lists — real pages put valuable
        # facts into <ul>/<table> structures, which shallow boilerplate
        # detection systematically misses (the paper's recall loss).
        parts.append('<div id="content">')
        parts.append(f"<h1>{title}</h1>")
        for paragraph in _paragraphs(body_text, rng):
            if rng.random() < 0.22:
                words = paragraph.split(" ")
                parts.append("<ul>")
                for i in range(0, len(words), 4):
                    parts.append(f"<li>{' '.join(words[i:i + 4])}</li>")
                parts.append("</ul>")
            else:
                parts.append(f"<p>{paragraph}</p>")
        if outlinks:
            parts.append('<div class="related"><h2>Related</h2><ul>')
            for link in outlinks:
                parts.append(f'<li><a href="{link}">related article</a></li>')
            parts.append("</ul></div>")
        parts.append("</div>")
        # Footer boilerplate.
        parts.append('<div class="footer">'
                     f'{self._filler.text(1, max_words=7, rng=rng)}'
                     f'<a href="{url}">permalink</a> '
                     '<a href="/terms.html">terms</a></div>')
        parts.append("</body></html>")
        return "\n".join(parts)

    # -- defect injection -------------------------------------------------

    def _corrupt(self, rng: random.Random, html: str) -> str:
        if rng.random() >= self.defect_rate:
            return html
        defects = rng.sample(DEFECT_CLASSES, k=rng.randint(1, 3))
        if rng.random() < self.severe_defect_rate and "truncated" not in defects:
            defects.append("truncated")
        for defect in defects:
            html = _APPLY[defect](html, rng)
        return html


def _paragraphs(text: str, rng: random.Random) -> list[str]:
    """Split article text into 1-6 paragraphs at sentence boundaries."""
    sentences = text.split(". ")
    if len(sentences) <= 2:
        return [text]
    n_paragraphs = min(rng.randint(2, 6), len(sentences))
    size = max(1, len(sentences) // n_paragraphs)
    paragraphs = []
    for i in range(0, len(sentences), size):
        chunk = ". ".join(sentences[i:i + size])
        if not chunk.endswith((".", "!", "?", ")")):
            chunk += "."
        paragraphs.append(chunk)
    return paragraphs


# -- individual defect transformations ----------------------------------

def _unclosed_tag(html: str, rng: random.Random) -> str:
    for closer in ("</li>", "</p>", "</div>"):
        if closer in html:
            return html.replace(closer, "", rng.randint(1, 3))
    return html


def _unquoted_attr(html: str, rng: random.Random) -> str:
    marker = 'href="'
    index = html.find(marker)
    if index < 0:
        return html
    end = html.find('"', index + len(marker))
    if end < 0:
        return html
    return (html[:index] + "href=" + html[index + len(marker):end]
            + html[end + 1:])


def _misnesting(html: str, rng: random.Random) -> str:
    if "</ul></div>" in html:
        return html.replace("</ul></div>", "</div></ul>", 1)
    if "<p>" in html:
        return html.replace("<p>", "<p><b>", 1)
    return html


def _raw_ampersand(html: str, rng: random.Random) -> str:
    sentinel = " and "
    if sentinel in html:
        return html.replace(sentinel, " & ", 1)
    return html + "&"


def _deprecated_tag(html: str, rng: random.Random) -> str:
    if "<h1>" in html:
        return html.replace("<h1>", "<center><font size=5>", 1).replace(
            "</h1>", "</font></center>", 1)
    return html


def _truncated(html: str, rng: random.Random) -> str:
    cut = rng.randint(int(len(html) * 0.7), len(html) - 1)
    return html[:cut]


def _duplicate_attr(html: str, rng: random.Random) -> str:
    marker = '<div class="sidebar">'
    if marker in html:
        return html.replace(marker, '<div class="sidebar" class="side">', 1)
    return html


_APPLY = {
    "unclosed_tag": _unclosed_tag,
    "unquoted_attr": _unquoted_attr,
    "misnesting": _misnesting,
    "raw_ampersand": _raw_ampersand,
    "deprecated_tag": _deprecated_tag,
    "truncated": _truncated,
    "duplicate_attr": _duplicate_attr,
}
