"""Minimal WARC-style archive reader/writer.

Production crawlers persist fetched pages as WARC (the format
CommonCrawl — the paper's negative-class training source — publishes).
This is a small, self-contained implementation of the subset needed to
archive and replay simulated crawls: ``response`` records with URL,
timestamp, content type, status, and payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.web.server import FetchResult

_HEADER_END = "\r\n\r\n"


@dataclass(frozen=True)
class WarcRecord:
    """One archived fetch."""

    url: str
    status: int
    content_type: str
    payload: str
    timestamp: float = 0.0

    @classmethod
    def from_fetch(cls, fetch: FetchResult,
                   timestamp: float = 0.0) -> "WarcRecord":
        return cls(url=fetch.url, status=fetch.status,
                   content_type=fetch.content_type, payload=fetch.body,
                   timestamp=timestamp)

    def to_fetch_result(self) -> FetchResult:
        return FetchResult(url=self.url, status=self.status,
                           content_type=self.content_type,
                           body=self.payload, elapsed=0.0)


def _render_record(record: WarcRecord) -> str:
    payload_bytes = record.payload.encode("utf-8")
    headers = [
        "WARC/1.0",
        "WARC-Type: response",
        f"WARC-Target-URI: {record.url}",
        f"WARC-Date: {record.timestamp:.3f}",
        f"X-Status: {record.status}",
        f"Content-Type: {record.content_type or 'application/octet-stream'}",
        f"Content-Length: {len(payload_bytes)}",
    ]
    return "\r\n".join(headers) + _HEADER_END + record.payload + "\r\n\r\n"


class WarcWriter:
    """Appends response records to a WARC-style file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8", newline="")
        self.records_written = 0

    def write(self, record: WarcRecord) -> None:
        self._handle.write(_render_record(record))
        self.records_written += 1

    def write_fetch(self, fetch: FetchResult,
                    timestamp: float = 0.0) -> None:
        self.write(WarcRecord.from_fetch(fetch, timestamp))

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "WarcWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_warc(path: str | Path) -> Iterator[WarcRecord]:
    """Stream records back from a WARC-style file."""
    # newline='' disables universal-newline translation: the record
    # framing is CRLF and must survive the read byte-for-byte.
    with Path(path).open("r", encoding="utf-8", newline="") as handle:
        text = handle.read()
    position = 0
    while position < len(text):
        header_end = text.find(_HEADER_END, position)
        if header_end < 0:
            break
        header_block = text[position:header_end]
        headers: dict[str, str] = {}
        lines = header_block.split("\r\n")
        if not lines or not lines[0].startswith("WARC/"):
            raise ValueError(f"malformed WARC record at byte {position}")
        for line in lines[1:]:
            key, _sep, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        payload_start = header_end + len(_HEADER_END)
        payload_bytes = text[payload_start:].encode("utf-8")[:length]
        payload = payload_bytes.decode("utf-8")
        yield WarcRecord(
            url=headers.get("warc-target-uri", ""),
            status=int(headers.get("x-status", "0")),
            content_type=headers.get("content-type", ""),
            payload=payload,
            timestamp=float(headers.get("warc-date", "0")))
        position = payload_start + len(payload) + len("\r\n\r\n")


class ArchivedWeb:
    """Replay a WARC archive through the SimulatedWeb fetch interface.

    Lets analyses re-run against an archived crawl without the original
    web graph — the "existing (open) large web crawl" option from the
    paper's introduction.
    """

    def __init__(self, path: str | Path) -> None:
        self._records = {record.url: record for record in read_warc(path)}
        self.fetch_count = 0

    def __len__(self) -> int:
        return len(self._records)

    def fetch(self, url: str) -> FetchResult:
        self.fetch_count += 1
        record = self._records.get(url)
        if record is None:
            return FetchResult(url, 404, "text/html", "", 0.0)
        return record.to_fetch_result()

    def urls(self) -> list[str]:
        return list(self._records)
