"""Fault injection for the simulated web.

The paper's crawl is an exercise in surviving an unreliable substrate:
dead hosts, timeouts, truncated responses, rate limiting, and servers
that disappear for hours and come back.  :class:`SimulatedWeb` on its
own only models a thin background error rate; this module adds a
configurable, *deterministic* fault layer on top so the crawl loop's
retry, backoff, and quarantine machinery can be exercised (and its
behaviour asserted) without any real network.

Determinism contract: every fault decision is a pure function of
``(config.seed, url, attempt, epoch)`` plus the per-host trait
assignment (a pure function of ``(config.seed, host)``) and, for flaky
hosts, the simulated clock.  Re-fetching the same URL at the same
attempt number in the same epoch always yields the same outcome, which
is what makes a killed crawl resumable to byte-identical results — and
retries meaningful, because attempt ``n+1`` draws a fresh outcome.
The ``epoch`` component exists for incremental recrawl: without it,
every recrawl round would deterministically re-experience the exact
same faults on the exact same pages, which is both unrealistic and
masks recovery behaviour.  ``epoch=0`` reproduces the historical
``(seed, url, attempt)`` stream bit for bit, so single-round crawls
are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.util import seeded_rng
from repro.web.urls import host_of

#: Reason codes a fault decision (or a plain fetch failure) can carry.
#: ``crawler.robust`` consumes these to decide retryability and
#: breaker accounting.
FAULT_KINDS = ("server_error", "rate_limited", "timeout", "truncated",
               "redirect_loop", "connect_failed", "unavailable")


@dataclass(frozen=True)
class FaultRates:
    """Per-fetch fault probabilities (independent of host traits)."""

    #: HTTP 500 responses.
    error: float = 0.0
    #: HTTP 429 responses carrying a Retry-After hint.
    rate_limit: float = 0.0
    #: Network timeouts (status 0, costs the full attempt timeout).
    timeout: float = 0.0
    #: Status 200 but the body cut mid-stream (content-length
    #: mismatch in a real client).
    truncate: float = 0.0
    #: Redirect chains that never converge (status 310 here).
    redirect_loop: float = 0.0

    @property
    def total(self) -> float:
        return (self.error + self.rate_limit + self.timeout
                + self.truncate + self.redirect_loop)


@dataclass
class FaultConfig:
    """The full fault model: global rates, host traits, overrides."""

    seed: int = 0
    rates: FaultRates = field(default_factory=FaultRates)
    #: Per-host rate overrides (exact host name -> rates).
    per_host: dict[str, FaultRates] = field(default_factory=dict)
    #: Fraction of hosts that answer slowly (latency multiplied).
    slow_host_fraction: float = 0.0
    slow_factor: float = 6.0
    #: Fraction of hosts that never answer (connection refused).
    dead_host_fraction: float = 0.0
    #: Fraction of hosts that fail until a per-host recovery time on
    #: the simulated clock, then behave normally.
    flaky_host_fraction: float = 0.0
    #: Mean recovery time for flaky hosts (simulated seconds); the
    #: per-host value is drawn uniformly in [0.5x, 1.5x].
    flaky_recovery_mean: float = 400.0

    @classmethod
    def preset(cls, name: str, seed: int = 0) -> "FaultConfig | None":
        """Named fault profiles for the CLI and CI smoke runs.

        ``none`` returns None (fault layer disabled); ``default`` is a
        20 % per-fetch failure rate plus host traits; ``heavy`` roughly
        doubles everything.
        """
        if name == "none":
            return None
        if name == "default":
            return cls(seed=seed,
                       rates=FaultRates(error=0.06, rate_limit=0.04,
                                        timeout=0.05, truncate=0.03,
                                        redirect_loop=0.02),
                       slow_host_fraction=0.10,
                       dead_host_fraction=0.05,
                       flaky_host_fraction=0.10)
        if name == "heavy":
            return cls(seed=seed,
                       rates=FaultRates(error=0.12, rate_limit=0.08,
                                        timeout=0.10, truncate=0.06,
                                        redirect_loop=0.04),
                       slow_host_fraction=0.20,
                       dead_host_fraction=0.10,
                       flaky_host_fraction=0.15,
                       flaky_recovery_mean=250.0)
        raise ValueError(f"unknown fault preset: {name!r} "
                         "(expected none | default | heavy | a rate)")

    @classmethod
    def uniform(cls, total_rate: float, seed: int = 0) -> "FaultConfig":
        """A flat per-fetch failure probability split evenly across
        the five fault kinds, with no host traits — the knob the
        yield-vs-fault-rate benchmark sweeps."""
        if not 0.0 <= total_rate <= 1.0:
            raise ValueError("total_rate must be in [0, 1]")
        share = total_rate / 5.0
        return cls(seed=seed,
                   rates=FaultRates(error=share, rate_limit=share,
                                    timeout=share, truncate=share,
                                    redirect_loop=share))

    def with_host(self, host: str, rates: FaultRates) -> "FaultConfig":
        per_host = dict(self.per_host)
        per_host[host] = rates
        return replace(self, per_host=per_host)


@dataclass(frozen=True)
class FaultDecision:
    """One injected fault: what went wrong for this (url, attempt)."""

    kind: str
    retry_after: float = 0.0
    #: For ``truncated``: fraction of the body that survives.
    keep_fraction: float = 1.0


class FaultInjector:
    """Draws deterministic fault decisions for a :class:`FaultConfig`."""

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._traits: dict[str, str] = {}
        self._recovery: dict[str, float] = {}

    # -- host traits --------------------------------------------------------

    def host_trait(self, host: str) -> str:
        """``ok`` | ``slow`` | ``dead`` | ``flaky`` — stable per host."""
        trait = self._traits.get(host)
        if trait is None:
            cfg = self.config
            roll = seeded_rng(cfg.seed, "trait", host).random()
            if roll < cfg.dead_host_fraction:
                trait = "dead"
            elif roll < cfg.dead_host_fraction + cfg.flaky_host_fraction:
                trait = "flaky"
            elif roll < (cfg.dead_host_fraction + cfg.flaky_host_fraction
                         + cfg.slow_host_fraction):
                trait = "slow"
            else:
                trait = "ok"
            self._traits[host] = trait
        return trait

    def recovery_time(self, host: str) -> float:
        """Clock time at which a flaky host starts answering."""
        when = self._recovery.get(host)
        if when is None:
            mean = self.config.flaky_recovery_mean
            when = seeded_rng(self.config.seed, "recovery", host).uniform(
                0.5 * mean, 1.5 * mean)
            self._recovery[host] = when
        return when

    def latency_factor(self, host: str) -> float:
        return (self.config.slow_factor
                if self.host_trait(host) == "slow" else 1.0)

    # -- per-fetch decisions ------------------------------------------------

    def decide(self, url: str, attempt: int = 0,
               now: float | None = None,
               epoch: int = 0) -> FaultDecision | None:
        """The fault (if any) injected into this fetch attempt.

        ``epoch`` is the recrawl round; it is mixed into the decision
        hash only when nonzero so that epoch 0 reproduces the original
        ``(seed, url, attempt)`` stream exactly.
        """
        host = host_of(url)
        trait = self.host_trait(host)
        if trait == "dead":
            return FaultDecision("connect_failed")
        if trait == "flaky" and (now or 0.0) < self.recovery_time(host):
            return FaultDecision("unavailable")
        rates = self.config.per_host.get(host, self.config.rates)
        if epoch:
            rng = seeded_rng(self.config.seed, "fault", url, attempt,
                             epoch)
        else:
            rng = seeded_rng(self.config.seed, "fault", url, attempt)
        roll = rng.random()
        edge = rates.error
        if roll < edge:
            return FaultDecision("server_error")
        edge += rates.rate_limit
        if roll < edge:
            return FaultDecision("rate_limited",
                                 retry_after=rng.uniform(2.0, 15.0))
        edge += rates.timeout
        if roll < edge:
            return FaultDecision("timeout")
        edge += rates.truncate
        if roll < edge:
            return FaultDecision("truncated",
                                 keep_fraction=rng.uniform(0.05, 0.7))
        edge += rates.redirect_loop
        if roll < edge:
            return FaultDecision("redirect_loop")
        return None
