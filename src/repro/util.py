"""Small shared utilities."""

from __future__ import annotations

import random


def seeded_rng(*parts: object) -> random.Random:
    """A deterministic RNG keyed by an arbitrary tuple of parts.

    ``random.Random`` seeds strings via SHA-512, which is stable across
    processes (unlike ``hash()``), so the same parts always yield the
    same stream.
    """
    key = "\x1f".join(str(p) for p in parts)
    return random.Random(key)
