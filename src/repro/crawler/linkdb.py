"""LinkDB: the crawl's link-graph store.

Records every observed edge (including edges into pages never
fetched), supports the link-topology analysis of Section 4.1 — how
weakly biomedical sites are interlinked, the navigational/cross-host
split — and feeds PageRank for the Table 2 domain ranking.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.web.urls import domain_of, host_of


@dataclass
class LinkDb:
    """Directed page graph with host/domain aggregation."""

    outlinks: dict[str, list[str]] = field(
        default_factory=lambda: defaultdict(list))
    inlink_counts: dict[str, int] = field(
        default_factory=lambda: defaultdict(int))

    def add_edges(self, source: str, targets: list[str]) -> None:
        self.outlinks[source].extend(targets)
        for target in targets:
            self.inlink_counts[target] += 1

    @property
    def n_pages(self) -> int:
        pages = set(self.outlinks)
        for targets in self.outlinks.values():
            pages.update(targets)
        return len(pages)

    @property
    def n_edges(self) -> int:
        return sum(len(t) for t in self.outlinks.values())

    def navigational_fraction(self, source_filter=None) -> float:
        """Fraction of edges staying on the same host.

        ``source_filter`` optionally restricts to sources for which it
        returns True (e.g. biomedical pages only).
        """
        same = total = 0
        for source, targets in self.outlinks.items():
            if source_filter is not None and not source_filter(source):
                continue
            source_host = host_of(source)
            for target in targets:
                total += 1
                if host_of(target) == source_host:
                    same += 1
        return same / total if total else 0.0

    def domain_graph(self) -> dict[str, dict[str, int]]:
        """Aggregate the page graph to domain level (edge weights)."""
        graph: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
        for source, targets in self.outlinks.items():
            source_domain = domain_of(source)
            for target in targets:
                target_domain = domain_of(target)
                if source_domain and target_domain:
                    graph[source_domain][target_domain] += 1
        return {s: dict(t) for s, t in graph.items()}

    def out_degree_distribution(self) -> list[int]:
        return sorted((len(t) for t in self.outlinks.values()), reverse=True)
