"""Host-sharded crawl executor (the paper's 5-node Nutch scale-out).

The production crawl behind the paper ran on a Hadoop cluster: the
frontier partitioned by host across nodes, each node fetching its
partition with its own politeness and robustness state, and a
deterministic merge step combining the per-node segments.  This module
reproduces that architecture as N coordinator processes — *shards* —
over the simulated web.

Design rules (each is load-bearing for the headline guarantee that a
1-shard and an N-shard crawl produce **byte-identical merged
artifacts**):

* **Ownership by host hash.**  :func:`shard_of` assigns every host to
  exactly one shard with a seed-independent stable hash, so politeness
  schedules, robots caches, circuit breakers, and per-host URL budgets
  — all host-keyed state — live on a single shard no matter what N is.
* **Per-host clocks.**  A shared shard-wide clock would advance
  differently depending on which hosts share a shard, and three pieces
  of crawl behaviour read the clock: flaky-host recovery, breaker
  cooldowns, and politeness waits.  :class:`ShardCrawler` therefore
  times every host on its own :class:`SimulatedClock`, making each
  host's timeline a pure function of that host's own fetch history.
* **Superstep barriers (BSP).**  The crawl advances in supersteps: each
  shard drains up to ``host_quota`` URLs from every host it owns
  (hosts in sorted order — :meth:`CrawlDb.next_batch_per_host`), and
  *every* discovered outlink — including links a shard itself owns —
  is buffered, exchanged at the barrier, and applied by its owner at
  the start of the next superstep in a canonical order (sorted by
  source host and emission sequence).  Buffering own links too is what
  makes the frontier evolution independent of N: a link discovered on
  the owning shard takes effect at exactly the same superstep as one
  that crossed shards.
* **Budget at barriers only.**  The page budget is checked at
  superstep barriers (total across shards), never mid-superstep, so
  the stop decision sees the same totals at any N.  A crawl may
  therefore overshoot ``max_pages`` by up to one superstep's worth of
  pages — the documented cost of determinism.
* **Single collective checkpoint.**  The parent writes one atomic file
  holding every shard's state plus the pending cross-shard link
  buffers (:func:`~repro.crawler.checkpoint.save_sharded_checkpoint`),
  so a killed shard — or a killed parent — resumes the whole topology
  from one consistent barrier.

A sharded crawl is a *different deterministic schedule* from the
single-coordinator crawl (per-host batching and per-host clocks change
which pages are reached within the budget); the invariant is equality
across shard counts, not equality with ``FocusedCrawler.crawl``.

:class:`ShardedCrawl` runs shards either in-process (determinism
tests; zero IPC) or as forked child processes exchanging link buffers
over pipes (``processes=True`` — the mode that buys wall-clock, since
each shard fetches, parses, and classifies its partition locally and
only host-routed links plus one final result payload ever cross a
process boundary).
"""

from __future__ import annotations

import gc
import hashlib
import multiprocessing
from dataclasses import replace
from pathlib import Path
from typing import Callable

from repro.crawler.checkpoint import (
    frontier_from_dict, frontier_to_dict, crawler_state_to_dict,
    load_sharded_checkpoint, restore_crawler_state, result_from_dict,
    result_to_dict, save_sharded_checkpoint,
)
from repro.crawler.crawl import CrawlResult, FocusedCrawler
from repro.crawler.frontier import CrawlDb
from repro.obs.metrics import MetricsRegistry
from repro.web.server import SimulatedClock
from repro.web.urls import host_of, normalize

#: Effectively-unbounded page budget used to neutralize the per-batch
#: budget check inside a superstep (the driver enforces the real budget
#: at barriers).
_UNBOUNDED = 1 << 62

#: An exchanged link: (source_host, emission_seq, url, depth,
#: irrelevant_steps).  The first two fields form the canonical apply
#: order; emission_seq numbers the links a source host discovered
#: within one superstep.
LinkRecord = tuple[str, int, str, int, int]


def shard_of(host: str, n_shards: int) -> int:
    """The shard that owns ``host`` — stable and total.

    Uses a SHA-256 prefix so the assignment is identical across
    processes, runs, and machines (Python's builtin ``hash`` is
    randomized per process and would shatter resume determinism).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    digest = hashlib.sha256(host.encode("utf-8", "surrogatepass")).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


class ShardCrashed(RuntimeError):
    """A shard child process died mid-crawl.  The crawl is resumable
    from the last collective checkpoint."""


class ShardCrawler(FocusedCrawler):
    """One shard: a :class:`FocusedCrawler` over its host partition.

    Differs from the base crawler in exactly the three hooks the base
    class exposes for it: per-host clocks (:meth:`_clock_for`),
    buffered outlinks (:meth:`_add_outlink`), and no per-batch metric
    (:meth:`_record_batch_start` — the driver counts supersteps
    instead).  Everything else — fetching, retries, breakers, the
    document stage, merging — is inherited unchanged.
    """

    def __init__(self, shard_id: int, n_shards: int, *args,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.shard_id = shard_id
        self.n_shards = n_shards
        # The driver mutates max_pages around supersteps; decouple from
        # any config object the factory might share across shards.
        self.config = replace(self.config)
        self.frontier = CrawlDb(
            host_fetch_list_cap=self.config.host_fetch_list_cap,
            max_urls_per_host=self.config.max_urls_per_host)
        self.result = CrawlResult()
        self._host_clocks: dict[str, SimulatedClock] = {}
        self._link_buffer: list[LinkRecord] = []
        self._emit_seq: dict[str, int] = {}
        self._pool = None

    # -- hook overrides ------------------------------------------------------

    def _clock_for(self, host: str) -> SimulatedClock:
        clock = self._host_clocks.get(host)
        if clock is None:
            clock = self._host_clocks[host] = SimulatedClock()
        return clock

    def _add_outlink(self, frontier: CrawlDb, entry, link: str,
                     irrelevant_steps: int) -> None:
        source_host = host_of(entry.url)
        seq = self._emit_seq.get(source_host, 0)
        self._emit_seq[source_host] = seq + 1
        self._link_buffer.append((source_host, seq, link,
                                  entry.depth + 1, irrelevant_steps))

    def _record_batch_start(self) -> None:
        pass

    # -- recrawl rounds ------------------------------------------------------

    def begin_round(self, rnd: int) -> None:
        """Enter recrawl round ``rnd`` on this shard: evolve the web
        epoch / fold the scheduler (the inherited hook), then start the
        round from a fresh frontier and a fresh per-round result —
        exactly what :class:`~repro.crawler.recrawl.IncrementalCrawl`
        does for the single-coordinator crawl.  Host clocks persist
        across rounds (a host's timeline is continuous), as does all
        host-keyed robustness state."""
        super().begin_round(rnd)
        self.frontier = CrawlDb(
            host_fetch_list_cap=self.config.host_fetch_list_cap,
            max_urls_per_host=self.config.max_urls_per_host)
        self.result = CrawlResult()

    def round_report(self, rnd: int) -> dict:
        """This shard's per-round counter summary (merged by the
        driver; documents are not shipped — just the line items)."""
        from repro.crawler.recrawl import round_summary

        self.finalize_totals()
        return round_summary(rnd, self.result)

    # -- superstep interface -------------------------------------------------

    def apply_inbound(self, links: list[LinkRecord]) -> None:
        """Apply exchanged links in canonical (source_host, seq) order.

        Every shard sorts the same way, and a host's links always come
        from the same sources with the same sequence numbers at any N,
        so its queue evolves identically at any topology.
        """
        for _host, _seq, url, depth, steps in sorted(
                tuple(link) for link in links):
            self.frontier.add(url, depth=depth, irrelevant_steps=steps)

    def run_superstep(self, host_quota: int) -> list[LinkRecord]:
        """Fetch/process/merge one superstep batch; returns the links
        discovered in it (for the barrier exchange)."""
        self._emit_seq = {}
        batch = self.frontier.next_batch_per_host(host_quota)
        if batch:
            if self._pool is None and self.config.parallel_workers > 1:
                self._pool = self._make_pool(None)
            budget = self.config.max_pages
            self.config.max_pages = _UNBOUNDED
            try:
                self._run_batch(batch, self.frontier, self.result,
                                self._pool, None)
            finally:
                self.config.max_pages = budget
        links, self._link_buffer = self._link_buffer, []
        return links

    def finalize_totals(self) -> None:
        """Fill the derived per-shard result fields before merging."""
        self.result.clock_seconds = self.max_clock
        self.result.filter_attrition = self.filters.attrition_report()
        self.result.hosts_quarantined = self.health.quarantined_hosts

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    @property
    def max_clock(self) -> float:
        """The shard's simulated time: its busiest host's clock."""
        return max((clock.now for clock in self._host_clocks.values()),
                   default=0.0)

    # -- state (collective checkpoints) --------------------------------------

    def state_to_dict(self) -> dict:
        state = crawler_state_to_dict(self)
        state["host_clocks"] = {
            host: clock.now
            for host, clock in sorted(self._host_clocks.items())}
        self.finalize_totals()
        return {"frontier": frontier_to_dict(self.frontier),
                "result": result_to_dict(self.result),
                "crawler": state}

    def restore_state(self, payload: dict) -> None:
        self.frontier = frontier_from_dict(payload["frontier"])
        self.result = result_from_dict(payload["result"])
        crawler_state = payload.get("crawler") or {}
        restore_crawler_state(self, crawler_state)
        self._host_clocks = {
            host: SimulatedClock(now)
            for host, now in crawler_state.get("host_clocks",
                                               {}).items()}

    def final_payload(self) -> dict:
        """Everything the cross-shard merge consumes, as plain data
        (shared by the in-process and the forked execution modes)."""
        self.finalize_totals()
        payload = {
            "result": result_to_dict(self.result),
            "filters": {name: [stats.accepted, stats.rejected]
                        for name, stats in self.filters.stats.items()},
            "stage_seconds": dict(self.result.stage_seconds),
        }
        if self.metrics is not None:
            payload["metrics"] = self.metrics.to_dict(
                include_volatile=True)
        return payload


def merge_shard_payloads(finals: list[dict], stop_reason: str,
                         n_supersteps: int,
                         ) -> tuple[CrawlResult, MetricsRegistry | None]:
    """Deterministically merge per-shard final payloads.

    Hosts are disjoint across shards, so documents and linkdb sources
    never collide; both are ordered by a canonical sort (doc id /
    source URL), counters and filter stats sum, and the merged
    simulated time is the max over shards (= the busiest host
    anywhere).  The output is invariant in the shard count and in the
    order shards finished.
    """
    merged = CrawlResult()
    documents = {"relevant": [], "irrelevant": []}
    edges: list[tuple[str, list[str]]] = []
    failure_reasons: dict[str, int] = {}
    stage_pages: dict[str, int] = {}
    stage_seconds: dict[str, float] = {}
    filter_stats: dict[str, list[int]] = {}
    registries = []
    for final in finals:
        payload = final["result"]
        for bucket in ("relevant", "irrelevant"):
            documents[bucket].extend(payload[bucket])
        edges.extend(payload["outlinks"].items())
        merged.pages_fetched += payload["pages_fetched"]
        merged.fetch_failures += payload["fetch_failures"]
        merged.robots_denied += payload["robots_denied"]
        merged.filtered_out += payload["filtered_out"]
        merged.retries += payload["retries"]
        merged.hosts_quarantined += payload["hosts_quarantined"]
        merged.fetches_skipped += payload.get("fetches_skipped", 0)
        merged.pages_unchanged += payload.get("pages_unchanged", 0)
        merged.pages_changed += payload.get("pages_changed", 0)
        merged.pages_near_unchanged += payload.get(
            "pages_near_unchanged", 0)
        merged.replay_hits += payload.get("replay_hits", 0)
        merged.clock_seconds = max(merged.clock_seconds,
                                   payload["clock_seconds"])
        for reason, count in payload["failure_reasons"].items():
            failure_reasons[reason] = \
                failure_reasons.get(reason, 0) + count
        for stage, pages in payload["stage_pages"].items():
            stage_pages[stage] = stage_pages.get(stage, 0) + pages
        for stage, seconds in final.get("stage_seconds", {}).items():
            stage_seconds[stage] = \
                stage_seconds.get(stage, 0.0) + seconds
        for name, (accepted, rejected) in final["filters"].items():
            totals = filter_stats.setdefault(name, [0, 0])
            totals[0] += accepted
            totals[1] += rejected
        if "metrics" in final:
            registry = MetricsRegistry()
            registry.load_dict(final["metrics"])
            registries.append(registry)
    from repro.crawler.checkpoint import _document_from_dict

    for bucket in ("relevant", "irrelevant"):
        ordered = sorted(documents[bucket],
                         key=lambda doc: doc["doc_id"])
        getattr(merged, bucket).extend(
            _document_from_dict(doc) for doc in ordered)
    for source, targets in sorted(edges):
        merged.linkdb.add_edges(source, targets)
    merged.failure_reasons = dict(sorted(failure_reasons.items()))
    merged.stage_pages = dict(sorted(stage_pages.items()))
    merged.stage_seconds = dict(sorted(stage_seconds.items()))
    merged.stop_reason = stop_reason
    merged.filter_attrition = {
        name: (rejected / (accepted + rejected)
               if accepted + rejected else 0.0)
        for name, (accepted, rejected) in sorted(filter_stats.items())}
    metrics = None
    if registries:
        metrics = MetricsRegistry()
        for registry in registries:
            metrics.merge(registry)
        metrics.counter("crawl.supersteps").inc(n_supersteps)
        metrics.gauge("crawl.clock_seconds").set(merged.clock_seconds)
        metrics.gauge("crawl.hosts_quarantined").set(
            merged.hosts_quarantined)
    return merged, metrics


# -- forked shard children -----------------------------------------------------

def _shard_child_main(factory: Callable[[int], ShardCrawler],
                      shard_id: int, conn,
                      restore_payload: dict | None) -> None:
    """Command loop of one forked shard process.

    Protocol (parent -> child): ``("apply", links)``, ``("step",
    host_quota)``, ``("round", rnd)``, ``("summary", rnd)``,
    ``("snapshot",)``, ``("final",)``, ``("stop",)``.  Every command
    gets exactly one reply.  The child exits on "stop" or when the
    parent's pipe closes.
    """
    crawler = factory(shard_id)
    if restore_payload is not None:
        crawler.restore_state(restore_payload)
        crawler.resume_round()
    # Same GC discipline as the worker pool: the base state built by
    # the factory is immortal for this crawl; cycles from parsed pages
    # are collected explicitly at superstep boundaries.
    gc.collect()
    gc.freeze()
    gc.disable()
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            command = message[0]
            if command == "apply":
                crawler.apply_inbound(message[1])
                conn.send((crawler.result.pages_visited,
                           crawler.frontier.is_empty()))
            elif command == "step":
                links = crawler.run_superstep(message[1])
                gc.collect()
                conn.send((links, crawler.result.pages_visited))
            elif command == "round":
                crawler.begin_round(message[1])
                conn.send(True)
            elif command == "summary":
                conn.send(crawler.round_report(message[1]))
            elif command == "snapshot":
                conn.send(crawler.state_to_dict())
            elif command == "final":
                conn.send(crawler.final_payload())
            elif command == "stop":
                break
            else:
                raise ValueError(f"unknown shard command: {command!r}")
    finally:
        crawler.close()
        conn.close()


class _ForkedShard:
    """Parent-side handle for one shard child process."""

    def __init__(self, factory, shard_id: int,
                 restore_payload: dict | None) -> None:
        context = multiprocessing.get_context("fork")
        self.conn, child_conn = context.Pipe()
        self.process = context.Process(
            target=_shard_child_main,
            args=(factory, shard_id, child_conn, restore_payload),
            daemon=True)
        self.shard_id = shard_id
        self.process.start()
        child_conn.close()

    @property
    def pid(self) -> int:
        return self.process.pid

    def send(self, message: tuple) -> None:
        try:
            self.conn.send(message)
        except (BrokenPipeError, OSError) as error:
            raise ShardCrashed(
                f"shard {self.shard_id} (pid {self.process.pid}) is "
                f"gone: {error}") from error

    def recv(self):
        try:
            return self.conn.recv()
        except (EOFError, ConnectionResetError, OSError) as error:
            raise ShardCrashed(
                f"shard {self.shard_id} (pid {self.process.pid}) died "
                "mid-superstep; resume from the last collective "
                "checkpoint") from error

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=10)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=10)
        self.conn.close()


class ShardedCrawl:
    """Superstep driver over N host-sharded crawlers.

    ``factory(shard_id)`` must build a fresh, fully independent
    :class:`ShardCrawler` — in particular its own filter chain (the
    attrition counters are per-shard state) and its own
    :class:`MetricsRegistry` if observability is wanted.  Tracing is
    not supported in sharded mode.

    ``processes=False`` runs every shard in this process (the
    determinism-test mode); ``processes=True`` forks one child per
    shard and exchanges link buffers over pipes.  Both modes execute
    the identical superstep schedule and produce identical merged
    artifacts.
    """

    def __init__(self, factory: Callable[[int], ShardCrawler],
                 n_shards: int, max_pages: int, *,
                 host_quota: int = 4,
                 rounds: int = 1,
                 checkpoint_path: str | Path | None = None,
                 checkpoint_every: int = 0,
                 processes: bool = False) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if host_quota < 1:
            raise ValueError("host_quota must be >= 1")
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.factory = factory
        self.n_shards = n_shards
        self.max_pages = max_pages
        self.host_quota = host_quota
        self.rounds = rounds
        self.checkpoint_path = (Path(checkpoint_path)
                                if checkpoint_path else None)
        self.checkpoint_every = checkpoint_every
        self.processes = processes
        #: Set after run(): merged deterministic metrics (or None).
        self.metrics: MetricsRegistry | None = None
        #: Child pids in process mode (for kill-one-shard tests).
        self.child_pids: list[int] = []
        self.supersteps = 0
        #: Per-round merged counter summaries (multi-round runs only).
        self.round_reports: list[dict] = []

    # -- public API ----------------------------------------------------------

    def run(self, seeds: list[str] | None = None, *,
            resume: bool = False,
            barrier_callback: Callable[[int], None] | None = None,
            ) -> CrawlResult:
        """Crawl to completion; returns the merged result.

        ``barrier_callback(total_pages_visited)`` fires after every
        superstep barrier (post-checkpoint) — the sharded analog of
        the page callback, used by kill/resume harnesses.
        """
        superstep = 0
        start_round = 0
        need_begin = self.rounds > 1
        inbound: dict[int, list[LinkRecord]] = {
            shard: [] for shard in range(self.n_shards)}
        restore_payloads: list[dict | None] = [None] * self.n_shards
        if self.rounds > 1 and seeds is None:
            raise ValueError("a multi-round sharded crawl requires "
                             "seeds (every round re-crawls from them)")
        if resume and self.checkpoint_path is not None \
                and self.checkpoint_path.exists():
            payload = load_sharded_checkpoint(self.checkpoint_path)
            if payload["n_shards"] != self.n_shards:
                raise ValueError(
                    f"checkpoint has {payload['n_shards']} shards, "
                    f"driver has {self.n_shards}; the shard count of "
                    "a crawl is fixed at its first checkpoint")
            superstep = payload["superstep"]
            start_round = int(payload.get("round", 0))
            restore_payloads = list(payload["shards"])
            if payload.get("round_complete", False):
                # The checkpoint sits at a round boundary: either the
                # whole crawl finished (rebuild its merged result) or
                # the next round starts fresh from the restored state.
                if start_round >= self.rounds - 1:
                    return self._finished_result(
                        superstep, restore_payloads,
                        payload.get("stop_reason", ""))
                start_round += 1
                need_begin = True
            else:
                need_begin = False
                for shard, links in payload["inbound"].items():
                    inbound[int(shard)] = [tuple(link)
                                           for link in links]
        elif seeds is None:
            raise ValueError("a fresh sharded crawl requires seeds")
        elif self.rounds == 1:
            # Single-round crawls never call begin_round (bit-compat
            # with the pre-recrawl schedule); seeds route up front.
            inbound = self._seed_inbound(seeds)
        if self.processes:
            return self._run_forked(superstep, start_round, need_begin,
                                    seeds, inbound, restore_payloads,
                                    barrier_callback)
        return self._run_inline(superstep, start_round, need_begin,
                                seeds, inbound, restore_payloads,
                                barrier_callback)

    # -- in-process mode -----------------------------------------------------

    def _run_inline(self, superstep, start_round, need_begin, seeds,
                    inbound, restore_payloads,
                    barrier_callback) -> CrawlResult:
        shards = [self.factory(shard_id)
                  for shard_id in range(self.n_shards)]
        self._check_shards(shards)
        for crawler, payload in zip(shards, restore_payloads):
            if payload is not None:
                crawler.restore_state(payload)
                crawler.resume_round()
        pages_at_last_save = self._restored_pages(restore_payloads)

        def snapshot() -> list[dict]:
            return [crawler.state_to_dict() for crawler in shards]

        try:
            for rnd in range(start_round, self.rounds):
                if need_begin:
                    for crawler in shards:
                        crawler.begin_round(rnd)
                    inbound = self._seed_inbound(seeds)
                    pages_at_last_save = 0
                need_begin = True
                while True:
                    for crawler in shards:
                        crawler.apply_inbound(inbound[crawler.shard_id])
                    inbound = {shard: []
                               for shard in range(self.n_shards)}
                    total = sum(crawler.result.pages_visited
                                for crawler in shards)
                    stop_reason = self._stop_reason(
                        total, all(crawler.frontier.is_empty()
                                   for crawler in shards))
                    if stop_reason:
                        break
                    emitted: list[LinkRecord] = []
                    for crawler in shards:
                        emitted.extend(
                            crawler.run_superstep(self.host_quota))
                    superstep += 1
                    self._route(emitted, inbound)
                    total = sum(crawler.result.pages_visited
                                for crawler in shards)
                    pages_at_last_save = self._maybe_checkpoint(
                        rnd, superstep, inbound, total,
                        pages_at_last_save, snapshot)
                    if barrier_callback is not None:
                        barrier_callback(total)
                if self.rounds > 1:
                    self.round_reports.append(self._merge_round_reports(
                        rnd, [crawler.round_report(rnd)
                              for crawler in shards]))
                if rnd < self.rounds - 1:
                    self._round_checkpoint(rnd, superstep, stop_reason,
                                           snapshot)
            self.supersteps = superstep
            finals = [crawler.final_payload() for crawler in shards]
        finally:
            for crawler in shards:
                crawler.close()
        return self._finish(finals, stop_reason, self.rounds - 1,
                            superstep, inbound, snapshot)

    # -- forked mode ---------------------------------------------------------

    def _run_forked(self, superstep, start_round, need_begin, seeds,
                    inbound, restore_payloads,
                    barrier_callback) -> CrawlResult:
        shards = [_ForkedShard(self.factory, shard_id,
                               restore_payloads[shard_id])
                  for shard_id in range(self.n_shards)]
        self.child_pids = [shard.pid for shard in shards]
        pages_at_last_save = self._restored_pages(restore_payloads)

        def snapshot() -> list[dict]:
            for shard in shards:
                shard.send(("snapshot",))
            return [shard.recv() for shard in shards]

        try:
            for rnd in range(start_round, self.rounds):
                if need_begin:
                    for shard in shards:
                        shard.send(("round", rnd))
                    for shard in shards:
                        shard.recv()
                    inbound = self._seed_inbound(seeds)
                    pages_at_last_save = 0
                need_begin = True
                while True:
                    for shard in shards:
                        shard.send(("apply", inbound[shard.shard_id]))
                    inbound = {shard_id: []
                               for shard_id in range(self.n_shards)}
                    replies = [shard.recv() for shard in shards]
                    total = sum(pages for pages, _empty in replies)
                    stop_reason = self._stop_reason(
                        total, all(empty for _pages, empty in replies))
                    if stop_reason:
                        break
                    for shard in shards:
                        shard.send(("step", self.host_quota))
                    emitted: list[LinkRecord] = []
                    total = 0
                    for shard in shards:
                        links, pages = shard.recv()
                        emitted.extend(links)
                        total += pages
                    superstep += 1
                    self._route(emitted, inbound)
                    pages_at_last_save = self._maybe_checkpoint(
                        rnd, superstep, inbound, total,
                        pages_at_last_save, snapshot)
                    if barrier_callback is not None:
                        barrier_callback(total)
                if self.rounds > 1:
                    for shard in shards:
                        shard.send(("summary", rnd))
                    self.round_reports.append(self._merge_round_reports(
                        rnd, [shard.recv() for shard in shards]))
                if rnd < self.rounds - 1:
                    self._round_checkpoint(rnd, superstep, stop_reason,
                                           snapshot)
            self.supersteps = superstep
            for shard in shards:
                shard.send(("final",))
            finals = [shard.recv() for shard in shards]
            return self._finish(finals, stop_reason, self.rounds - 1,
                                superstep, inbound, snapshot)
        finally:
            for shard in shards:
                shard.stop()

    # -- shared plumbing -----------------------------------------------------

    def _check_shards(self, shards: list[ShardCrawler]) -> None:
        for crawler in shards:
            if not isinstance(crawler, ShardCrawler):
                raise TypeError("the sharded crawl factory must build "
                                "ShardCrawler instances")
            if crawler.tracer is not None:
                raise ValueError("tracing is not supported in sharded "
                                 "mode (span trees are per-process); "
                                 "use metrics, which merge")
            if crawler.config.online_learning:
                raise ValueError(
                    "online_learning updates the classifier between "
                    "pages, which a sharded crawl cannot replay "
                    "deterministically; run with --shards 1 and "
                    "parallel_workers=1")

    def _stop_reason(self, total_pages: int, all_empty: bool) -> str:
        if total_pages >= self.max_pages:
            return "page_budget"
        if all_empty:
            return "frontier_empty"
        return ""

    def _route(self, emitted: list[LinkRecord],
               inbound: dict[int, list[LinkRecord]]) -> None:
        for link in emitted:
            owner = shard_of(host_of(normalize(link[2])), self.n_shards)
            inbound[owner].append(link)

    def _seed_inbound(self, seeds: list[str]
                      ) -> dict[int, list[LinkRecord]]:
        inbound: dict[int, list[LinkRecord]] = {
            shard: [] for shard in range(self.n_shards)}
        for index, url in enumerate(seeds):
            owner = shard_of(host_of(normalize(url)), self.n_shards)
            inbound[owner].append(("", index, url, 0, 0))
        return inbound

    def _restored_pages(self, restore_payloads) -> int:
        return sum(payload["result"]["pages_fetched"]
                   + payload["result"].get("fetches_skipped", 0)
                   for payload in restore_payloads
                   if payload is not None)

    def _maybe_checkpoint(self, round_, superstep, inbound, total_pages,
                          pages_at_last_save,
                          snapshot: Callable[[], list[dict]]) -> int:
        if self.checkpoint_path is None:
            return pages_at_last_save
        if (self.checkpoint_every > 0
                and total_pages - pages_at_last_save
                < self.checkpoint_every):
            return pages_at_last_save
        save_sharded_checkpoint(
            self.checkpoint_path, n_shards=self.n_shards,
            superstep=superstep, inbound=inbound, shards=snapshot(),
            round_=round_)
        return total_pages

    def _round_checkpoint(self, round_, superstep, stop_reason,
                          snapshot: Callable[[], list[dict]]) -> None:
        """Mark a completed non-final round at its closing barrier; a
        resume from this file starts the *next* round."""
        if self.checkpoint_path is None:
            return
        save_sharded_checkpoint(
            self.checkpoint_path, n_shards=self.n_shards,
            superstep=superstep,
            inbound={shard: [] for shard in range(self.n_shards)},
            shards=snapshot(), round_=round_, round_complete=True,
            stop_reason=stop_reason)

    def _finished_result(self, superstep, restore_payloads,
                         stop_reason) -> CrawlResult:
        """The checkpoint says the final round already completed:
        rebuild the merged result from the per-shard snapshots without
        re-running anything (resume of a finished crawl)."""
        shards = [self.factory(shard_id)
                  for shard_id in range(self.n_shards)]
        self._check_shards(shards)
        try:
            for crawler, payload in zip(shards, restore_payloads):
                if payload is not None:
                    crawler.restore_state(payload)
            finals = [crawler.final_payload() for crawler in shards]
        finally:
            for crawler in shards:
                crawler.close()
        self.supersteps = superstep
        merged, metrics = merge_shard_payloads(finals, stop_reason,
                                               superstep)
        self.metrics = metrics
        return merged

    @staticmethod
    def _merge_round_reports(rnd: int, reports: list[dict]) -> dict:
        """Sum per-shard round summaries (clock is a max — the busiest
        host anywhere, same rule as the result merge)."""
        merged = dict.fromkeys(reports[0], 0)
        merged["round"] = rnd
        merged["clock_seconds"] = 0.0
        for report in reports:
            for key, value in report.items():
                if key == "round":
                    continue
                if key == "clock_seconds":
                    merged[key] = max(merged[key], value)
                else:
                    merged[key] += value
        return merged

    def _finish(self, finals, stop_reason, round_, superstep, inbound,
                snapshot) -> CrawlResult:
        merged, metrics = merge_shard_payloads(finals, stop_reason,
                                               superstep)
        self.metrics = metrics
        if self.checkpoint_path is not None:
            # Final collective checkpoint (mirrors the single-crawler
            # final save): byte-identical for a resumed and an
            # uninterrupted run of the same topology.  Marked
            # round-complete so a re-resume rebuilds instead of
            # re-crawling.
            save_sharded_checkpoint(
                self.checkpoint_path, n_shards=self.n_shards,
                superstep=superstep, inbound=inbound,
                shards=snapshot(), round_=round_,
                round_complete=True, stop_reason=stop_reason)
        return merged
