"""Page parsing: outlink and title extraction (Nutch parser analog).

Every extractor comes in two forms: a string-input convenience wrapper
that parses the page itself, and a ``*_from_tree`` variant that walks
an already-parsed DOM.  The tree variants exist for the parse-once
document path: the crawler repairs a page, parses it a single time,
and feeds the same tree to boilerplate segmentation, link extraction,
and title extraction instead of re-parsing for each.
"""

from __future__ import annotations

from repro.html.dom import HtmlNode, parse_html
from repro.web.urls import normalize, resolve


def extract_links(html: str, base_url: str) -> list[str]:
    """All resolved, deduplicated outlinks of a page.

    Skips fragments-only, ``javascript:`` and ``mailto:`` links, and
    self-links.
    """
    return extract_links_from_tree(parse_html(html), base_url)


def extract_links_from_tree(tree: HtmlNode, base_url: str) -> list[str]:
    """Outlinks of an already-parsed page (see :func:`extract_links`)."""
    base = normalize(base_url)
    links: list[str] = []
    seen: set[str] = set()
    for anchor in tree.find_all("a"):
        href = anchor.attrs.get("href", "").strip()
        if not href or href.startswith("#"):
            continue
        lowered = href.lower()
        if lowered.startswith(("javascript:", "mailto:", "tel:")):
            continue
        resolved = resolve(base, href)
        if not resolved.startswith(("http://", "https://")):
            continue
        if resolved == base or resolved in seen:
            continue
        seen.add(resolved)
        links.append(resolved)
    return links


def extract_title(html: str) -> str:
    """The page title ('' if absent)."""
    return extract_title_from_tree(parse_html(html))


def extract_title_from_tree(tree: HtmlNode) -> str:
    """Title of an already-parsed page ('' if absent)."""
    title = tree.find_first("title")
    if title is None:
        return ""
    return title.get_text().strip()
