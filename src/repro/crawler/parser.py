"""Page parsing: outlink and title extraction (Nutch parser analog)."""

from __future__ import annotations

from repro.html.dom import parse_html
from repro.web.urls import normalize, resolve


def extract_links(html: str, base_url: str) -> list[str]:
    """All resolved, deduplicated outlinks of a page.

    Skips fragments-only, ``javascript:`` and ``mailto:`` links, and
    self-links.
    """
    tree = parse_html(html)
    base = normalize(base_url)
    links: list[str] = []
    seen: set[str] = set()
    for anchor in tree.find_all("a"):
        href = anchor.attrs.get("href", "").strip()
        if not href or href.startswith("#"):
            continue
        lowered = href.lower()
        if lowered.startswith(("javascript:", "mailto:", "tel:")):
            continue
        resolved = resolve(base, href)
        if not resolved.startswith(("http://", "https://")):
            continue
        if resolved == base or resolved in seen:
            continue
        seen.add(resolved)
        links.append(resolved)
    return links


def extract_title(html: str) -> str:
    """The page title ('' if absent)."""
    tree = parse_html(html)
    titles = tree.find_all("title")
    if not titles:
        return ""
    return titles[0].get_text().strip()
