"""Simulated search engines for seed generation.

Five engines (as in the paper: Bing, Google, Arxiv, Nature, Nature
blogs) indexing different slices of the synthetic web, each with a
per-query result cap and a total query quota — the API limits that
force seed generation to issue thousands of queries.

Ranking reproduces the behaviour that sank the paper's first seed
round: for *general* terms, engines rank authoritative portal front
pages highest — pages that are link hubs with little topical text, so
the focused crawler immediately classifies them irrelevant.
"""

from __future__ import annotations

import re
from collections import defaultdict

from repro.corpora.vocabulary import GENERAL_BIOMED_TERMS
from repro.util import seeded_rng
from repro.web.webgraph import WebGraph

_WORD_RE = re.compile(r"[a-z0-9][a-z0-9'-]*")


class QueryQuotaExceeded(RuntimeError):
    """The engine's API quota is exhausted."""


class SimulatedSearchEngine:
    """An inverted index over (a slice of) the synthetic web."""

    def __init__(self, name: str, graph: WebGraph,
                 host_filter=None, result_limit: int = 20,
                 query_quota: int = 100_000, seed: int = 67) -> None:
        self.name = name
        self.graph = graph
        self.host_filter = host_filter
        self.result_limit = result_limit
        self.query_quota = query_quota
        self.queries_issued = 0
        self._seed = seed
        self._index: dict[str, dict[str, int]] | None = None
        self._authority_bonus: dict[str, float] = {}

    # -- indexing -----------------------------------------------------------

    def _ensure_index(self) -> None:
        if self._index is not None:
            return
        index: dict[str, dict[str, int]] = defaultdict(dict)
        for url, page in self.graph.pages.items():
            if self.host_filter is not None and not self.host_filter(page.host):
                continue
            if page.content_type.startswith("application/"):
                continue
            host = self.graph.hosts[page.host]
            bonus = 0.0
            if page.kind == "front":
                bonus = 5.0 if host.kind in ("authority", "portal") else 1.0
            self._authority_bonus[url] = bonus
            terms = self._page_terms(url, page, host)
            for term, count in terms.items():
                index[term][url] = count
        self._index = dict(index)

    def _page_terms(self, url: str, page, host) -> dict[str, int]:
        counts: dict[str, int] = defaultdict(int)
        for token in _WORD_RE.findall(self.graph.title_of(url).lower()):
            counts[token] += 3
        if page.kind == "front":
            # Portal front pages advertise general topics: engines
            # consider them authoritative for broad keywords.
            if host.biomedical and host.kind in ("authority", "portal"):
                rng = seeded_rng(self._seed, "frontterms", host.name)
                for term in rng.sample(GENERAL_BIOMED_TERMS,
                                       k=min(10, len(GENERAL_BIOMED_TERMS))):
                    for token in _WORD_RE.findall(term.lower()):
                        counts[token] += 5
            for token in _WORD_RE.findall(
                    self.graph.body_text(url).lower()):
                counts[token] += 1
            return counts
        if page.kind == "article" and page.language == "en":
            for token in _WORD_RE.findall(self.graph.body_text(url).lower()):
                counts[token] += 1
        return counts

    # -- querying --------------------------------------------------------------

    def query(self, term: str) -> list[str]:
        """Top URLs for a (possibly multi-word) keyword query.

        Raises :class:`QueryQuotaExceeded` past the API quota; results
        are capped at ``result_limit`` per query.
        """
        if self.queries_issued >= self.query_quota:
            raise QueryQuotaExceeded(
                f"{self.name}: quota of {self.query_quota} queries exhausted")
        self.queries_issued += 1
        self._ensure_index()
        words = _WORD_RE.findall(term.lower())
        if not words:
            return []
        scores: dict[str, float] = {}
        candidate_sets = [self._index.get(word, {}) for word in words]
        if not all(candidate_sets):
            return []
        base = min(candidate_sets, key=len)
        for url in base:
            if all(url in s for s in candidate_sets):
                tf = sum(s[url] for s in candidate_sets)
                scores[url] = tf + 10.0 * self._authority_bonus.get(url, 0.0)
        ranked = sorted(scores, key=lambda u: (-scores[u], u))
        return ranked[: self.result_limit]


def build_search_engines(graph: WebGraph,
                         result_limit: int = 20,
                         query_quota: int = 100_000,
                         ) -> list[SimulatedSearchEngine]:
    """The paper's five engines over the synthetic web.

    Two general-purpose engines index everything; three publisher
    engines only return content from their own domains (the paper
    notes arxiv.org / nature.com rank high in the crawl precisely
    because their APIs only return their own pages).
    """
    def hosted_on(*fragments: str):
        def accept(host: str) -> bool:
            return any(fragment in host for fragment in fragments)
        return accept

    return [
        SimulatedSearchEngine("bing", graph, None, result_limit, query_quota),
        SimulatedSearchEngine("google", graph, None, result_limit,
                              query_quota),
        SimulatedSearchEngine("arxiv", graph, hosted_on("arxiv"),
                              result_limit, query_quota),
        SimulatedSearchEngine("nature", graph, hosted_on("nature"),
                              result_limit, query_quota),
        SimulatedSearchEngine("nature-blogs", graph,
                              hosted_on("nature-blogs"), result_limit,
                              query_quota),
    ]
