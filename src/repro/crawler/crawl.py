"""The focused crawl loop (Fig. 1 of the paper).

Fetch → parse → MIME filter → boilerplate removal → language/length
filters → Naïve Bayes relevance classification.  Links of relevant
pages feed back into the CrawlDB; links of irrelevant pages are
dropped (or followed for up to ``follow_irrelevant_steps`` — the
Section 5 alternative).  The loop runs until the frontier empties, the
page budget is reached, or the caller stops it.

Time is accounted on the :class:`~repro.web.server.SimulatedClock`:
fetch latency is divided across fetcher threads, while the modelled
per-document filtering/classification cost is serialized — this is
what pushes the effective rate down to the paper's 3-4 documents/s
(versus 10-100 for plain crawlers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.annotations import Document
from repro.classify.naive_bayes import NaiveBayesClassifier
from repro.crawler.filters import FilterChain
from repro.crawler.frontier import CrawlDb, FrontierEntry
from repro.crawler.linkdb import LinkDb
from repro.crawler.parser import extract_links
from repro.html.boilerplate import BoilerplateDetector
from repro.html.repair import repair_html
from repro.web.robots import RobotsPolicy, parse_robots
from repro.web.server import SimulatedClock, SimulatedWeb
from repro.web.urls import host_of


@dataclass
class CrawlConfig:
    """Operational knobs (defaults mirror the paper's deployment,
    scaled to the synthetic substrate)."""

    max_pages: int = 2000
    fetcher_threads: int = 16
    batch_size: int = 200
    host_fetch_list_cap: int = 500
    max_urls_per_host: int = 400
    politeness_delay: float = 1.0
    #: Modelled serialized per-document cost of boilerplate removal +
    #: classification; calibrated so the crawl runs at the paper's
    #: 3-4 documents/s.
    processing_seconds: float = 0.22
    follow_irrelevant_steps: int = 0
    respect_robots: bool = True
    #: Self-training: feed confidently classified pages back into the
    #: (incremental) Naïve Bayes model — the capability the paper chose
    #: NB for "although we currently don't use this feature".
    online_learning: bool = False
    online_confidence: float = 0.98


@dataclass
class CrawlResult:
    """Everything a crawl produces."""

    relevant: list[Document] = field(default_factory=list)
    irrelevant: list[Document] = field(default_factory=list)
    linkdb: LinkDb = field(default_factory=LinkDb)
    pages_fetched: int = 0
    fetch_failures: int = 0
    robots_denied: int = 0
    filtered_out: int = 0
    clock_seconds: float = 0.0
    stop_reason: str = ""
    filter_attrition: dict[str, float] = field(default_factory=dict)

    @property
    def harvest_rate(self) -> float:
        classified = len(self.relevant) + len(self.irrelevant)
        return len(self.relevant) / classified if classified else 0.0

    @property
    def download_rate(self) -> float:
        """Documents per (simulated) second."""
        if self.clock_seconds <= 0:
            return 0.0
        return self.pages_fetched / self.clock_seconds

    def bytes_of(self, which: str) -> int:
        docs = self.relevant if which == "relevant" else self.irrelevant
        return sum(len(d.raw) for d in docs)


class FocusedCrawler:
    """Nutch-with-focus-extension analog over the simulated web."""

    def __init__(self, web: SimulatedWeb, classifier: NaiveBayesClassifier,
                 filters: FilterChain, config: CrawlConfig | None = None,
                 boilerplate: BoilerplateDetector | None = None,
                 clock: SimulatedClock | None = None) -> None:
        self.web = web
        self.classifier = classifier
        self.filters = filters
        self.config = config or CrawlConfig()
        self.boilerplate = boilerplate or BoilerplateDetector()
        self.clock = clock or SimulatedClock()
        self._robots_cache: dict[str, RobotsPolicy] = {}
        self._host_ready: dict[str, float] = {}

    # -- public API -----------------------------------------------------------

    def crawl(self, seeds: list[str]) -> CrawlResult:
        """Run a focused crawl from the seed list."""
        config = self.config
        frontier = CrawlDb(host_fetch_list_cap=config.host_fetch_list_cap,
                           max_urls_per_host=config.max_urls_per_host)
        frontier.add_seeds(seeds)
        result = CrawlResult()
        start_time = self.clock.now
        while True:
            if result.pages_fetched >= config.max_pages:
                result.stop_reason = "page_budget"
                break
            if frontier.is_empty():
                result.stop_reason = "frontier_empty"
                break
            batch = frontier.next_batch(config.batch_size)
            for entry in batch:
                if result.pages_fetched >= config.max_pages:
                    break
                self._process(entry, frontier, result)
        result.clock_seconds = self.clock.now - start_time
        result.filter_attrition = self.filters.attrition_report()
        return result

    # -- one page ----------------------------------------------------------------

    def _process(self, entry: FrontierEntry, frontier: CrawlDb,
                 result: CrawlResult) -> None:
        config = self.config
        host = host_of(entry.url)
        if config.respect_robots and not self._robots(host).allows(entry.url):
            result.robots_denied += 1
            return
        # Politeness: wait until the host allows another request.
        ready = self._host_ready.get(host, 0.0)
        if ready > self.clock.now:
            self.clock.advance(min(ready - self.clock.now,
                                   config.politeness_delay))
        fetch = self.web.fetch(entry.url)
        delay = max(config.politeness_delay,
                    self._robots(host).crawl_delay)
        self._host_ready[host] = self.clock.now + delay
        self.clock.advance(fetch.elapsed / config.fetcher_threads)
        result.pages_fetched += 1
        if fetch.redirected_from:
            frontier.mark_seen(fetch.url)
        if not fetch.ok:
            result.fetch_failures += 1
            return
        self.clock.advance(config.processing_seconds)
        if not self.filters.accept_payload(fetch.body, fetch.url,
                                           fetch.content_type):
            result.filtered_out += 1
            return
        repaired, report = repair_html(fetch.body)
        if not report.transcodable:
            result.filtered_out += 1
            return
        net_text = self.boilerplate.extract(repaired)
        outlinks = extract_links(repaired, fetch.url)
        result.linkdb.add_edges(fetch.url, outlinks)
        ok, _which = self.filters.accept_text(net_text)
        if not ok:
            result.filtered_out += 1
            return
        document = Document(
            doc_id=fetch.url, text=net_text, raw=fetch.body,
            meta={"url": fetch.url, "depth": entry.depth,
                  "content_type": fetch.content_type})
        relevant = self.classifier.predict(net_text)
        document.meta["relevant"] = relevant
        if config.online_learning and hasattr(self.classifier, "update"):
            probability = self.classifier.probability(net_text)
            if (probability >= config.online_confidence
                    or probability <= 1 - config.online_confidence):
                self.classifier.update(net_text, relevant)
        if relevant:
            result.relevant.append(document)
            for link in outlinks:
                frontier.add(link, depth=entry.depth + 1,
                             irrelevant_steps=0)
        else:
            result.irrelevant.append(document)
            if entry.irrelevant_steps < config.follow_irrelevant_steps:
                for link in outlinks:
                    frontier.add(link, depth=entry.depth + 1,
                                 irrelevant_steps=entry.irrelevant_steps + 1)

    def _robots(self, host: str) -> RobotsPolicy:
        policy = self._robots_cache.get(host)
        if policy is None:
            response = self.web.fetch(f"http://{host}/robots.txt")
            self.clock.advance(
                response.elapsed / self.config.fetcher_threads)
            policy = (parse_robots(response.body)
                      if response.ok else RobotsPolicy())
            self._robots_cache[host] = policy
        return policy
