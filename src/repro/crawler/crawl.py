"""The focused crawl loop (Fig. 1 of the paper).

Fetch → parse → MIME filter → boilerplate removal → language/length
filters → Naïve Bayes relevance classification.  Links of relevant
pages feed back into the CrawlDB; links of irrelevant pages are
dropped (or followed for up to ``follow_irrelevant_steps`` — the
Section 5 alternative).  The loop runs until the frontier empties, the
page budget is reached, or the caller stops it.

Time is accounted on the :class:`~repro.web.server.SimulatedClock`:
fetch latency is divided across fetcher threads, while the modelled
per-document filtering/classification cost is serialized — this is
what pushes the effective rate down to the paper's 3-4 documents/s
(versus 10-100 for plain crawlers).

The fetch path is hardened for unreliable substrates (see
:mod:`repro.crawler.robust` and :mod:`repro.web.faults`): transient
failures are retried with bounded exponential backoff, hosts that keep
failing are quarantined behind per-host circuit breakers and re-probed
after a cooldown, and every terminal failure is recorded in
:attr:`CrawlResult.failure_reasons` instead of crashing the batch.

Each frontier batch runs in three phases — a sequential *fetch* phase
(all stateful, clock-bearing work), a pure per-page *document* phase
(:mod:`repro.crawler.parallel`), and a sequential *merge* phase that
replays state updates in batch order.  Because the document phase is a
pure function of the fetched payload, it can fan out over a fork-based
worker pool (``parallel_workers > 1``) with byte-identical results:
only real wall-clock time changes, never the simulated-time trajectory
or any crawl output.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable

from repro.annotations import Document
from repro.classify.naive_bayes import NaiveBayesClassifier
from repro.crawler.filters import FilterChain
from repro.crawler.frontier import CrawlDb, FrontierEntry
from repro.crawler.linkdb import LinkDb
from repro.crawler.parallel import (
    CrawlWorkerPool, DocumentOutcome, ProcessingContext,
    outcome_from_wire, outcome_to_wire, process_document,
)
from repro.crawler.recrawl import (
    PageMemory, PageRecord, RecrawlScheduler, content_fingerprint,
    near_unchanged, revision_signature, strip_stage_seconds,
)
from repro.crawler.robust import (
    HOST_FAILURES, BreakerConfig, HostHealth, RetryPolicy,
)
from repro.dataflow.fusion import fork_start_available
from repro.html.boilerplate import BoilerplateDetector
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, maybe_span
from repro.web.robots import RobotsPolicy, parse_robots
from repro.web.server import FetchResult, SimulatedClock, SimulatedWeb
from repro.web.urls import host_of

#: Bucket layout for simulated-time fetch/backoff histograms.  Fixed
#: here (not per-call) so exports always merge exactly.
SIM_SECONDS_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
                       30.0, 60.0)


@dataclass
class CrawlConfig:
    """Operational knobs (defaults mirror the paper's deployment,
    scaled to the synthetic substrate)."""

    max_pages: int = 2000
    fetcher_threads: int = 16
    batch_size: int = 200
    host_fetch_list_cap: int = 500
    max_urls_per_host: int = 400
    politeness_delay: float = 1.0
    #: Modelled serialized per-document cost of boilerplate removal +
    #: classification; calibrated so the crawl runs at the paper's
    #: 3-4 documents/s.
    processing_seconds: float = 0.22
    follow_irrelevant_steps: int = 0
    respect_robots: bool = True
    #: Self-training: feed confidently classified pages back into the
    #: (incremental) Naïve Bayes model — the capability the paper chose
    #: NB for "although we currently don't use this feature".
    online_learning: bool = False
    online_confidence: float = 0.98
    #: Worker processes for the pure per-page document stage; 1 runs
    #: everything on the coordinator.  Any value produces byte-identical
    #: crawl results — only wall-clock changes.
    parallel_workers: int = 1
    #: Retry/backoff policy for transient fetch failures.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Per-host circuit-breaker thresholds.
    breaker: BreakerConfig = field(default_factory=BreakerConfig)


@dataclass
class CrawlResult:
    """Everything a crawl produces."""

    relevant: list[Document] = field(default_factory=list)
    irrelevant: list[Document] = field(default_factory=list)
    linkdb: LinkDb = field(default_factory=LinkDb)
    pages_fetched: int = 0
    fetch_failures: int = 0
    robots_denied: int = 0
    filtered_out: int = 0
    clock_seconds: float = 0.0
    stop_reason: str = ""
    filter_attrition: dict[str, float] = field(default_factory=dict)
    #: Terminal failure counts by reason code ("timeout",
    #: "server_error", "rate_limited", "truncated", "redirect_loop",
    #: "connect_failed", "unavailable", "not_found", "circuit_open").
    failure_reasons: dict[str, int] = field(default_factory=dict)
    #: Fetch attempts beyond the first (successful or not).
    retries: int = 0
    #: Hosts whose circuit breaker opened at least once.
    hosts_quarantined: int = 0
    #: Pages that entered each pipeline stage (fetch, filters, repair,
    #: parse, boilerplate, classify).  Deterministic: identical across
    #: sequential and parallel runs and preserved by checkpoints.
    stage_pages: dict[str, int] = field(default_factory=dict)
    #: Wall-clock seconds spent per stage, measured where the work ran
    #: (summed across workers in parallel mode — CPU-time attribution,
    #: not elapsed time).  Observability only: NOT deterministic, not
    #: checkpointed, excluded from equivalence comparisons.
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: Incremental recrawl accounting (all zero on single-round
    #: crawls).  ``fetches_skipped`` counts frontier entries replayed
    #: without any network interaction (host not due for revisit);
    #: ``pages_unchanged`` counts provably-unchanged visits (304 or
    #: matching content hash); ``replay_hits`` counts pages whose
    #: stored DocumentOutcome was replayed instead of reprocessed
    #: (= unchanged + skipped); ``pages_changed`` counts refetched
    #: pages whose content differed, of which ``pages_near_unchanged``
    #: were near-identical revisions by shingle similarity.
    fetches_skipped: int = 0
    pages_unchanged: int = 0
    pages_changed: int = 0
    pages_near_unchanged: int = 0
    replay_hits: int = 0

    @property
    def pages_visited(self) -> int:
        """Frontier entries consumed: real fetches plus skipped
        replays.  This is what the page budget bounds — a warm round
        that skips most fetches must still terminate like a cold one.
        """
        return self.pages_fetched + self.fetches_skipped

    @property
    def harvest_rate(self) -> float:
        classified = len(self.relevant) + len(self.irrelevant)
        return len(self.relevant) / classified if classified else 0.0

    @property
    def download_rate(self) -> float:
        """Documents per (simulated) second."""
        if self.clock_seconds <= 0:
            return 0.0
        return self.pages_fetched / self.clock_seconds

    def bytes_of(self, which: str) -> int:
        docs = self.relevant if which == "relevant" else self.irrelevant
        return sum(len(d.raw) for d in docs)

    def record_failure(self, reason: str) -> None:
        self.failure_reasons[reason] = \
            self.failure_reasons.get(reason, 0) + 1

    def record_stage(self, stage: str, seconds: float,
                     pages: int = 1) -> None:
        self.stage_pages[stage] = self.stage_pages.get(stage, 0) + pages
        self.stage_seconds[stage] = \
            self.stage_seconds.get(stage, 0.0) + seconds


@dataclass
class _FetchOutcome:
    """What the sequential fetch phase decided for one frontier entry."""

    #: "robots_denied" | "circuit_open" | "fetched"
    kind: str
    fetch: FetchResult | None = None
    #: Terminal failure reason (None on success); only for "fetched".
    reason: str | None = None
    #: Retry attempts consumed by this entry.
    retries: int = 0
    #: Real wall-clock the coordinator spent fetching this entry.
    seconds: float = 0.0
    #: Stored record to replay instead of reprocessing (content
    #: provably unchanged, or host not due for revisit).
    replay: PageRecord | None = None
    #: True when no network interaction happened at all (scheduler
    #: skip); the fetch is synthesized from the record.
    skipped: bool = False
    #: Content hash of a freshly fetched body (only computed when a
    #: page memory is attached).
    fingerprint: str | None = None


class FocusedCrawler:
    """Nutch-with-focus-extension analog over the simulated web."""

    def __init__(self, web: SimulatedWeb, classifier: NaiveBayesClassifier,
                 filters: FilterChain, config: CrawlConfig | None = None,
                 boilerplate: BoilerplateDetector | None = None,
                 clock: SimulatedClock | None = None,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 memory: PageMemory | None = None,
                 scheduler: RecrawlScheduler | None = None,
                 neardup=None) -> None:
        self.web = web
        self.classifier = classifier
        self.filters = filters
        self.config = config or CrawlConfig()
        self.boilerplate = boilerplate or BoilerplateDetector()
        self.clock = clock or SimulatedClock()
        self.health = HostHealth(config=self.config.breaker)
        #: Incremental recrawl state (docs/crawling.md): the replay
        #: store, the per-host revisit scheduler, an optional
        #: NearDuplicateFilter carried across rounds/checkpoints, and
        #: the current round.  All None/0 for single-round crawls.
        self.memory = memory
        self.scheduler = scheduler
        self.neardup = neardup
        self.round = 0
        #: Optional observability (docs/observability.md).  Recording
        #: only ever *reads* crawl state, so enabling metrics/tracing
        #: never changes any crawl output; every deterministic metric
        #: is accumulated on the coordinator in batch order, so exports
        #: are byte-identical at any worker count.
        self.metrics = metrics
        self.tracer = tracer
        if metrics is not None:
            self.health.observe(self._breaker_event)
        self._robots_cache: dict[str, RobotsPolicy] = {}
        self._host_ready: dict[str, float] = {}

    def _breaker_event(self, host: str, event: str) -> None:
        self.metrics.counter("crawl.breaker_transitions", host=host,
                             event=event).inc()

    # -- public API -----------------------------------------------------------

    def begin_round(self, rnd: int) -> None:
        """Enter recrawl round ``rnd``: evolve the web to that epoch,
        fold the scheduler's observations into fresh revisit
        intervals, and reset the near-dup filter's epoch.  Each round
        then crawls from the seeds with a fresh frontier; the page
        memory turns unchanged pages into replays."""
        if self.memory is not None and self.config.online_learning:
            raise ValueError(
                "incremental recrawl replays cached document outcomes, "
                "which online_learning (classifier updates between "
                "pages) cannot reproduce; disable one of them")
        self.round = rnd
        self.web.set_epoch(rnd)
        # Round-transient robustness state starts fresh: breaker trips
        # and politeness stamps belong to a crawl session, and keeping
        # them would make a warm round's trajectory diverge from a
        # cold crawl of the same epoch.  Knowledge (robots cache, page
        # memory, scheduler history) carries over.
        self.health.reset()
        self._host_ready = {}
        if self.scheduler is not None:
            self.scheduler.begin_round(rnd)
        if self.neardup is not None:
            self.neardup.begin_epoch(rnd)
        if self.metrics is not None:
            self.metrics.gauge("crawl.round").set(rnd)

    def resume_round(self) -> None:
        """Re-enter the round a restored checkpoint was taken in.
        Only the web epoch needs re-establishing — scheduler, memory,
        and near-dup state come from the checkpoint, and folding the
        scheduler again (``begin_round``) would double-apply it."""
        self.web.set_epoch(self.round)

    def crawl(self, seeds: list[str] | None = None, *,
              frontier: CrawlDb | None = None,
              result: CrawlResult | None = None,
              checkpoint: Callable[[CrawlDb, CrawlResult], None]
              | None = None,
              page_callback: Callable[[CrawlResult], None] | None = None,
              parallel_workers: int | None = None,
              ) -> CrawlResult:
        """Run a focused crawl from the seed list.

        Pass ``frontier``/``result`` to continue a restored crawl
        (checkpoint resume) instead of starting from seeds.
        ``checkpoint`` is invoked after every completed batch — a batch
        boundary is the only state from which a resumed crawl is
        guaranteed to reproduce the uninterrupted run exactly.
        ``page_callback`` fires after every processed frontier entry.
        ``parallel_workers`` overrides
        :attr:`CrawlConfig.parallel_workers`; with N > 1 the pure
        document stage fans out over N forked worker processes and the
        result stays byte-identical to the sequential run.
        """
        config = self.config
        if frontier is None:
            if seeds is None:
                raise ValueError("crawl() needs seeds or a restored "
                                 "frontier")
            frontier = CrawlDb(host_fetch_list_cap=config.host_fetch_list_cap,
                               max_urls_per_host=config.max_urls_per_host)
            frontier.add_seeds(seeds)
        if result is None:
            result = CrawlResult()
        pool = self._make_pool(parallel_workers)
        # ``clock_seconds`` accumulated so far anchors the (virtual)
        # start time, so resumed runs keep accumulating correctly.
        crawl_start = self.clock.now - result.clock_seconds
        try:
            while True:
                if result.pages_visited >= config.max_pages:
                    result.stop_reason = "page_budget"
                    break
                if frontier.is_empty():
                    result.stop_reason = "frontier_empty"
                    break
                batch = frontier.next_batch(config.batch_size)
                self._run_batch(batch, frontier, result, pool,
                                page_callback)
                if checkpoint is not None:
                    self._snapshot_totals(result, crawl_start)
                    checkpoint(frontier, result)
        finally:
            if pool is not None:
                pool.close()
        self._snapshot_totals(result, crawl_start)
        if checkpoint is not None:
            checkpoint(frontier, result)
        return result

    def _make_pool(self, parallel_workers: int | None) -> CrawlWorkerPool | None:
        """Resolve the worker count and build the document-stage pool."""
        config = self.config
        workers = (config.parallel_workers if parallel_workers is None
                   else parallel_workers)
        if workers is None or workers <= 1:
            return None
        if config.online_learning:
            raise ValueError(
                "online_learning updates the classifier between pages, "
                "which a parallel document stage cannot replay "
                "deterministically; run with parallel_workers=1")
        if not fork_start_available():
            warnings.warn(
                "the parallel crawl document stage needs the 'fork' "
                "multiprocessing start method, which this platform/"
                "configuration does not provide; falling back to the "
                "sequential document stage",
                RuntimeWarning, stacklevel=3)
            return None
        # Build lazy scoring tables *before* forking so workers inherit
        # them by copy-on-write instead of each rebuilding.
        for model in (self.classifier, getattr(self.classifier, "base",
                                               None)):
            if hasattr(model, "precompute"):
                model.precompute()
        return CrawlWorkerPool(workers, self._processing_context(),
                               metrics=self.metrics,
                               batch_hint=config.batch_size)

    def _processing_context(self) -> ProcessingContext:
        return ProcessingContext(boilerplate=self.boilerplate,
                                 filters=self.filters,
                                 classifier=self.classifier)

    def _snapshot_totals(self, result: CrawlResult,
                         crawl_start: float) -> None:
        result.clock_seconds = self.clock.now - crawl_start
        result.filter_attrition = self.filters.attrition_report()
        result.hosts_quarantined = self.health.quarantined_hosts
        if self.metrics is not None:
            self.metrics.gauge("crawl.clock_seconds").set(
                result.clock_seconds)
            self.metrics.gauge("crawl.hosts_quarantined").set(
                result.hosts_quarantined)

    # -- one batch ---------------------------------------------------------------

    def _run_batch(self, batch: list[FrontierEntry], frontier: CrawlDb,
                   result: CrawlResult, pool: CrawlWorkerPool | None,
                   page_callback: Callable[[CrawlResult], None] | None,
                   ) -> None:
        """Fetch sequentially, process the pure document stage (inline
        or fanned out), and merge state updates in batch order.

        With a pool attached the two phases *pipeline*: each cleanly
        fetched page is submitted to the workers immediately, so the
        head of the batch is being parsed and classified while the
        coordinator is still fetching the tail.  The merge phase then
        replays every entry in batch order regardless of when (or on
        which worker) its document stage ran, which is what keeps the
        results byte-identical to the sequential loop.

        The phase spans are timed on the *simulated* clock (when a
        tracer is attached via :attr:`tracer` with ``clock=lambda:
        crawler.clock.now``), which only advances during the fetch
        phase — so the exported trace is identical for the sequential
        and the pooled document stage even though both the sequential
        loop and the pipelined pool overlap document processing with
        other phases.
        """
        config = self.config
        self._record_batch_start()
        with maybe_span(self.tracer, "crawl.batch") as batch_span:
            outcomes: list[_FetchOutcome] = []
            fetched = 0
            with maybe_span(self.tracer, "crawl.fetch") as fetch_span:
                for index, entry in enumerate(batch):
                    if result.pages_visited + fetched >= config.max_pages:
                        # Budget hit mid-batch: the leftovers survive
                        # into the frontier (and any checkpoint)
                        # instead of being dropped.
                        frontier.requeue_front(batch[index:])
                        batch = batch[:index]
                        break
                    outcome = self._fetch_entry(entry)
                    if outcome.kind == "fetched":
                        fetched += 1
                        if (pool is not None and outcome.reason is None
                                and outcome.replay is None):
                            # Pipelined dispatch: workers start on this
                            # page while the fetch loop continues.
                            # Replayed pages never reach the workers —
                            # that is the whole point of the replay.
                            pool.submit((index, outcome.fetch.url,
                                         outcome.fetch.body,
                                         outcome.fetch.content_type))
                    outcomes.append(outcome)
                fetch_span.set(entries=len(batch), fetched=fetched)
            n_documents = sum(
                1 for outcome in outcomes
                if outcome.kind == "fetched" and outcome.reason is None
                and outcome.replay is None)
            documents: dict[int, DocumentOutcome] = {}
            with maybe_span(self.tracer, "crawl.document",
                            pages=n_documents):
                if pool is not None:
                    documents = pool.drain()
            context = self._processing_context() if pool is None else None
            with maybe_span(self.tracer, "crawl.merge",
                            entries=len(batch)):
                for index, (entry, outcome) in enumerate(
                        zip(batch, outcomes)):
                    document = documents.get(index)
                    if (document is None and outcome.kind == "fetched"
                            and outcome.reason is None):
                        if outcome.replay is not None:
                            # Unchanged page: replay the stored
                            # outcome instead of reprocessing.
                            document = outcome_from_wire(
                                outcome.replay.outcome)
                        elif context is not None:
                            # Sequential document stage, interleaved
                            # with merging so online-learning updates
                            # stay ordered.
                            fetch = outcome.fetch
                            document = process_document(
                                fetch.url, fetch.body,
                                fetch.content_type, context)
                    self._merge_entry(entry, outcome, document,
                                      frontier, result)
                    if page_callback is not None:
                        page_callback(result)
            batch_span.set(entries=len(batch))

    def _record_batch_start(self) -> None:
        """Count one frontier batch.  The sharded crawler overrides
        this to a no-op: how many (shard, superstep) batches a crawl
        splits into depends on the shard count, so the driver records
        the shard-invariant ``crawl.supersteps`` instead."""
        if self.metrics is not None:
            self.metrics.counter("crawl.batches").inc()

    # -- phase 1: fetch (stateful, clock-bearing) ------------------------------

    def _clock_for(self, host: str) -> SimulatedClock:
        """The clock that times interactions with ``host``.

        The base crawler keeps one global clock.  The sharded crawler
        overrides this with per-host clocks: politeness, breaker
        cooldowns, and flaky-host recovery are all per-host phenomena,
        and timing them on host-local clocks makes their evolution
        independent of how hosts are interleaved across shards.
        """
        return self.clock

    def _fetch_entry(self, entry: FrontierEntry) -> _FetchOutcome:
        """Everything up to (and including) the fetch for one entry.

        Touches only coordinator state whose evolution must stay
        sequential: the simulated clock, politeness schedule, robots
        cache, and circuit breakers.  All :class:`CrawlResult` and
        frontier updates are deferred to the merge phase.
        """
        config = self.config
        started = time.perf_counter()
        host = host_of(entry.url)
        clock = self._clock_for(host)
        if config.respect_robots and not self._robots(host).allows(entry.url):
            return _FetchOutcome("robots_denied",
                                 seconds=time.perf_counter() - started)
        record = (self.memory.get(entry.url)
                  if self.memory is not None else None)
        if (record is not None and self.scheduler is not None
                and not self.scheduler.due(host)):
            # Host not due for revisit: replay the stored outcome as
            # assumed-unchanged with no network interaction at all
            # (no clock advance, no politeness, no breaker traffic).
            return _FetchOutcome(
                "fetched", fetch=self._assumed_unchanged(entry.url,
                                                         record),
                replay=record, skipped=True,
                seconds=time.perf_counter() - started)
        if not self.health.breaker(host).allow(clock.now):
            # Host quarantined: drop the entry without fetching.
            return _FetchOutcome("circuit_open",
                                 seconds=time.perf_counter() - started)
        fetch, reason, retries = self._fetch_with_retries(
            entry.url, host,
            if_version=record.version if record is not None else None)
        replay = None
        fingerprint = None
        if reason is None:
            if fetch.not_modified:
                # Conditional GET hit: version unchanged, no body sent.
                replay = record
            elif self.memory is not None:
                fingerprint = content_fingerprint(fetch.body)
                if (record is not None
                        and record.fingerprint == fingerprint):
                    # Version bumped but content identical (e.g. a
                    # revision chain that round-tripped): exact-hash
                    # replay.
                    replay = record
            if replay is None:
                # The modelled serialized per-document processing cost
                # — not paid on replays, which skip the document stage.
                clock.advance(config.processing_seconds)
        return _FetchOutcome("fetched", fetch=fetch, reason=reason,
                             retries=retries, replay=replay,
                             fingerprint=fingerprint,
                             seconds=time.perf_counter() - started)

    @staticmethod
    def _assumed_unchanged(url: str, record: PageRecord) -> FetchResult:
        """Synthesize the FetchResult a skipped entry replays under:
        shaped like a 304 (so the merge path treats it uniformly) with
        the canonical redirect replayed from the record."""
        fetch = FetchResult(url=record.final_url, status=304,
                            content_type="", body="", elapsed=0.0,
                            not_modified=True,
                            content_version=record.version)
        if record.final_url != url:
            fetch.redirected_from = url
        return fetch

    # -- phase 3: merge (batch order) ------------------------------------------

    def _merge_entry(self, entry: FrontierEntry, outcome: _FetchOutcome,
                     document: DocumentOutcome | None, frontier: CrawlDb,
                     result: CrawlResult) -> None:
        """Replay one entry's state updates exactly as the sequential
        loop would have produced them.

        This is also where every deterministic metric lands: the merge
        phase runs on the coordinator in batch order for every worker
        count, so the registry accumulates identically no matter where
        the document stage ran (the ``DocumentOutcome`` merge rule).
        """
        config = self.config
        metrics = self.metrics
        if outcome.kind == "robots_denied":
            result.robots_denied += 1
            if metrics is not None:
                metrics.counter("crawl.robots_denied").inc()
            return
        if outcome.kind == "circuit_open":
            result.record_failure("circuit_open")
            if metrics is not None:
                metrics.counter("crawl.failures",
                                reason="circuit_open").inc()
            return
        fetch = outcome.fetch
        replay = outcome.replay
        if outcome.skipped:
            result.fetches_skipped += 1
            if metrics is not None:
                metrics.counter("crawl.fetches_skipped").inc()
        else:
            result.pages_fetched += 1
            result.retries += outcome.retries
            self._record_stage(result, "fetch", outcome.seconds)
            if metrics is not None:
                metrics.counter("crawl.pages_fetched").inc()
                if outcome.retries:
                    metrics.counter("crawl.retries").inc(outcome.retries)
        if fetch.redirected_from:
            frontier.mark_seen(fetch.url)
        if outcome.reason is not None:
            result.fetch_failures += 1
            result.record_failure(outcome.reason)
            if metrics is not None:
                metrics.counter("crawl.fetch_failures").inc()
                metrics.counter("crawl.failures",
                                reason=outcome.reason).inc()
            return
        fresh_record: PageRecord | None = None
        if replay is not None:
            result.replay_hits += 1
            result.pages_unchanged += 1
            self._record_stage(result, "replay", 0.0)
            if metrics is not None:
                metrics.counter("crawl.replay_hits").inc()
                metrics.counter("crawl.pages_unchanged").inc()
            if not outcome.skipped:
                # A real visit confirmed the content: refresh the
                # record's bookkeeping and tell the scheduler the host
                # looks stable.
                replay.last_round = self.round
                if not fetch.not_modified:
                    replay.version = fetch.content_version
                if self.scheduler is not None:
                    self.scheduler.observe(host_of(entry.url),
                                           changed=False)
        elif self.memory is not None:
            # Fresh content: detect (near-)changes against the stored
            # revision, feed the scheduler, and store the new outcome
            # for future replays.  Runs on the coordinator in batch
            # order, so it is worker- and shard-count invariant.
            signature = revision_signature(fetch.body)
            previous = self.memory.get(entry.url)
            if previous is not None:
                result.pages_changed += 1
                near = near_unchanged(previous.signature, signature)
                if near:
                    result.pages_near_unchanged += 1
                if metrics is not None:
                    metrics.counter("crawl.pages_changed").inc()
                    if near:
                        metrics.counter(
                            "crawl.pages_near_unchanged").inc()
                if self.scheduler is not None:
                    self.scheduler.observe(host_of(entry.url),
                                           changed=not near)
            fresh_record = PageRecord(
                final_url=fetch.url, version=fetch.content_version,
                fingerprint=outcome.fingerprint, signature=signature,
                outcome=strip_stage_seconds(outcome_to_wire(document)),
                body=None, content_type=fetch.content_type,
                last_round=self.round)
            self.memory.put(entry.url, fresh_record)
        # The worker-accumulated per-stage deltas, merged batch-order
        # (empty on replays: stored outcomes carry no wall-clock).
        for stage, seconds in document.stage_seconds.items():
            self._record_stage(result, stage, seconds)
        self.filters.record_payload(document.mime_ok)
        if not document.mime_ok:
            result.filtered_out += 1
            if metrics is not None:
                metrics.counter("crawl.filtered_out",
                                filter="mime").inc()
            return
        if not document.transcodable:
            result.filtered_out += 1
            if metrics is not None:
                metrics.counter("crawl.filtered_out",
                                filter="transcode").inc()
            return
        result.linkdb.add_edges(fetch.url, document.outlinks)
        self.filters.record_text(document.rejected_by)
        if metrics is not None:
            metrics.counter("crawl.outlinks").inc(len(document.outlinks))
        if document.rejected_by:
            result.filtered_out += 1
            if metrics is not None:
                metrics.counter("crawl.filtered_out",
                                filter=document.rejected_by).inc()
            return
        net_text = document.net_text
        if replay is not None and fetch.not_modified:
            # 304s and skips carry no body; the record does.
            raw_body = replay.body or ""
            content_type = replay.content_type
        else:
            raw_body = fetch.body
            content_type = fetch.content_type
        if fresh_record is not None:
            # Only classified pages land in a corpus and need their
            # raw body replayable; filtered pages never stored one.
            fresh_record.body = raw_body
        harvested = Document(
            doc_id=fetch.url, text=net_text, raw=raw_body,
            meta={"url": fetch.url, "depth": entry.depth,
                  "content_type": content_type,
                  "title": document.title})
        relevant = document.relevant
        harvested.meta["relevant"] = relevant
        if metrics is not None:
            metrics.counter("crawl.relevant_pages" if relevant
                            else "crawl.irrelevant_pages").inc()
        if config.online_learning and hasattr(self.classifier, "update"):
            probability = self.classifier.probability(net_text)
            if (probability >= config.online_confidence
                    or probability <= 1 - config.online_confidence):
                self.classifier.update(net_text, relevant)
        if relevant:
            result.relevant.append(harvested)
            for link in document.outlinks:
                self._add_outlink(frontier, entry, link,
                                  irrelevant_steps=0)
        else:
            result.irrelevant.append(harvested)
            if entry.irrelevant_steps < config.follow_irrelevant_steps:
                for link in document.outlinks:
                    self._add_outlink(
                        frontier, entry, link,
                        irrelevant_steps=entry.irrelevant_steps + 1)

    def _add_outlink(self, frontier: CrawlDb, entry: FrontierEntry,
                     link: str, irrelevant_steps: int) -> None:
        """Feed one discovered outlink into the frontier.

        The sharded crawler overrides this to *buffer* links instead:
        in superstep mode every discovered link — even one owned by the
        discovering shard — is exchanged and applied at the barrier, so
        the frontier evolves identically at any shard count.
        """
        frontier.add(link, depth=entry.depth + 1,
                     irrelevant_steps=irrelevant_steps)

    def _record_stage(self, result: CrawlResult, stage: str,
                      seconds: float, pages: int = 1) -> None:
        """``CrawlResult.record_stage`` mirrored onto the registry:
        page counts are deterministic, wall seconds are volatile."""
        result.record_stage(stage, seconds, pages)
        if self.metrics is not None:
            self.metrics.counter("crawl.stage_pages",
                                 stage=stage).inc(pages)
            self.metrics.counter("crawl.stage_wall_seconds", stage=stage,
                                 volatile=True).inc(seconds)

    # -- fetch path ------------------------------------------------------------

    def _fetch_with_retries(self, url: str, host: str,
                            if_version: int | None = None,
                            ) -> tuple[FetchResult, str | None, int]:
        """Fetch with politeness, per-attempt timeout, bounded backoff
        and breaker accounting; returns (last fetch, terminal reason or
        None on success, retry attempts consumed).  ``if_version``
        makes the GET conditional (incremental recrawl): a matching
        content version comes back as a body-less not-modified
        success."""
        config = self.config
        policy = config.retry
        breaker = self.health.breaker(host)
        clock = self._clock_for(host)
        fetch: FetchResult | None = None
        reason: str | None = None
        retries = 0
        metrics = self.metrics
        for attempt in range(max(1, policy.max_attempts)):
            if attempt > 0:
                retries += 1
                backoff = policy.backoff_seconds(
                    url, attempt - 1,
                    retry_after=fetch.retry_after if fetch else 0.0)
                clock.advance(backoff / config.fetcher_threads)
                if metrics is not None:
                    metrics.histogram(
                        "crawl.backoff_sim_seconds",
                        buckets=SIM_SECONDS_BUCKETS).observe(backoff)
            self._await_host(host)
            fetch = self.web.fetch(url, attempt=attempt,
                                   now=clock.now,
                                   if_version=if_version)
            clock.advance(min(fetch.elapsed, policy.attempt_timeout)
                          / config.fetcher_threads)
            if metrics is not None:
                metrics.counter("crawl.fetch_attempts").inc()
                metrics.histogram(
                    "crawl.fetch_sim_seconds",
                    buckets=SIM_SECONDS_BUCKETS).observe(
                        min(fetch.elapsed, policy.attempt_timeout))
            delay = max(config.politeness_delay,
                        self._robots(host).crawl_delay)
            self._host_ready[host] = clock.now + delay
            reason = self._failure_reason(fetch, policy)
            if reason is None:
                breaker.record_success()
                return fetch, None, retries
            if reason in HOST_FAILURES:
                opened = breaker.record_failure(clock.now)
                if opened:
                    # Host just got quarantined; stop hammering it.
                    break
            if not policy.should_retry(reason, attempt):
                break
        return fetch, reason, retries

    def _await_host(self, host: str) -> None:
        """Politeness: wait until the host allows another request."""
        clock = self._clock_for(host)
        ready = self._host_ready.get(host, 0.0)
        if ready > clock.now:
            clock.advance(min(ready - clock.now,
                              self.config.politeness_delay))

    @staticmethod
    def _failure_reason(fetch: FetchResult,
                        policy: RetryPolicy) -> str | None:
        """Map a fetch outcome to a terminal reason code (None = ok)."""
        if fetch.elapsed > policy.attempt_timeout:
            return "timeout"
        if fetch.failure is not None:
            return fetch.failure
        if fetch.not_modified:
            # Conditional-GET hit: a clean (body-less) success.
            return None
        if fetch.ok:
            return None
        if fetch.status == 0:
            return "timeout"
        if fetch.status == 404:
            return "not_found"
        if fetch.status == 429:
            return "rate_limited"
        if fetch.status >= 500:
            return "server_error"
        return f"http_{fetch.status}"

    def _robots(self, host: str) -> RobotsPolicy:
        policy = self._robots_cache.get(host)
        if policy is None:
            clock = self._clock_for(host)
            response = self.web.fetch(f"http://{host}/robots.txt",
                                      now=clock.now)
            clock.advance(
                response.elapsed / self.config.fetcher_threads)
            policy = (parse_robots(response.body)
                      if response.ok else RobotsPolicy())
            self._robots_cache[host] = policy
        return policy
